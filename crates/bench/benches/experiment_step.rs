//! End-to-end experiment throughput: how much simulated benchmark time
//! the harness chews through per wall-clock second. One iteration runs a
//! whole short density experiment (bootstrap + N simulated hours of
//! metric reports, PLB passes and population churn).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use toto::experiment::{DensityExperiment, ExperimentOverrides};
use toto_spec::ScenarioSpec;

fn bench_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    group.bench_function("bootstrap_plus_1h_at_110pct", |b| {
        b.iter(|| {
            let mut scenario = ScenarioSpec::gen5_stage_cluster(110);
            scenario.duration_hours = 1;
            black_box(DensityExperiment::new(scenario, ExperimentOverrides::default()).run())
        })
    });
    group.bench_function("bootstrap_plus_12h_at_140pct", |b| {
        b.iter(|| {
            let mut scenario = ScenarioSpec::gen5_stage_cluster(140);
            scenario.duration_hours = 12;
            black_box(DensityExperiment::new(scenario, ExperimentOverrides::default()).run())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_experiment);
criterion_main!(benches);
