//! Micro-benchmarks for the Toto model execution hot path.
//!
//! §3.3.1: "The logic to sample from the models is directly coded into
//! RgManager, so sampling is fast and efficient." These benches verify
//! that claim holds for this implementation: per-report sampling, the
//! 15-minute XML refresh (parse + compile), and Naming Service traffic.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use toto::defaults::gen5_model_set;
use toto_fabric::naming::NamingService;
use toto_models::compiled::{CompiledModelSet, ReplicaRoleKind, SampleContext};
use toto_rgmanager::{ReportRequest, RgManager, MODEL_KEY};
use toto_simcore::time::SimTime;
use toto_spec::model::ModelSetSpec;
use toto_spec::{EditionKind, ResourceKind};

fn bench_model_sampling(c: &mut Criterion) {
    let spec = gen5_model_set(42, 1200);
    let set = CompiledModelSet::compile(&spec);
    let model = set
        .model_for(ResourceKind::Disk, EditionKind::PremiumBc)
        .expect("BC disk model");
    let ctx = SampleContext {
        service: 17,
        node: 3,
        role: ReplicaRoleKind::Primary,
        created_at: SimTime::ZERO,
        now: SimTime::from_secs(86_400 + 1200),
        prev: Some(512.0),
    };
    c.bench_function("disk_model_next_value", |b| {
        b.iter(|| black_box(model.next_value(black_box(&ctx))))
    });

    let mem = set
        .model_for(ResourceKind::Memory, EditionKind::StandardGp)
        .expect("memory model");
    c.bench_function("memory_model_next_value", |b| {
        b.iter(|| black_box(mem.next_value(black_box(&ctx))))
    });
}

fn bench_model_refresh(c: &mut Criterion) {
    let xml = gen5_model_set(42, 1200).to_xml_string();
    c.bench_function("model_xml_parse", |b| {
        b.iter(|| black_box(ModelSetSpec::from_xml_str(black_box(&xml)).unwrap()))
    });
    let spec = gen5_model_set(42, 1200);
    c.bench_function("model_compile", |b| {
        b.iter(|| black_box(CompiledModelSet::compile(black_box(&spec))))
    });
    c.bench_function("rgmanager_refresh_cycle", |b| {
        let mut naming = NamingService::new();
        naming.write(MODEL_KEY, &xml);
        let mut rg = RgManager::new(0);
        let mut version = 1u64;
        b.iter(|| {
            // Force a recompile every iteration by bumping the version.
            version += 1;
            let mut spec = gen5_model_set(42, 1200);
            spec.version = version;
            naming.write(MODEL_KEY, spec.to_xml_string());
            black_box(rg.refresh_models(&mut naming))
        })
    });
}

fn bench_report_rpc(c: &mut Criterion) {
    let xml = gen5_model_set(42, 1200).to_xml_string();
    let mut naming = NamingService::new();
    naming.write(MODEL_KEY, &xml);
    let mut rg = RgManager::new(0);
    rg.refresh_models(&mut naming);
    let req = ReportRequest {
        replica: 5,
        service: 5,
        role: ReplicaRoleKind::Primary,
        edition: EditionKind::PremiumBc,
        resource: ResourceKind::Disk,
        created_at: SimTime::ZERO,
        now: SimTime::from_secs(86_400),
        actual_load: 100.0,
    };
    c.bench_function("rgmanager_persisted_disk_report", |b| {
        b.iter(|| black_box(rg.compute_report(&mut naming, black_box(&req))))
    });
    let mut gp = req;
    gp.edition = EditionKind::StandardGp;
    c.bench_function("rgmanager_nonpersisted_disk_report", |b| {
        b.iter(|| black_box(rg.compute_report(&mut naming, black_box(&gp))))
    });
}

criterion_group!(
    benches,
    bench_model_sampling,
    bench_model_refresh,
    bench_report_rpc
);
criterion_main!(benches);
