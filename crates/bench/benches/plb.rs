//! PLB benchmarks: placement decisions and violation-fixing passes on a
//! realistically loaded 14-node ring.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use toto_fabric::cluster::{Cluster, ClusterConfig, ServiceSpec};
use toto_fabric::ids::MetricId;
use toto_fabric::metrics::{MetricDef, MetricRegistry};
use toto_fabric::plb::{Plb, PlbConfig};
use toto_simcore::rng::DetRng;
use toto_simcore::time::SimTime;

fn loaded_cluster() -> (Cluster, MetricId, MetricId) {
    let mut metrics = MetricRegistry::new();
    let cpu = metrics.register(MetricDef {
        name: "Cpu".into(),
        node_capacity: 96.0,
        balancing_weight: 1.0,
    });
    let disk = metrics.register(MetricDef {
        name: "Disk".into(),
        node_capacity: 7000.0,
        balancing_weight: 1.0,
    });
    let mut cluster = Cluster::new(ClusterConfig {
        node_count: 14,
        metrics,
        fault_domains: 1,
    });
    let mut plb = Plb::new(PlbConfig::default(), 9);
    let mut rng = DetRng::seed_from_u64(5);
    for i in 0..220 {
        let mut load = cluster.metrics().zero_load();
        let bc = i % 7 == 0;
        load[cpu] = if bc { 8.0 } else { 4.0 };
        load[disk] = if bc {
            400.0
        } else {
            5.0 + rng.next_f64() * 10.0
        };
        let spec = ServiceSpec {
            name: format!("db-{i}"),
            tag: 0,
            replica_count: if bc { 4 } else { 1 },
            default_load: load,
        };
        let _ = plb.create_service(&mut cluster, &spec, SimTime::ZERO);
    }
    (cluster, cpu, disk)
}

fn bench_placement(c: &mut Criterion) {
    let (cluster, cpu, disk) = loaded_cluster();
    let mut spec_load = cluster.metrics().zero_load();
    spec_load[cpu] = 8.0;
    spec_load[disk] = 300.0;
    let spec = ServiceSpec {
        name: "new-bc".into(),
        tag: 0,
        replica_count: 4,
        default_load: spec_load,
    };
    c.bench_function("plb_place_bc_x4_on_loaded_ring", |b| {
        let mut plb = Plb::new(PlbConfig::default(), 77);
        b.iter(|| black_box(plb.place_new_service(&cluster, &spec).unwrap()))
    });
    let single = ServiceSpec {
        replica_count: 1,
        ..spec.clone()
    };
    c.bench_function("plb_place_gp_x1_on_loaded_ring", |b| {
        let mut plb = Plb::new(PlbConfig::default(), 78);
        b.iter(|| black_box(plb.place_new_service(&cluster, &single).unwrap()))
    });
}

fn bench_violation_fixing(c: &mut Criterion) {
    c.bench_function("plb_fix_single_disk_violation", |b| {
        b.iter_batched(
            || {
                let (mut cluster, _, disk) = loaded_cluster();
                // Blow one node's disk over capacity.
                let victim = cluster.node(toto_fabric::ids::NodeId(0)).replicas[0];
                cluster.report_load(victim, disk, 7_500.0);
                (cluster, Plb::new(PlbConfig::default(), 3))
            },
            |(mut cluster, mut plb)| {
                black_box(plb.fix_violations(&mut cluster, SimTime::from_secs(60)))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    c.bench_function("plb_violation_scan_clean_ring", |b| {
        let (cluster, _, _) = loaded_cluster();
        b.iter(|| black_box(cluster.violations()))
    });
}

criterion_group!(benches, bench_placement, bench_violation_fixing);
criterion_main!(benches);
