//! PLB benchmarks: placement decisions, violation-fixing and balancing
//! passes on a realistically loaded 14-node/220-service ring (the paper's
//! Table 2 population on its gen5 stage-ring node count), plus
//! pruned-candidate variants at 100 and 1,000 nodes — the hyperscale
//! rings where `pick_target` walks the cost-ordered candidate index
//! instead of scanning every node.
//!
//! These are the simulator's hottest paths: every density-study tick runs
//! placement and violation fixing, so a six-day 140%-density fleet calls
//! them hundreds of thousands of times. The fixtures live in
//! `toto_bench::fixtures` and are shared with the `bench_track` pinned
//! suite, so criterion numbers and the recorded benchmark history measure
//! identical work. The fixture intentionally leaves headroom (≈66% CPU,
//! ≈48% disk) so placement always succeeds; a `create` failure here is a
//! broken fixture, not a benchmark result.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use toto_bench::fixtures::{
    bc_spec, loaded_cluster, loaded_cluster_at, push_three_disk_violations,
};
use toto_fabric::cluster::ServiceSpec;
use toto_fabric::ids::NodeId;
use toto_fabric::plb::{Plb, PlbConfig};
use toto_simcore::time::SimTime;

fn bench_placement(c: &mut Criterion) {
    let (cluster, cpu, disk) = loaded_cluster();
    let spec = bc_spec(&cluster, cpu, disk);
    c.bench_function("plb_place_bc_x4_on_loaded_ring", |b| {
        let mut plb = Plb::new(PlbConfig::default(), 77);
        b.iter(|| black_box(plb.place_new_service(&cluster, &spec).unwrap()))
    });
    let single = ServiceSpec {
        replica_count: 1,
        ..spec.clone()
    };
    c.bench_function("plb_place_gp_x1_on_loaded_ring", |b| {
        let mut plb = Plb::new(PlbConfig::default(), 78);
        b.iter(|| black_box(plb.place_new_service(&cluster, &single).unwrap()))
    });
}

fn bench_violation_fixing(c: &mut Criterion) {
    c.bench_function("plb_fix_violations_pass", |b| {
        b.iter_batched(
            || {
                let (mut cluster, _, disk) = loaded_cluster();
                push_three_disk_violations(&mut cluster, disk);
                (cluster, Plb::new(PlbConfig::default(), 3))
            },
            |(mut cluster, mut plb)| {
                black_box(plb.fix_violations(&mut cluster, SimTime::from_secs(60)));
                // Return the cluster so its teardown lands outside the
                // timed region (criterion drops batched outputs untimed).
                cluster
            },
            criterion::BatchSize::LargeInput,
        )
    });
    c.bench_function("plb_violation_scan_clean_ring", |b| {
        let (cluster, _, _) = loaded_cluster();
        b.iter(|| black_box(cluster.violations()))
    });
}

fn bench_balancing(c: &mut Criterion) {
    c.bench_function("plb_balance_pass", |b| {
        b.iter_batched(
            || {
                let (mut cluster, cpu, _) = loaded_cluster();
                // Heat node 0 well past the balancing threshold.
                let hot: Vec<_> = cluster.node(NodeId(0)).replicas.clone();
                for rid in hot {
                    let load = cluster.replica(rid).expect("exists").load[cpu];
                    cluster.report_load(rid, cpu, load + 4.0);
                }
                (cluster, Plb::new(PlbConfig::default(), 4))
            },
            |(mut cluster, mut plb)| {
                black_box(plb.balance(&mut cluster, SimTime::from_secs(60)));
                cluster
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

/// Pruned-candidate paths on hyperscale rings. On ≥ 64 nodes
/// `pick_target` walks the cost-ordered candidate index (capped at
/// `candidate_limit`), so per-decision cost must stay roughly flat from
/// 100 to 1,000 nodes — `bench_track --gate` compares these ids against
/// the recorded benchmark history and fails CI when the asymptotic win
/// regresses.
fn bench_hyperscale_rings(c: &mut Criterion) {
    for &nodes in &[100u32, 1000] {
        let services = nodes as u64 * 16;
        let (cluster, cpu, disk) = loaded_cluster_at(nodes, services);
        let spec = bc_spec(&cluster, cpu, disk);
        c.bench_function(&format!("plb_place_bc_x4_ring_{nodes}"), |b| {
            let mut plb = Plb::new(PlbConfig::default(), 77);
            b.iter(|| black_box(plb.place_new_service(&cluster, &spec).unwrap()))
        });
        c.bench_function(&format!("plb_fix_violations_pass_ring_{nodes}"), |b| {
            b.iter_batched(
                || {
                    let (mut cluster, _, disk) = loaded_cluster_at(nodes, services);
                    push_three_disk_violations(&mut cluster, disk);
                    (cluster, Plb::new(PlbConfig::default(), 3))
                },
                |(mut cluster, mut plb)| {
                    black_box(plb.fix_violations(&mut cluster, SimTime::from_secs(60)));
                    cluster
                },
                criterion::BatchSize::LargeInput,
            )
        });
        c.bench_function(&format!("plb_violation_scan_ring_{nodes}"), |b| {
            b.iter(|| black_box(cluster.violations()))
        });
    }
}

criterion_group!(
    benches,
    bench_placement,
    bench_violation_fixing,
    bench_balancing,
    bench_hyperscale_rings
);
criterion_main!(benches);
