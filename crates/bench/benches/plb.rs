//! PLB benchmarks: placement decisions, violation-fixing and balancing
//! passes on a realistically loaded 14-node/220-service ring (the paper's
//! Table 2 population on its gen5 stage-ring node count), plus
//! pruned-candidate variants at 100 and 1,000 nodes — the hyperscale
//! rings where `pick_target` walks the cost-ordered candidate index
//! instead of scanning every node.
//!
//! These are the simulator's hottest paths: every density-study tick runs
//! placement and violation fixing, so a six-day 140%-density fleet calls
//! them hundreds of thousands of times. The fixture intentionally leaves
//! headroom (≈66% CPU, ≈48% disk) so placement always succeeds; a `create`
//! failure here is a broken fixture, not a benchmark result.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use toto_fabric::cluster::{Cluster, ClusterConfig, ServiceSpec};
use toto_fabric::ids::{MetricId, NodeId};
use toto_fabric::metrics::{MetricDef, MetricRegistry};
use toto_fabric::plb::{Plb, PlbConfig};
use toto_simcore::rng::DetRng;
use toto_simcore::time::SimTime;

const NODES: u32 = 14;
const SERVICES: u64 = 220;

/// The gen5 Table-2 mix stretched to `nodes`: ~16 services per node, one
/// BC (4 replicas) per seven services, same per-service loads as the
/// 14-node fixture.
fn loaded_cluster_at(nodes: u32, services: u64) -> (Cluster, MetricId, MetricId) {
    let mut metrics = MetricRegistry::new();
    let cpu = metrics.register(MetricDef {
        name: "Cpu".into(),
        node_capacity: 96.0,
        balancing_weight: 1.0,
    });
    let disk = metrics.register(MetricDef {
        name: "Disk".into(),
        node_capacity: 7000.0,
        balancing_weight: 1.0,
    });
    let mut cluster = Cluster::new(ClusterConfig {
        node_count: nodes,
        metrics,
        fault_domains: (nodes / 2).max(7).min(nodes),
    });
    let mut plb = Plb::new(PlbConfig::default(), 9);
    let mut rng = DetRng::seed_from_u64(5);
    for i in 0..services {
        let mut load = cluster.metrics().zero_load();
        let bc = i % 7 == 0;
        load[cpu] = if bc { 4.0 } else { 2.0 };
        load[disk] = if bc {
            350.0
        } else {
            5.0 + rng.next_f64() * 10.0
        };
        let spec = ServiceSpec {
            name: format!("db-{i}"),
            tag: 0,
            replica_count: if bc { 4 } else { 1 },
            default_load: load,
        };
        plb.create_service(&mut cluster, &spec, SimTime::ZERO)
            .expect("bench fixture must stay feasible");
    }
    assert_eq!(cluster.service_count(), services as usize);
    (cluster, cpu, disk)
}

fn loaded_cluster() -> (Cluster, MetricId, MetricId) {
    loaded_cluster_at(NODES, SERVICES)
}

fn bench_placement(c: &mut Criterion) {
    let (cluster, cpu, disk) = loaded_cluster();
    let mut spec_load = cluster.metrics().zero_load();
    spec_load[cpu] = 8.0;
    spec_load[disk] = 300.0;
    let spec = ServiceSpec {
        name: "new-bc".into(),
        tag: 0,
        replica_count: 4,
        default_load: spec_load,
    };
    c.bench_function("plb_place_bc_x4_on_loaded_ring", |b| {
        let mut plb = Plb::new(PlbConfig::default(), 77);
        b.iter(|| black_box(plb.place_new_service(&cluster, &spec).unwrap()))
    });
    let single = ServiceSpec {
        replica_count: 1,
        ..spec.clone()
    };
    c.bench_function("plb_place_gp_x1_on_loaded_ring", |b| {
        let mut plb = Plb::new(PlbConfig::default(), 78);
        b.iter(|| black_box(plb.place_new_service(&cluster, &single).unwrap()))
    });
}

fn bench_violation_fixing(c: &mut Criterion) {
    c.bench_function("plb_fix_violations_pass", |b| {
        b.iter_batched(
            || {
                let (mut cluster, _, disk) = loaded_cluster();
                // Push three nodes just past disk capacity (overshoot 150)
                // so a mid-size replica clears each violation and the pass
                // performs three real evict/retarget/move decisions.
                for n in 0..3 {
                    let node_load = cluster.node(NodeId(n)).load[disk];
                    let victim = cluster.node(NodeId(n)).replicas[0];
                    let old = cluster.replica(victim).expect("exists").load[disk];
                    cluster.report_load(victim, disk, old + (7_000.0 - node_load) + 150.0);
                }
                assert_eq!(cluster.violations().len(), 3, "fixture must violate");
                (cluster, Plb::new(PlbConfig::default(), 3))
            },
            |(mut cluster, mut plb)| {
                black_box(plb.fix_violations(&mut cluster, SimTime::from_secs(60)));
                // Return the cluster so its teardown lands outside the
                // timed region (criterion drops batched outputs untimed).
                cluster
            },
            criterion::BatchSize::LargeInput,
        )
    });
    c.bench_function("plb_violation_scan_clean_ring", |b| {
        let (cluster, _, _) = loaded_cluster();
        b.iter(|| black_box(cluster.violations()))
    });
}

fn bench_balancing(c: &mut Criterion) {
    c.bench_function("plb_balance_pass", |b| {
        b.iter_batched(
            || {
                let (mut cluster, cpu, _) = loaded_cluster();
                // Heat node 0 well past the balancing threshold.
                let hot: Vec<_> = cluster.node(NodeId(0)).replicas.clone();
                for rid in hot {
                    let load = cluster.replica(rid).expect("exists").load[cpu];
                    cluster.report_load(rid, cpu, load + 4.0);
                }
                (cluster, Plb::new(PlbConfig::default(), 4))
            },
            |(mut cluster, mut plb)| {
                black_box(plb.balance(&mut cluster, SimTime::from_secs(60)));
                cluster
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

/// Pruned-candidate paths on hyperscale rings. On ≥ 64 nodes
/// `pick_target` walks the cost-ordered candidate index (capped at
/// `candidate_limit`), so per-decision cost must stay roughly flat from
/// 100 to 1,000 nodes — the gate script compares these ids against the
/// committed baselines and fails CI when the asymptotic win regresses.
fn bench_hyperscale_rings(c: &mut Criterion) {
    for &nodes in &[100u32, 1000] {
        let services = nodes as u64 * 16;
        let (cluster, cpu, disk) = loaded_cluster_at(nodes, services);
        let mut spec_load = cluster.metrics().zero_load();
        spec_load[cpu] = 8.0;
        spec_load[disk] = 300.0;
        let spec = ServiceSpec {
            name: "new-bc".into(),
            tag: 0,
            replica_count: 4,
            default_load: spec_load,
        };
        c.bench_function(&format!("plb_place_bc_x4_ring_{nodes}"), |b| {
            let mut plb = Plb::new(PlbConfig::default(), 77);
            b.iter(|| black_box(plb.place_new_service(&cluster, &spec).unwrap()))
        });
        c.bench_function(&format!("plb_fix_violations_pass_ring_{nodes}"), |b| {
            b.iter_batched(
                || {
                    let (mut cluster, _, disk) = loaded_cluster_at(nodes, services);
                    for n in 0..3 {
                        let node_load = cluster.node(NodeId(n)).load[disk];
                        let victim = cluster.node(NodeId(n)).replicas[0];
                        let old = cluster.replica(victim).expect("exists").load[disk];
                        cluster.report_load(victim, disk, old + (7_000.0 - node_load) + 150.0);
                    }
                    assert_eq!(cluster.violations().len(), 3, "fixture must violate");
                    (cluster, Plb::new(PlbConfig::default(), 3))
                },
                |(mut cluster, mut plb)| {
                    black_box(plb.fix_violations(&mut cluster, SimTime::from_secs(60)));
                    cluster
                },
                criterion::BatchSize::LargeInput,
            )
        });
        c.bench_function(&format!("plb_violation_scan_ring_{nodes}"), |b| {
            b.iter(|| black_box(cluster.violations()))
        });
    }
}

criterion_group!(
    benches,
    bench_placement,
    bench_violation_fixing,
    bench_balancing,
    bench_hyperscale_rings
);
criterion_main!(benches);
