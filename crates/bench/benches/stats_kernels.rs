//! Statistics kernel benchmarks: the fitting and testing primitives the
//! training pipeline (§4) runs at scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use toto_simcore::rng::DetRng;
use toto_stats::binning::EqualProbabilityBins;
use toto_stats::dist::{Distribution, Fit, Normal};
use toto_stats::dtw::dtw_distance_banded;
use toto_stats::kde::GaussianKde;
use toto_stats::ks::ks_test_normal;
use toto_stats::wilcoxon::wilcoxon_signed_rank;

fn sample(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = DetRng::seed_from_u64(seed);
    let d = Normal::new(10.0, 3.0);
    (0..n).map(|_| d.sample(&mut rng)).collect()
}

fn bench_fitting(c: &mut Criterion) {
    let xs = sample(336, 1); // 8 weeks of one hourly cell
    c.bench_function("normal_fit_336", |b| {
        b.iter(|| black_box(Normal::fit(black_box(&xs)).unwrap()))
    });
    c.bench_function("equal_probability_bins_fit_336_k5", |b| {
        b.iter(|| black_box(EqualProbabilityBins::fit(black_box(&xs), 5).unwrap()))
    });
    c.bench_function("kde_fit_336", |b| {
        b.iter(|| black_box(GaussianKde::fit(black_box(&xs)).unwrap()))
    });
}

fn bench_tests(c: &mut Criterion) {
    let xs = sample(336, 2);
    c.bench_function("ks_test_normal_336", |b| {
        b.iter(|| black_box(ks_test_normal(black_box(&xs)).unwrap()))
    });
    let ys = sample(336, 3);
    c.bench_function("wilcoxon_336_pairs", |b| {
        b.iter(|| black_box(wilcoxon_signed_rank(black_box(&xs), black_box(&ys)).unwrap()))
    });
}

fn bench_dtw(c: &mut Criterion) {
    let a = sample(1008, 4); // two weeks of 20-minute samples
    let bb = sample(1008, 5);
    c.bench_function("dtw_1008_unbanded", |b| {
        b.iter(|| {
            black_box(dtw_distance_banded(
                black_box(&a),
                black_box(&bb),
                usize::MAX,
            ))
        })
    });
    c.bench_function("dtw_1008_band72", |b| {
        b.iter(|| black_box(dtw_distance_banded(black_box(&a), black_box(&bb), 72)))
    });
}

fn bench_sampling(c: &mut Criterion) {
    let xs = sample(336, 6);
    let kde = GaussianKde::fit(&xs).unwrap();
    let bins = EqualProbabilityBins::fit(&xs, 5).unwrap();
    let normal = Normal::fit(&xs).unwrap();
    let mut rng = DetRng::seed_from_u64(7);
    c.bench_function("normal_sample", |b| {
        b.iter(|| black_box(normal.sample(&mut rng)))
    });
    c.bench_function("kde_sample", |b| b.iter(|| black_box(kde.sample(&mut rng))));
    c.bench_function("bins_sample", |b| {
        b.iter(|| black_box(bins.sample(&mut rng)))
    });
}

criterion_group!(
    benches,
    bench_fitting,
    bench_tests,
    bench_dtw,
    bench_sampling
);
criterion_main!(benches);
