//! Tracing overhead on the full-experiment-step hot path.
//!
//! One iteration runs a whole short density experiment (bootstrap plus
//! one simulated hour of metric reports, PLB passes and population
//! churn) under four sink configurations:
//!
//! - `baseline`: no trace session installed at all,
//! - `null`: a [`toto_trace::NullSink`] session (the disabled fast path
//!   every production run pays: one thread-local flag load per callsite),
//! - `ring`: a bounded in-memory flight recorder,
//! - `file`: the streaming binary encoder writing to a temp file.
//!
//! The summary line at the end records each variant's overhead relative
//! to the baseline; the reproducibility contract requires the `null`
//! variant to stay within 1 % of baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use toto::experiment::{DensityExperiment, ExperimentOverrides};
use toto_spec::ScenarioSpec;
use toto_trace::{FileSink, NullSink, RingSink, SessionGuard};

/// One full experiment step: small-but-real bootstrap, one simulated
/// hour of event-loop work. Identical across variants (fixed seeds).
fn run_once() -> f64 {
    let mut scenario = ScenarioSpec::gen5_stage_cluster(110);
    scenario.duration_hours = 1;
    scenario.bootstrap_standard_gp = 40;
    scenario.bootstrap_premium_bc = 8;
    let result = DensityExperiment::new(scenario, ExperimentOverrides::default()).run();
    result.final_reserved_cores
}

fn bench_trace_overhead(c: &mut Criterion) {
    c.bench_function("trace_overhead/baseline", |b| {
        b.iter(|| black_box(run_once()))
    });
    c.bench_function("trace_overhead/null", |b| {
        b.iter(|| {
            let _guard = SessionGuard::install(Box::new(NullSink));
            black_box(run_once())
        })
    });
    c.bench_function("trace_overhead/ring", |b| {
        b.iter(|| {
            let _guard = SessionGuard::install(Box::new(RingSink::new(64 * 1024)));
            black_box(run_once())
        })
    });
    let path = std::env::temp_dir().join(format!("toto-trace-bench-{}.trace", std::process::id()));
    c.bench_function("trace_overhead/file", |b| {
        b.iter(|| {
            let sink = FileSink::create(&path).expect("create bench trace file");
            let _guard = SessionGuard::install(Box::new(sink));
            black_box(run_once())
        })
    });

    // Contract check. The criterion passes above run each variant in a
    // separate multi-second block, which exposes the comparison to CPU
    // frequency drift larger than the effect being measured. Interleave
    // the variants round-robin instead — drift hits all four equally —
    // and compare medians.
    const ROUNDS: usize = 15;
    let mut samples: [Vec<f64>; 4] = [const { Vec::new() }; 4];
    for _ in 0..ROUNDS {
        let t = std::time::Instant::now();
        black_box(run_once());
        samples[0].push(t.elapsed().as_secs_f64());

        let t = std::time::Instant::now();
        let guard = SessionGuard::install(Box::new(NullSink));
        black_box(run_once());
        drop(guard);
        samples[1].push(t.elapsed().as_secs_f64());

        let t = std::time::Instant::now();
        let guard = SessionGuard::install(Box::new(RingSink::new(64 * 1024)));
        black_box(run_once());
        drop(guard);
        samples[2].push(t.elapsed().as_secs_f64());

        let t = std::time::Instant::now();
        let sink = FileSink::create(&path).expect("create bench trace file");
        let guard = SessionGuard::install(Box::new(sink));
        black_box(run_once());
        drop(guard);
        samples[3].push(t.elapsed().as_secs_f64());
    }
    let _ = std::fs::remove_file(&path);
    // Minimum, not mean: scheduler preemption and interrupts only ever
    // add time, so the per-variant minimum is the least-contaminated
    // estimate of the true cost.
    let best = |xs: &mut Vec<f64>| {
        xs.sort_by(f64::total_cmp);
        xs[0]
    };
    let [base, null, ring, file] = samples.each_mut().map(best);
    let pct = |v: f64| (v / base - 1.0) * 100.0;
    println!(
        "trace_overhead vs baseline (interleaved best-of-{ROUNDS}): \
         null {:+.2}%  ring {:+.2}%  file {:+.2}%  (contract: null <= +1%)",
        pct(null),
        pct(ring),
        pct(file)
    );
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
