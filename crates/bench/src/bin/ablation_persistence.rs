//! Ablation: persisted vs non-persisted disk models (§3.3.2).
//!
//! The paper's key modeling nuance is that local-store disk must survive
//! failovers through the Naming Service. This ablation flips the BC disk
//! model to non-persisted and shows the consequence: every failover (and
//! balancing move) resets terabyte-scale disk to the reset value, the
//! cluster's disk signal collapses, and the density study loses its
//! pressure mechanism — exactly the "unexpected behavior" §3.3.2 warns
//! about.

use toto::defaults::gen5_model_set;
use toto::experiment::{DensityExperiment, ExperimentOverrides};
use toto_spec::{EditionKind, ResourceKind, ScenarioSpec};

fn run(label: &str, persisted: bool, hours: u64) {
    let mut scenario = ScenarioSpec::gen5_stage_cluster(140);
    scenario.duration_hours = hours;
    let mut models = gen5_model_set(scenario.model_seed, scenario.report_period_secs);
    for m in &mut models.models {
        if m.resource == ResourceKind::Disk && m.target.matches(EditionKind::PremiumBc) {
            m.persisted = persisted;
        }
    }
    let overrides = ExperimentOverrides {
        models: Some(models),
        ..ExperimentOverrides::default()
    };
    let r = DensityExperiment::new(scenario, overrides).run();
    println!(
        "{label:<24} final disk {:>6.1} TB | {:>3} failovers | adjusted ${:>8.0}",
        r.final_disk_gb / 1024.0,
        r.telemetry.failover_count(None),
        r.revenue.adjusted(),
    );
}

fn main() {
    let hours = toto_bench::BenchArgs::parse().hours_or(144);
    println!("ablation: BC disk persistence at 140% density, {hours}h\n");
    run("persisted (paper)", true, hours);
    run("non-persisted (ablated)", false, hours);
    println!("\nexpected: the ablated run leaks disk on every replica move and the");
    println!("cluster never reaches the density-driven disk pressure the study is");
    println!("designed to measure (§3.3.2's stateful-disk requirement).");
}
