//! Ablation: PLB annealing vs pure greedy placement (§5.2 cites SF's use
//! of simulated annealing "to prevent getting stuck in locally optimal
//! solutions"), plus the model-refresh-period sensitivity (§3.3.1's
//! 15-minute re-read).

use toto::experiment::{DensityExperiment, ExperimentOverrides};
use toto_fabric::plb::PlbConfig;
use toto_spec::ScenarioSpec;

fn run(label: &str, plb: PlbConfig, refresh_secs: Option<u64>, hours: u64) {
    let mut scenario = ScenarioSpec::gen5_stage_cluster(120);
    scenario.duration_hours = hours;
    if let Some(secs) = refresh_secs {
        scenario.model_refresh_secs = secs;
    }
    let overrides = ExperimentOverrides {
        plb: Some(plb),
        ..ExperimentOverrides::default()
    };
    let r = DensityExperiment::new(scenario, overrides).run();
    println!(
        "{label:<30} reserved {:>5.0} | {:>3} redirects | {:>3} failovers | adjusted ${:>8.0}",
        r.final_reserved_cores,
        r.redirect_count,
        r.telemetry.failover_count(None),
        r.revenue.adjusted(),
    );
}

fn main() {
    let hours = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(144);
    println!("ablation: PLB search strategy at 120% density, {hours}h\n");
    run("annealing (default)", PlbConfig::default(), None, hours);
    run(
        "greedy (0 anneal iterations)",
        PlbConfig {
            anneal_iterations: 0,
            ..PlbConfig::default()
        },
        None,
        hours,
    );
    run(
        "hot annealing (T x20)",
        PlbConfig {
            initial_temperature: 1.0,
            ..PlbConfig::default()
        },
        None,
        hours,
    );
    println!("\nmodel refresh period sensitivity (same PLB):\n");
    for secs in [300u64, 900, 3600] {
        run(
            &format!("refresh every {}m", secs / 60),
            PlbConfig::default(),
            Some(secs),
            hours,
        );
    }
}
