//! Ablation: PLB annealing vs pure greedy placement (§5.2 cites SF's use
//! of simulated annealing "to prevent getting stuck in locally optimal
//! solutions"), plus the model-refresh-period sensitivity (§3.3.1's
//! 15-minute re-read).

use toto::experiment::ExperimentOverrides;
use toto_bench::BenchArgs;
use toto_fabric::plb::PlbConfig;
use toto_fleet::{FleetPlan, StderrProgress};
use toto_spec::ScenarioSpec;

fn add(plan: &mut FleetPlan, label: &str, plb: PlbConfig, refresh_secs: Option<u64>, hours: u64) {
    let mut scenario = ScenarioSpec::gen5_stage_cluster(120);
    scenario.duration_hours = hours;
    if let Some(secs) = refresh_secs {
        scenario.model_refresh_secs = secs;
    }
    let overrides = ExperimentOverrides {
        plb: Some(plb),
        ..ExperimentOverrides::default()
    };
    plan.add_pinned(label, scenario, overrides);
}

fn main() {
    let args = BenchArgs::parse();
    let hours = args.hours_or(144);
    println!("ablation: PLB search strategy at 120% density, {hours}h\n");
    // All six variants are one fleet; the first three are the search
    // ablation, the last three the refresh-period sensitivity.
    let mut plan = FleetPlan::new(120);
    add(
        &mut plan,
        "annealing (default)",
        PlbConfig::default(),
        None,
        hours,
    );
    add(
        &mut plan,
        "greedy (0 anneal iterations)",
        PlbConfig {
            anneal_iterations: 0,
            ..PlbConfig::default()
        },
        None,
        hours,
    );
    add(
        &mut plan,
        "hot annealing (T x20)",
        PlbConfig {
            initial_temperature: 1.0,
            ..PlbConfig::default()
        },
        None,
        hours,
    );
    for secs in [300u64, 900, 3600] {
        add(
            &mut plan,
            &format!("refresh every {}m", secs / 60),
            PlbConfig::default(),
            Some(secs),
            hours,
        );
    }

    let report = args.executor().run(plan.jobs(), &StderrProgress);
    for (i, job) in report.jobs.iter().enumerate() {
        if i == 3 {
            println!("\nmodel refresh period sensitivity (same PLB):\n");
        }
        let r = &job
            .outcome
            .output()
            .unwrap_or_else(|| panic!("{} did not complete", job.label))
            .result;
        println!(
            "{:<30} reserved {:>5.0} | {:>3} redirects | {:>3} failovers | adjusted ${:>8.0}",
            job.label,
            r.final_reserved_cores,
            r.redirect_count,
            r.telemetry.failover_count(None),
            r.revenue.adjusted(),
        );
    }
}
