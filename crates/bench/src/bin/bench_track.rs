//! `bench_track` — run the pinned benchmark suite, append the
//! commit-stamped record to `results/benchdata.json`, and (with
//! `--gate`) fail on regressions against the trailing median.
//!
//! ```text
//! bench_track [--gate] [--dry-run] [--out DIR] [--commit HASH] [--date YYYY-MM-DD]
//! ```
//!
//! * default: run the suite, print the typed per-metric verdict table,
//!   append the record.
//! * `--gate`: additionally exit 1 when any suite metric is worse than
//!   the trailing median of its last 5 recorded samples by strictly
//!   more than 10% (the record is appended either way — a regression
//!   should be *visible* in the history, not erased by the gate).
//! * `--dry-run`: never write; measure and judge only.
//! * `--out DIR`: store root (default `results`).
//! * `--commit HASH`: override the commit stamp (default: `git
//!   rev-parse --short HEAD`, falling back to `unknown`).
//! * `--date YYYY-MM-DD`: also write the new record alone to
//!   `DIR/BENCH_<date>.json`, the per-run snapshot CI uploads.
//!
//! Replaces `scripts/plb_bench_gate.sh`: the shell gate compared six
//! criterion point estimates against a committed baseline file with a
//! blunt 5× factor; this gate compares median-of-K samples of ten
//! metrics — including end-to-end sim-events/sec and fleet wall-clock —
//! against a rolling median with a 10% threshold, and its verdict logic
//! is unit-tested (`crates/bench/tests/gate.rs`).

use toto_bench::track::{any_regression, gate_record, render_verdicts, run_suite};
use toto_fleet::{current_commit, BenchRecord, RunStore};

struct Args {
    gate: bool,
    dry_run: bool,
    out: String,
    commit: Option<String>,
    date: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        gate: false,
        dry_run: false,
        out: "results".to_string(),
        commit: None,
        date: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--gate" => args.gate = true,
            "--dry-run" => args.dry_run = true,
            "--out" => args.out = value("--out"),
            "--commit" => args.commit = Some(value("--commit")),
            "--date" => args.date = Some(value("--date")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_track [--gate] [--dry-run] [--out DIR] \
                     [--commit HASH] [--date YYYY-MM-DD]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other:?} (try --help)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let store = RunStore::new(&args.out);
    let prior = match store.load_bench_records() {
        Ok(records) => records,
        Err(e) => {
            eprintln!("bench_track: cannot read benchmark history: {e}");
            std::process::exit(1);
        }
    };

    let mut progress = |name: &str| eprintln!("bench_track: measuring {name} ...");
    let entries = run_suite(&mut progress);
    let commit = args.commit.clone().unwrap_or_else(current_commit);
    let record = BenchRecord::new(commit, entries);

    let verdicts = match gate_record(&prior, &record) {
        Ok(verdicts) => verdicts,
        Err(e) => {
            eprintln!("bench_track: gate error: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", render_verdicts(&verdicts));

    if !args.dry_run {
        let path = store
            .append_bench_record(&record)
            .expect("append benchdata.json");
        println!(
            "recorded {} entries at commit {} -> {}",
            record.entries.len(),
            record.commit,
            path.display()
        );
        if let Some(date) = &args.date {
            let snapshot = std::path::Path::new(&args.out).join(format!("BENCH_{date}.json"));
            std::fs::write(&snapshot, record.to_json().render()).expect("write BENCH snapshot");
            println!("snapshot -> {}", snapshot.display());
        }
    }

    if args.gate && any_regression(&verdicts) {
        eprintln!(
            "bench_track: GATE FAILED: at least one metric regressed >10% \
             vs its trailing median (see table above)"
        );
        std::process::exit(1);
    }
}
