//! Figure 2: the headline summary scatter — relative difference in final
//! CPU reservation level (y) vs relative difference in customer capacity
//! moved due to failovers (x), with the modeled relative adjusted revenue
//! over the 100 % run as the circle size.

use toto_bench::{hours_arg, render_table, run_density_study, DENSITIES};

fn main() {
    let results = run_density_study(hours_arg());
    let base_cores = results[0].final_reserved_cores;
    let base_moved = results[0].telemetry.failed_over_cores(None).max(1.0);
    let base_revenue = results[0].revenue.adjusted();

    println!("Figure 2 — density study summary (all relative to the 100% run)\n");
    let rows: Vec<Vec<String>> = DENSITIES
        .iter()
        .zip(&results)
        .skip(1)
        .map(|(d, r)| {
            vec![
                format!("{d}%"),
                format!(
                    "{:+.1}%",
                    (r.final_reserved_cores / base_cores - 1.0) * 100.0
                ),
                format!(
                    "{:.0}%",
                    r.telemetry.failed_over_cores(None) / base_moved * 100.0
                ),
                format!("{:.0}%", r.revenue.adjusted() / base_revenue * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "density",
                "rel diff final CPU reservation",
                "rel capacity moved (100% = 100)",
                "rel adjusted revenue (circle size)"
            ],
            &rows
        )
    );
    println!("expected shape: reservation rises with density; capacity moved is largest");
    println!("at 140%, whose adjusted revenue falls back below the 120% run.");
}
