//! Figure 3: (a) daily local-store database fraction per cluster for two
//! regions (dispersion box plots); (b) average CPU vs memory utilization
//! of non-idle databases over a daytime window.

use toto_bench::render_table;
use toto_stats::describe::five_number_summary;
use toto_telemetry::synth::{RegionProfile, SynthConfig, TraceGenerator};

fn main() {
    println!("Figure 3(a) — daily % of DBs that are local-store, per cluster\n");
    let mut rows = Vec::new();
    for region in [RegionProfile::region1(), RegionProfile::region2()] {
        let name = region.name.clone();
        let gen = TraceGenerator::new(SynthConfig { seed: 42, region });
        let fractions: Vec<f64> = gen
            .local_store_fractions(60, 7)
            .iter()
            .map(|f| f * 100.0)
            .collect();
        let s = five_number_summary(&fractions);
        rows.push(vec![name, s.render()]);
    }
    println!("{}", render_table(&["region", "box plot (percent)"], &rows));

    println!("Figure 3(b) — average CPU vs memory utilization (idle removed)\n");
    let gen = TraceGenerator::new(SynthConfig {
        seed: 42,
        region: RegionProfile::region1(),
    });
    let pts = gen.utilization_scatter(5000);
    // Render the scatter as a coarse 2D histogram.
    let mut grid = [[0u32; 10]; 10];
    for (cpu, mem) in &pts {
        let x = ((cpu / 10.0) as usize).min(9);
        let y = ((mem / 10.0) as usize).min(9);
        grid[y][x] += 1;
    }
    println!("      CPU%  0-10 10-20 ... 90-100 (columns), Memory% rows top=90-100");
    for y in (0..10).rev() {
        let row: Vec<String> = (0..10).map(|x| format!("{:>5}", grid[y][x])).collect();
        println!("{:>3}% | {}", y * 10, row.join(" "));
    }
    let low = pts.iter().filter(|(c, _)| *c < 25.0).count();
    println!(
        "\n{:.1}% of databases sit below 25% CPU — the low-utilization mass that",
        low as f64 / pts.len() as f64 * 100.0
    );
    println!("motivates resource-level (not TPC-x) benchmarking (§2).");
}
