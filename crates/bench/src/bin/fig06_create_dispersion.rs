//! Figure 6: dispersion box plots of creates per hour-of-day, for
//! Standard/GP weekday/weekend (a, b) and Premium/BC weekday/weekend
//! (c, d), from the synthetic production trace.

use toto_bench::render_table;
use toto_simcore::time::DayKind;
use toto_spec::EditionKind;
use toto_stats::describe::five_number_summary;
use toto_telemetry::synth::{RegionProfile, SynthConfig, TraceGenerator};

fn main() {
    let gen = TraceGenerator::new(SynthConfig {
        seed: 7,
        region: RegionProfile::region1(),
    });
    for (panel, edition, day) in [
        ("a", EditionKind::StandardGp, DayKind::Weekday),
        ("b", EditionKind::StandardGp, DayKind::Weekend),
        ("c", EditionKind::PremiumBc, DayKind::Weekday),
        ("d", EditionKind::PremiumBc, DayKind::Weekend),
    ] {
        println!("Figure 6({panel}) — {edition} {day:?} creates per hour of day\n");
        let trace = gen.hourly_creates(edition, 8);
        let mut rows = Vec::new();
        for hour in 0..24 {
            let values: Vec<f64> = trace
                .iter()
                .filter(|o| o.time.day_kind() == day && o.time.hour_of_day() == hour)
                .map(|o| o.value)
                .collect();
            if values.is_empty() {
                continue;
            }
            let s = five_number_summary(&values);
            rows.push(vec![format!("{hour:02}"), s.render()]);
        }
        println!(
            "{}",
            render_table(&["hour", "box plot (creates/hour)"], &rows)
        );
    }
}
