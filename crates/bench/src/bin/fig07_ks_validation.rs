//! Figure 7: dispersion of K-S p-values across the hourly-normal model
//! fits, Standard/GP (a) and Premium/BC (b), for weekday/weekend creates
//! and drops. The paper's criterion: all but a few p-values exceed the
//! α = 0.05 significance line, so the normality hypothesis stands.

use toto_bench::render_table;
use toto_models::training::train_hourly_table;
use toto_simcore::time::DayKind;
use toto_spec::EditionKind;
use toto_stats::describe::five_number_summary;
use toto_telemetry::synth::{RegionProfile, SynthConfig, TraceGenerator};

fn main() {
    let gen = TraceGenerator::new(SynthConfig {
        seed: 7,
        region: RegionProfile::region1(),
    });
    println!("Figure 7 — K-S p-value dispersion of hourly-normal fits (α = 0.05)\n");
    let mut rows = Vec::new();
    for edition in EditionKind::ALL {
        for (label, obs) in [
            ("create", gen.hourly_creates(edition, 8)),
            ("drop", gen.hourly_drops(edition, 8)),
        ] {
            let (_table, report) = train_hourly_table(&obs);
            for day in DayKind::ALL {
                let ps: Vec<f64> = report
                    .cell_ks
                    .iter()
                    .filter(|((d, _), r)| *d == day.index() && r.is_some())
                    .map(|(_, r)| r.unwrap().p_value)
                    .collect();
                let s = five_number_summary(&ps);
                let accepted = ps.iter().filter(|p| **p > 0.05).count();
                rows.push(vec![
                    format!("{edition} {label} {day:?}"),
                    s.render(),
                    format!("{accepted}/{} cells > 0.05", ps.len()),
                ]);
            }
        }
    }
    println!(
        "{}",
        render_table(&["model family", "p-value box plot", "accepted"], &rows)
    );
}
