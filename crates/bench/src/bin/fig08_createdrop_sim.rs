//! Figure 8: region-level validation of the Create/Drop DB models — the
//! trained models are executed 100 times and compared with the production
//! trace: (a) net creates, (b) creates, (c) drops. The paper's check: the
//! simulated envelope brackets the trace and the mean of the 100 runs
//! nearly overlaps it.

use toto_bench::{render_table, BenchArgs};
use toto_fleet::{FleetTask, StderrProgress};
use toto_models::createdrop::CreateDropModel;
use toto_models::training::train_hourly_table;
use toto_simcore::rng::DetRng;
use toto_simcore::time::{SimDuration, SimTime};
use toto_spec::EditionKind;
use toto_telemetry::synth::{RegionProfile, SynthConfig, TraceGenerator};

/// One of the 100 model executions: samples a week of hourly creates and
/// drops under this run's fixed seed. Pure function of `(model, run)`, so
/// the fleet can run all 100 on any number of threads with identical
/// output.
struct SampleRun<'m> {
    model: &'m CreateDropModel,
    edition: EditionKind,
    week_hours: usize,
    run: u64,
}

impl FleetTask for SampleRun<'_> {
    type Output = (Vec<f64>, Vec<f64>);

    fn label(&self) -> String {
        format!("sample-run-{:03}", self.run)
    }

    fn seed(&self) -> u64 {
        1000 + self.run
    }

    fn run(&self) -> (Vec<f64>, Vec<f64>) {
        let mut rng = DetRng::seed_from_u64(self.seed());
        let mut creates = vec![0.0f64; self.week_hours];
        let mut drops = vec![0.0f64; self.week_hours];
        for h in 0..self.week_hours {
            let t = SimTime::ZERO + SimDuration::from_hours(h as u64);
            creates[h] = self.model.sample_creates(self.edition, t, &mut rng) as f64;
            drops[h] = self.model.sample_drops(self.edition, t, &mut rng) as f64;
        }
        (creates, drops)
    }
}

fn main() {
    let args = BenchArgs::parse();
    let gen = TraceGenerator::new(SynthConfig {
        seed: 7,
        region: RegionProfile::region1(),
    });
    // Train on 8 weeks, validate against a 1-week window of the trace.
    let edition = EditionKind::StandardGp;
    let creates = gen.hourly_creates(edition, 8);
    let drops = gen.hourly_drops(edition, 8);
    let (create_table, _) = train_hourly_table(&creates);
    let (drop_table, _) = train_hourly_table(&drops);
    let model = CreateDropModel::new(
        [create_table.clone(), create_table],
        [drop_table.clone(), drop_table],
    );

    // The 100 model executions run as a fleet: seeds 1000..1100 exactly
    // as the historical serial loop used, one task per run.
    let week_hours = 7 * 24;
    let runs = 100;
    let tasks: Vec<SampleRun> = (0..runs as u64)
        .map(|run| SampleRun {
            model: &model,
            edition,
            week_hours,
            run,
        })
        .collect();
    let report = args.executor().run(&tasks, &StderrProgress);
    assert!(report.all_completed(), "sampling tasks cannot fail");
    let (sim_creates, sim_drops): (Vec<Vec<f64>>, Vec<Vec<f64>>) = report
        .jobs
        .into_iter()
        .map(|job| match job.outcome {
            toto_fleet::JobOutcome::Completed(series) => series,
            other => panic!("{} did not complete: {}", job.label, other.status()),
        })
        .unzip();

    println!("Figure 8 — production trace vs 100 simulated runs (daily totals)\n");
    let mut rows = Vec::new();
    for day in 0..7 {
        let hours = day * 24..(day + 1) * 24;
        let prod_c: f64 = creates[hours.clone()].iter().map(|o| o.value).sum();
        let prod_d: f64 = drops[hours.clone()].iter().map(|o| o.value).sum();
        let sims_c: Vec<f64> = sim_creates
            .iter()
            .map(|run| run[hours.clone()].iter().sum::<f64>())
            .collect();
        let sims_d: Vec<f64> = sim_drops
            .iter()
            .map(|run| run[hours.clone()].iter().sum::<f64>())
            .collect();
        let mean_c = sims_c.iter().sum::<f64>() / runs as f64;
        let mean_d = sims_d.iter().sum::<f64>() / runs as f64;
        let (min_c, max_c) = minmax(&sims_c);
        let (min_d, max_d) = minmax(&sims_d);
        rows.push(vec![
            format!("{day}"),
            format!("{prod_c:.0}"),
            format!("{mean_c:.0} [{min_c:.0},{max_c:.0}]"),
            format!("{prod_d:.0}"),
            format!("{mean_d:.0} [{min_d:.0},{max_d:.0}]"),
            format!("{:.0}", prod_c - prod_d),
            format!("{:.0}", mean_c - mean_d),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "day",
                "prod creates",
                "sim creates mean [min,max]",
                "prod drops",
                "sim drops mean [min,max]",
                "prod net",
                "sim net mean"
            ],
            &rows
        )
    );
    // The envelope should bracket the trace on most days.
    println!("(trace day totals are from the training region; the mean of 100 runs");
    println!(" should track them closely, as in the paper's Figure 8)");
}

fn minmax(xs: &[f64]) -> (f64, f64) {
    xs.iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        })
}
