//! Figure 9: steady-state disk usage — the hourly-normal model's
//! cumulative disk usage vs the production trace over two weeks, plus the
//! §4.2.2 model-selection comparison (hourly normal vs KDE vs customized
//! binning) under DTW and RMSE.

use toto_bench::render_table;
use toto_models::training::{train_steady_state, HourlyObservation};
use toto_simcore::rng::DetRng;
use toto_simcore::time::SimTime;
use toto_stats::binning::EqualProbabilityBins;
use toto_stats::dist::{Distribution, Normal};
use toto_stats::dtw::dtw_distance;
use toto_stats::error::rmse;
use toto_stats::kde::GaussianKde;
use toto_telemetry::synth::{RegionProfile, SynthConfig, TraceGenerator};

fn main() {
    let gen = TraceGenerator::new(SynthConfig {
        seed: 11,
        region: RegionProfile::region1(),
    });
    // Two weeks of 20-minute deltas from a steady-state database.
    let periods = 14 * 24 * 3;
    let trace = gen.disk_delta_trace(12, periods); // db 12 is steady-state
    let production = TraceGenerator::accumulate(100.0, &trace);

    // Train the hourly-normal model on the deltas.
    let observations: Vec<HourlyObservation> = trace
        .deltas
        .iter()
        .enumerate()
        .map(|(i, d)| HourlyObservation {
            time: SimTime::from_secs(i as u64 * trace.period_secs),
            value: *d,
        })
        .collect();
    let (table, _) = train_steady_state(&observations);

    // Generate each candidate model's cumulative usage (seed 99 for the
    // displayed curves; the selection metrics below average many seeds).
    let mut rng = DetRng::seed_from_u64(99);
    let kde = GaussianKde::fit(&trace.deltas).expect("non-empty trace");
    let bins = EqualProbabilityBins::fit(&trace.deltas, 10).expect("non-empty trace");
    let hourly_normal = accumulate_with(&mut rng, periods, trace.period_secs, |t, rng| {
        let (mu, sigma) = table.cell(t.day_kind().index(), t.hour_of_day() as usize);
        Normal::new(mu, sigma).sample(rng)
    });
    let kde_usage = accumulate_with(&mut rng, periods, trace.period_secs, |_, rng| {
        kde.sample(rng)
    });
    let bin_usage = accumulate_with(&mut rng, periods, trace.period_secs, |_, rng| {
        bins.sample(rng)
    });

    println!("Figure 9 — cumulative disk usage, production vs models (GB)\n");
    let mut rows = Vec::new();
    for day in (0..14).step_by(2) {
        let idx = day * 72;
        rows.push(vec![
            format!("{day}"),
            format!("{:.1}", production[idx]),
            format!("{:.1}", hourly_normal[idx]),
            format!("{:.1}", kde_usage[idx]),
            format!("{:.1}", bin_usage[idx]),
        ]);
    }
    rows.push(vec![
        "14".into(),
        format!("{:.1}", production[periods - 1]),
        format!("{:.1}", hourly_normal[periods - 1]),
        format!("{:.1}", kde_usage[periods - 1]),
        format!("{:.1}", bin_usage[periods - 1]),
    ]);
    println!(
        "{}",
        render_table(
            &["day", "production", "hourly normal", "KDE", "binning"],
            &rows
        )
    );

    println!("model selection (§4.2.2), averaged over 25 simulation seeds — lower is better:\n");
    let mut scores = [(0.0f64, 0.0f64); 3];
    let seeds = 25;
    for seed in 0..seeds {
        let mut rng = DetRng::seed_from_u64(500 + seed);
        let hn = accumulate_with(&mut rng, periods, trace.period_secs, |t, rng| {
            let (mu, sigma) = table.cell(t.day_kind().index(), t.hour_of_day() as usize);
            Normal::new(mu, sigma).sample(rng)
        });
        let kd = accumulate_with(&mut rng, periods, trace.period_secs, |_, rng| {
            kde.sample(rng)
        });
        let bi = accumulate_with(&mut rng, periods, trace.period_secs, |_, rng| {
            bins.sample(rng)
        });
        for (slot, series) in [&hn, &kd, &bi].into_iter().enumerate() {
            scores[slot].0 += dtw_distance(&production, series) / seeds as f64;
            scores[slot].1 += rmse(&production, series) / seeds as f64;
        }
    }
    let rows: Vec<Vec<String>> = ["hourly normal", "KDE", "customized binning"]
        .iter()
        .zip(scores)
        .map(|(name, (dtw, rm))| vec![name.to_string(), format!("{dtw:.1}"), format!("{rm:.2}")])
        .collect();
    println!("{}", render_table(&["model", "avg DTW", "avg RMSE"], &rows));
}

fn accumulate_with(
    rng: &mut DetRng,
    periods: usize,
    period_secs: u64,
    mut delta: impl FnMut(SimTime, &mut DetRng) -> f64,
) -> Vec<f64> {
    let mut v = 100.0f64;
    (0..periods)
        .map(|i| {
            let t = SimTime::from_secs(i as u64 * period_secs);
            v = (v + delta(t, rng)).max(0.0);
            v
        })
        .collect()
}
