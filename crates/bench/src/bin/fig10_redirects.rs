//! Figure 10: creation attempts redirected because the ring ran out of a
//! resource, cumulative over the 6-day run, one series per density level.
//!
//! Expected shape (§5.3.1): lower densities redirect first (the paper saw
//! hour 23 at 100 %, 28 at 110 %, 55 at 120 %); the highest density sees
//! few or none.

use toto_bench::{hours_arg, render_table, run_density_study, DENSITIES};

fn main() {
    let results = run_density_study(hours_arg());
    println!("Figure 10 — cumulative creation redirects per hour\n");
    let mut rows = Vec::new();
    let hours = results[0].telemetry.creation_redirects.len();
    // Print every 12th hour to keep the table readable, plus the last.
    for h in (0..hours).step_by(12).chain([hours - 1]) {
        let mut row = vec![format!("{h}")];
        for r in &results {
            let v = r.telemetry.creation_redirects.points()[h].1;
            row.push(format!("{v:.0}"));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("hour".to_string())
        .chain(DENSITIES.iter().map(|d| format!("{d}%")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("{}", render_table(&header_refs, &rows));
    println!("first redirect hour per density:");
    for (d, r) in DENSITIES.iter().zip(&results) {
        match r.first_redirect_hour {
            Some(h) => println!("  {d:>3}%: hour {h}"),
            None => println!("  {d:>3}%: no redirects"),
        }
    }
}
