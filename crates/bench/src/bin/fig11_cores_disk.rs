//! Figure 11: reserved cores vs cluster disk usage, one point per hour
//! over the 6-day run, one series per density level.
//!
//! Expected shape: higher densities reach higher reserved-core levels;
//! the 120 %/140 % runs separate upward in disk from 100 %/110 % (the
//! paper traces this to a single high-initial-growth BC database admitted
//! only at the higher densities).

use toto_bench::{hours_arg, render_table, run_density_study, DENSITIES};

fn main() {
    let results = run_density_study(hours_arg());
    println!("Figure 11 — reserved cores vs disk usage (hourly samples)\n");
    let hours = results[0].telemetry.reserved_cores.len();
    let mut rows = Vec::new();
    for h in (0..hours).step_by(12).chain([hours - 1]) {
        let mut row = vec![format!("{h}")];
        for r in &results {
            let cores = r.telemetry.reserved_cores.points()[h].1;
            let disk = r.telemetry.disk_usage.points()[h].1;
            row.push(format!("{cores:.0}c/{:.1}T", disk / 1024.0));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("hour".to_string())
        .chain(DENSITIES.iter().map(|d| format!("{d}%")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("{}", render_table(&header_refs, &rows));
    println!(
        "(cores / disk-TB; logical capacity: {:.0} cores at 100%, {:.1} TB disk)",
        results[0].scenario.total_logical_cores(),
        results[0].scenario.total_logical_disk_gb() / 1024.0
    );
    println!("\nfailovers per 24h window:");
    for (d, r) in DENSITIES.iter().zip(&results) {
        let t0 = r.telemetry.reserved_cores.points()[0].0;
        let mut windows = vec![0usize; (hours / 24) + 1];
        for f in &r.telemetry.failovers {
            let idx = (f.time.saturating_since(t0).as_secs() / 86_400) as usize;
            if idx < windows.len() {
                windows[idx] += 1;
            }
        }
        println!("  {d:>3}%: {windows:?}");
    }
}
