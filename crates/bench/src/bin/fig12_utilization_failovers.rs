//! Figure 12: (a) disk and reserved-core utilization at the end of each
//! experiment, relative to the 100 % run; (b) total failed-over cores,
//! split GP vs BC.
//!
//! Expected shape: reserved-core utilization grows with density (≈ +30 %
//! at 140 %); 140 % fails over the most cores, predominantly Premium/BC;
//! 120 % is lowest.

use toto_bench::{hours_arg, render_table, run_density_study, DENSITIES};
use toto_spec::EditionKind;

fn main() {
    let results = run_density_study(hours_arg());
    let base_cores = results[0].final_reserved_cores;
    let base_disk = results[0].final_disk_gb;

    println!("Figure 12(a) — relative utilization at end of run (100% = 1.00)\n");
    let rows: Vec<Vec<String>> = DENSITIES
        .iter()
        .zip(&results)
        .map(|(d, r)| {
            vec![
                format!("{d}%"),
                format!("{:.3}", r.final_reserved_cores / base_cores),
                format!("{:.3}", r.final_disk_gb / base_disk),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["density", "rel reserved cores", "rel disk"], &rows)
    );

    println!("Figure 12(b) — total failed-over cores over the run\n");
    let rows: Vec<Vec<String>> = DENSITIES
        .iter()
        .zip(&results)
        .map(|(d, r)| {
            let gp = r.telemetry.failed_over_cores(Some(EditionKind::StandardGp));
            let bc = r.telemetry.failed_over_cores(Some(EditionKind::PremiumBc));
            vec![
                format!("{d}%"),
                format!("{gp:.0}"),
                format!("{bc:.0}"),
                format!("{:.0}", gp + bc),
                format!("{}", r.telemetry.failover_count(None)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "density",
                "GP cores",
                "BC cores",
                "total cores",
                "failovers"
            ],
            &rows
        )
    );
}
