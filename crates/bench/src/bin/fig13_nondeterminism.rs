//! Figure 13: quantifying PLB non-determinism — three identical 18-hour
//! experiments differing only in the PLB's (unfixable) annealing seed.
//! Node-level 10-minute readings of disk usage and reserved cores are
//! compared pairwise with the Wilcoxon signed-rank test; the paper found
//! all but one of six tests insignificant at α = 0.05 and failover counts
//! of 1 / 0 / 1.

use toto::experiment::ExperimentOverrides;
use toto_bench::{render_table, BenchArgs};
use toto_fleet::{FleetPlan, StderrProgress};
use toto_spec::ScenarioSpec;
use toto_stats::describe::five_number_summary;
use toto_stats::wilcoxon::wilcoxon_signed_rank;

const PLB_SEEDS: [u64; 3] = [11, 222, 3333];

fn main() {
    let args = BenchArgs::parse();
    // The three repeats differ only in the PLB annealing seed, so they
    // are pinned jobs (scenario seeds held fixed, not derived) in one
    // fleet — the repeats run concurrently instead of back to back.
    let mut plan = FleetPlan::new(13);
    for plb_seed in PLB_SEEDS {
        let mut scenario = ScenarioSpec::gen5_stage_cluster(110);
        scenario.duration_hours = args.hours_or(18);
        scenario.plb_seed = plb_seed;
        plan.add_pinned(
            format!("plb-seed-{plb_seed}"),
            scenario,
            ExperimentOverrides::default(),
        );
    }
    let report = args.executor().run(plan.jobs(), &StderrProgress);
    let mut runs = Vec::new();
    for (i, job) in report.jobs.into_iter().enumerate() {
        let r = match job.outcome {
            toto_fleet::JobOutcome::Completed(out) => out.result,
            other => panic!("{} did not complete: {}", job.label, other.status()),
        };
        println!(
            "experiment {} (plb seed {}): {} failovers",
            i + 1,
            PLB_SEEDS[i],
            r.telemetry.failover_count(None)
        );
        runs.push(r);
    }

    println!("\nFigure 13(a) — dispersion of mean node-level disk usage (GB)\n");
    let disk: Vec<Vec<f64>> = runs
        .iter()
        .map(|r| r.telemetry.node_values(|s| s.disk_gb))
        .collect();
    let cores: Vec<Vec<f64>> = runs
        .iter()
        .map(|r| r.telemetry.node_values(|s| s.cores))
        .collect();
    let mut rows = Vec::new();
    for (i, d) in disk.iter().enumerate() {
        rows.push(vec![
            format!("exp {}", i + 1),
            five_number_summary(d).render(),
        ]);
    }
    println!("{}", render_table(&["run", "disk GB box plot"], &rows));

    println!("Figure 13(b) — dispersion of node-level reserved cores\n");
    let mut rows = Vec::new();
    for (i, c) in cores.iter().enumerate() {
        rows.push(vec![
            format!("exp {}", i + 1),
            five_number_summary(c).render(),
        ]);
    }
    println!("{}", render_table(&["run", "cores box plot"], &rows));

    // Pair per-node averages: readings within a node are strongly
    // autocorrelated, so the honest pairing unit is the node (n = 14),
    // matching the paper's node-level comparison.
    let node_means = |values: &[f64], nodes: usize| -> Vec<f64> {
        let mut sums = vec![0.0f64; nodes];
        let mut counts = vec![0usize; nodes];
        for (i, v) in values.iter().enumerate() {
            sums[i % nodes] += v;
            counts[i % nodes] += 1;
        }
        sums.iter().zip(counts).map(|(s, c)| s / c as f64).collect()
    };
    let nodes = 14;
    let disk_means: Vec<Vec<f64>> = disk.iter().map(|d| node_means(d, nodes)).collect();
    let core_means: Vec<Vec<f64>> = cores.iter().map(|c| node_means(c, nodes)).collect();
    println!("Wilcoxon signed-rank over paired per-node means, pairwise (α = 0.05):\n");
    let mut rows = Vec::new();
    for (metric, data) in [("disk", &disk_means), ("cores", &core_means)] {
        for (a, b) in [(0usize, 1usize), (0, 2), (1, 2)] {
            let n = data[a].len().min(data[b].len());
            let res = wilcoxon_signed_rank(&data[a][..n], &data[b][..n]);
            let (p, verdict) = match res {
                Some(r) => (
                    format!("{:.4}", r.p_value),
                    if r.same_distribution(0.05) {
                        "insignificant"
                    } else {
                        "SIGNIFICANT"
                    },
                ),
                None => ("n/a".to_string(), "identical"),
            };
            rows.push(vec![
                format!("{metric}: exp {} vs exp {}", a + 1, b + 1),
                p,
                verdict.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["comparison", "p-value", "verdict"], &rows)
    );
}
