//! Figure 14: total modeled adjusted revenue per density level (§5.1,
//! §5.3.5).
//!
//! Expected shape: revenue rises with density up to 120 % and *drops* at
//! 140 %, whose SLA penalty dwarfs the other runs (paper: > 60x).

use toto_bench::{hours_arg, render_table, run_density_study, DENSITIES};

fn main() {
    let results = run_density_study(hours_arg());
    println!("Figure 14 — modeled adjusted revenue over the run\n");
    let rows: Vec<Vec<String>> = DENSITIES
        .iter()
        .zip(&results)
        .map(|(d, r)| {
            vec![
                format!("{d}%"),
                format!("{:.0}", r.revenue.compute),
                format!("{:.0}", r.revenue.storage),
                format!("{:.2}", r.revenue.penalty),
                format!("{:.0}", r.revenue.adjusted()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "density",
                "compute $",
                "storage $",
                "penalty $",
                "adjusted $"
            ],
            &rows
        )
    );
    let base = results[0].revenue.adjusted();
    println!("relative adjusted revenue vs 100%:");
    for (d, r) in DENSITIES.iter().zip(&results) {
        println!("  {d:>3}%: {:.3}", r.revenue.adjusted() / base);
    }
}
