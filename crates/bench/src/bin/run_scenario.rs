//! Declarative benchmark submission: run any scenario from its XML spec.
//!
//! This is the paper's §1 promise made concrete — "Toto allows for
//! declarative benchmark submission … to reliably and repeatably evaluate
//! different service settings and configurations":
//!
//! ```text
//! # write the default gen5 scenario to a file, edit it, run it
//! cargo run --release -p toto-bench --bin run_scenario -- --emit 120 > my.xml
//! cargo run --release -p toto-bench --bin run_scenario -- my.xml
//! ```

use toto::experiment::{DensityExperiment, ExperimentOverrides};
use toto_spec::{EditionKind, ScenarioSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--emit") => {
            let density: u32 = args.get(2).and_then(|d| d.parse().ok()).unwrap_or(100);
            print!(
                "{}",
                ScenarioSpec::gen5_stage_cluster(density).to_xml_string()
            );
        }
        Some(path) => {
            let xml = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read scenario '{path}': {e}"));
            let scenario = ScenarioSpec::from_xml_str(&xml)
                .unwrap_or_else(|e| panic!("invalid scenario XML: {e}"));
            eprintln!(
                "running '{}' ({} nodes, {}% density, {}h)…",
                scenario.name,
                scenario.node_count,
                scenario.density_percent,
                scenario.duration_hours
            );
            let r = DensityExperiment::new(scenario, ExperimentOverrides::default()).run();
            println!(
                "bootstrap: {} databases, {:.0} free cores, {:.1}% disk",
                r.bootstrap.services.len(),
                r.bootstrap.free_cores,
                r.bootstrap.disk_utilization * 100.0
            );
            println!(
                "final:     {:.0} reserved cores, {:.1} TB disk",
                r.final_reserved_cores,
                r.final_disk_gb / 1024.0
            );
            println!(
                "redirects: {} (first at hour {:?})",
                r.redirect_count, r.first_redirect_hour
            );
            println!(
                "failovers: {} ({:.0} cores, {:.0} BC cores)",
                r.telemetry.failover_count(None),
                r.telemetry.failed_over_cores(None),
                r.telemetry.failed_over_cores(Some(EditionKind::PremiumBc))
            );
            println!(
                "revenue:   ${:.0} adjusted (${:.2} penalty)",
                r.revenue.adjusted(),
                r.revenue.penalty
            );
        }
        None => {
            eprintln!("usage: run_scenario <scenario.xml> | --emit [density]");
            std::process::exit(2);
        }
    }
}
