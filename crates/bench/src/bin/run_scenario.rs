//! Declarative benchmark submission: run any scenario from its spec.
//!
//! This is the paper's §1 promise made concrete — "Toto allows for
//! declarative benchmark submission … to reliably and repeatably evaluate
//! different service settings and configurations". Two spec dialects
//! share one resolution path in `toto_scenario::cli`:
//!
//! ```text
//! # write the default gen5 scenario XML to a file, edit it, run it
//! cargo run --release -p toto-bench --bin run_scenario -- --emit 120 > my.xml
//! cargo run --release -p toto-bench --bin run_scenario -- my.xml
//!
//! # run a scenario DSL file or built-in by name
//! cargo run --release -p toto-bench --bin run_scenario -- --scenario density_sweep
//! ```
//!
//! The XML path compiles the spec into a single pinned fleet job
//! ([`toto_scenario::cli::xml_spec_plan`]) and runs it through the same
//! executor-and-store pipeline as every other run, so artifacts land
//! under `results/runs/<name>/` instead of vanishing into stdout.

use toto_fleet::{
    FleetExecutor, FleetManifest, ManifestJob, RunRecord, RunStore, StderrProgress,
    RUN_SCHEMA_VERSION,
};
use toto_scenario::cli::{run_cli, xml_spec_plan, CliArgs};
use toto_spec::{EditionKind, ScenarioSpec};

fn run_xml(path: &str) {
    let xml = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read scenario '{path}': {e}"));
    let scenario =
        ScenarioSpec::from_xml_str(&xml).unwrap_or_else(|e| panic!("invalid scenario XML: {e}"));
    eprintln!(
        "running '{}' ({} nodes, {}% density, {}h)…",
        scenario.name, scenario.node_count, scenario.density_percent, scenario.duration_hours
    );
    let plan = xml_spec_plan(scenario, 0);
    let report = FleetExecutor::new(1).run(plan.jobs(), &StderrProgress);
    let Some((job, out)) = report.completed().next() else {
        eprintln!("run_scenario: experiment failed");
        std::process::exit(1);
    };
    let r = &out.result;
    println!(
        "bootstrap: {} databases, {:.0} free cores, {:.1}% disk",
        r.bootstrap.services.len(),
        r.bootstrap.free_cores,
        r.bootstrap.disk_utilization * 100.0
    );
    println!(
        "final:     {:.0} reserved cores, {:.1} TB disk",
        r.final_reserved_cores,
        r.final_disk_gb / 1024.0
    );
    println!(
        "redirects: {} (first at hour {:?})",
        r.redirect_count, r.first_redirect_hour
    );
    println!(
        "failovers: {} ({:.0} cores, {:.0} BC cores)",
        r.telemetry.failover_count(None),
        r.telemetry.failed_over_cores(None),
        r.telemetry.failed_over_cores(Some(EditionKind::PremiumBc))
    );
    println!(
        "revenue:   ${:.0} adjusted (${:.2} penalty)",
        r.revenue.adjusted(),
        r.revenue.penalty
    );
    let manifest = FleetManifest {
        schema_version: RUN_SCHEMA_VERSION,
        fleet: job.label.clone(),
        root_seed: plan.root_seed(),
        threads: report.threads as u64,
        wall_secs: report.wall_secs,
        jobs: report
            .jobs
            .iter()
            .map(|j| ManifestJob {
                label: j.label.clone(),
                seed: j.seed,
                status: j.outcome.status().to_string(),
                wall_secs: j.wall_secs,
            })
            .collect(),
    };
    let records = [RunRecord::from_result(&job.label, job.seed, r)];
    let store = RunStore::new("results");
    match store.save_fleet(&manifest, &records) {
        Ok(dir) => println!("artifacts:  {}", dir.display()),
        Err(e) => {
            eprintln!("run_scenario: cannot write artifacts: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("--emit") => {
            let density: u32 = argv.get(1).and_then(|d| d.parse().ok()).unwrap_or(100);
            print!(
                "{}",
                ScenarioSpec::gen5_stage_cluster(density).to_xml_string()
            );
        }
        Some(path) if argv.len() == 1 && !path.starts_with("--") => run_xml(path),
        Some(_) => {
            // Scenario DSL: same flag set as `scenario_runner`.
            let args = match CliArgs::parse(&argv) {
                Ok(args) => args,
                Err(e) => {
                    eprintln!("run_scenario: {e}");
                    std::process::exit(2);
                }
            };
            match run_cli(&args, &StderrProgress) {
                Ok(summary) => {
                    println!(
                        "scenario {}: {} completed, {} failed -> {}",
                        summary.fleet_name,
                        summary.completed,
                        summary.failed,
                        summary.dir.display()
                    );
                    if summary.chaos_violations > 0 || summary.failed > 0 {
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("run_scenario: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => {
            eprintln!(
                "usage: run_scenario <scenario.xml> | --emit [density] | \
                 --scenario NAME|FILE [--seeds N] [--threads T] [--hours H] [--out DIR] [--trace]"
            );
            std::process::exit(2);
        }
    }
}
