//! Extension study: the density levels' hidden performance tax.
//!
//! The paper scores density with failovers and adjusted revenue; §5.5
//! adds that RgManager's mitigation effectiveness should be measured
//! too. With the CPU-usage model feeding each node's governor, we report
//! how much customer CPU *demand* went unserved at each density —
//! invisible to the PLB (reservations are unchanged) but very visible to
//! customers.
//!
//! Two tenant populations are studied: the production-representative
//! low-utilization mix of Figure 3(b), and a bursty what-if mix. The
//! first shows *why* CPU over-subscription is safe at the paper's
//! densities (disk binds long before CPU); the second shows where the
//! cliff would be if utilizations rose.

use toto::defaults::gen5_model_set;
use toto::experiment::ExperimentOverrides;
use toto_bench::{render_table, BenchArgs, DENSITIES};
use toto_fleet::{FleetPlan, StderrProgress};
use toto_spec::model::HourlyTable;
use toto_spec::{ResourceKind, ScenarioSpec};

/// Plan one utilization mix: one pinned job per density level, with the
/// mix's CPU model substituted in.
fn plan_mix(plan: &mut FleetPlan, mix: &str, utilization_peak: f64, sigma: f64, args: &BenchArgs) {
    for &density in &DENSITIES {
        let mut scenario = ScenarioSpec::gen5_stage_cluster(density);
        if let Some(h) = args.hours {
            scenario.duration_hours = h;
        }
        let mut models = gen5_model_set(scenario.model_seed, scenario.report_period_secs);
        for m in &mut models.models {
            if m.resource == ResourceKind::Cpu {
                let mut t = HourlyTable::constant(0.0, 0.0);
                for h in 0..24 {
                    let diurnal = 0.25
                        + 0.75
                            * (0.5
                                + 0.5 * ((h as f64 - 14.0) / 24.0 * std::f64::consts::TAU).cos());
                    let mu = utilization_peak * diurnal;
                    t.cells[0][h] = (mu, sigma);
                    t.cells[1][h] = (mu * 0.6, sigma * 0.7);
                }
                m.steady.hourly = t;
            }
        }
        let overrides = ExperimentOverrides {
            models: Some(models),
            ..ExperimentOverrides::default()
        };
        plan.add_pinned(format!("{mix}-density-{density}"), scenario, overrides);
    }
}

fn main() {
    let args = BenchArgs::parse();
    println!("density study — throttled CPU demand (node governance)\n");

    // Both mixes' jobs (2 × 4 densities) go into one fleet so all eight
    // experiments share the worker pool.
    let mixes = [
        (
            "production-representative utilization (Figure 3b: mostly idle):",
            0.22,
            0.18,
        ),
        (
            "bursty what-if mix (peak demand beyond the reservation):",
            1.2,
            0.6,
        ),
    ];
    let mut plan = FleetPlan::new(55);
    for (i, &(_, peak, sigma)) in mixes.iter().enumerate() {
        plan_mix(&mut plan, &format!("mix{i}"), peak, sigma, &args);
    }
    let report = args.executor().run(plan.jobs(), &StderrProgress);
    let results: Vec<_> = report
        .jobs
        .into_iter()
        .map(|job| match job.outcome {
            toto_fleet::JobOutcome::Completed(out) => out.result,
            other => panic!("{} did not complete: {}", job.label, other.status()),
        })
        .collect();

    for (i, &(label, _, _)) in mixes.iter().enumerate() {
        println!("{label}\n");
        let mut rows = Vec::new();
        for (j, &density) in DENSITIES.iter().enumerate() {
            let r = &results[i * DENSITIES.len() + j];
            let throttled = r.telemetry.cpu_throttling.last_value().unwrap_or(0.0);
            rows.push(vec![
                format!("{density}%"),
                format!("{:.0}", r.final_reserved_cores),
                format!("{throttled:.0}"),
                format!("{}", r.telemetry.contended_governance_passes),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "density",
                    "reserved cores",
                    "throttled core-intervals",
                    "contended node-passes"
                ],
                &rows
            )
        );
        println!();
    }
    println!("take-away: at observed cloud utilizations, CPU density up to 140% is");
    println!("performance-free — disk is the binding resource, which is exactly the");
    println!("paper's density story. Were tenants to run hot, governance contention");
    println!("would appear first on the densest configuration.");
}
