//! Extension study: the density levels' hidden performance tax.
//!
//! The paper scores density with failovers and adjusted revenue; §5.5
//! adds that RgManager's mitigation effectiveness should be measured
//! too. With the CPU-usage model feeding each node's governor, we report
//! how much customer CPU *demand* went unserved at each density —
//! invisible to the PLB (reservations are unchanged) but very visible to
//! customers.
//!
//! Two tenant populations are studied: the production-representative
//! low-utilization mix of Figure 3(b), and a bursty what-if mix. The
//! first shows *why* CPU over-subscription is safe at the paper's
//! densities (disk binds long before CPU); the second shows where the
//! cliff would be if utilizations rose.

use toto::defaults::gen5_model_set;
use toto::experiment::{DensityExperiment, ExperimentOverrides};
use toto_bench::{hours_arg, render_table, DENSITIES};
use toto_spec::model::HourlyTable;
use toto_spec::{ResourceKind, ScenarioSpec};

fn run_mix(label: &str, utilization_peak: f64, sigma: f64, hours: Option<u64>) {
    println!("{label}\n");
    let mut rows = Vec::new();
    for &density in &DENSITIES {
        let mut scenario = ScenarioSpec::gen5_stage_cluster(density);
        if let Some(h) = hours {
            scenario.duration_hours = h;
        }
        let mut models = gen5_model_set(scenario.model_seed, scenario.report_period_secs);
        for m in &mut models.models {
            if m.resource == ResourceKind::Cpu {
                let mut t = HourlyTable::constant(0.0, 0.0);
                for h in 0..24 {
                    let diurnal = 0.25
                        + 0.75
                            * (0.5
                                + 0.5
                                    * ((h as f64 - 14.0) / 24.0 * std::f64::consts::TAU).cos());
                    let mu = utilization_peak * diurnal;
                    t.cells[0][h] = (mu, sigma);
                    t.cells[1][h] = (mu * 0.6, sigma * 0.7);
                }
                m.steady.hourly = t;
            }
        }
        let overrides = ExperimentOverrides {
            models: Some(models),
            ..ExperimentOverrides::default()
        };
        let r = DensityExperiment::new(scenario, overrides).run();
        let throttled = r.telemetry.cpu_throttling.last_value().unwrap_or(0.0);
        rows.push(vec![
            format!("{density}%"),
            format!("{:.0}", r.final_reserved_cores),
            format!("{throttled:.0}"),
            format!("{}", r.telemetry.contended_governance_passes),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "density",
                "reserved cores",
                "throttled core-intervals",
                "contended node-passes"
            ],
            &rows
        )
    );
    println!();
}

fn main() {
    let hours = hours_arg();
    println!("density study — throttled CPU demand (node governance)\n");
    run_mix(
        "production-representative utilization (Figure 3b: mostly idle):",
        0.22,
        0.18,
        hours,
    );
    run_mix(
        "bursty what-if mix (peak demand beyond the reservation):",
        1.2,
        0.6,
        hours,
    );
    println!("take-away: at observed cloud utilizations, CPU density up to 140% is");
    println!("performance-free — disk is the binding resource, which is exactly the");
    println!("paper's density story. Were tenants to run hot, governance contention");
    println!("would appear first on the densest configuration.");
}
