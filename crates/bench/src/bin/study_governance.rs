//! §5.5's planned study, implemented: "We will also be exploring how to
//! use Toto to measure RgManager's effectiveness at mitigating potential
//! performance issues."
//!
//! A 96-core node hosts bursty databases at rising CPU-density levels.
//! RgManager's node governor allocates physical cores (guarantees first,
//! then weighted work-conserving sharing). We measure the performance
//! tax of density: how often the node is contended and how much demand
//! goes unserved — with the governor's fair sharing vs a naive
//! first-come allocation baseline.

use std::collections::BTreeMap;
use toto_bench::render_table;
use toto_rgmanager::governance::{CpuDemand, NodeGovernor};
use toto_simcore::rng::DetRng;

/// A bursty demand trace: mostly idle, occasional bursts to several
/// times the reservation (the Figure 3(b) low-utilization shape).
fn demand(rng: &mut DetRng, reserved: f64, hour: usize) -> f64 {
    let diurnal =
        0.25 + 0.75 * (0.5 + 0.5 * ((hour as f64 - 14.0) / 24.0 * std::f64::consts::TAU).cos());
    let base = reserved * 0.15 * diurnal;
    if rng.bernoulli(0.08 * diurnal) {
        base + reserved * (1.0 + 2.0 * rng.next_f64())
    } else {
        base * (0.5 + rng.next_f64())
    }
}

/// Naive baseline: grant demands in replica-id order until the node is
/// full — no guarantees, first come first served.
fn naive_grant(physical: f64, demands: &BTreeMap<u64, CpuDemand>) -> (f64, f64) {
    let mut left = physical;
    let mut throttled = 0.0;
    let mut guarantee_violations = 0.0;
    for d in demands.values() {
        let granted = d.demanded.min(left);
        left -= granted;
        throttled += d.demanded - granted;
        if granted < d.demanded.min(d.reserved) {
            guarantee_violations += d.demanded.min(d.reserved) - granted;
        }
    }
    (throttled, guarantee_violations)
}

fn main() {
    let physical = 96.0;
    let intervals = 24 * 60; // one day of minute-level governance passes
    println!("RgManager governance study — 96-core node, one simulated day\n");
    let mut rows = Vec::new();
    for density in [100u32, 120, 140, 180, 240] {
        let reserved_total = physical * density as f64 / 100.0;
        // 4-core databases filling the reservation budget.
        let count = (reserved_total / 4.0).round() as u64;
        let mut governor = NodeGovernor::new(physical);
        let mut rng = DetRng::seed_from_u64(7 + density as u64);
        let mut naive_throttled = 0.0;
        let mut naive_violations = 0.0;
        let mut governed_guarantee_violations = 0.0;
        for i in 0..intervals {
            let hour = (i / 60) % 24;
            let demands: BTreeMap<u64, CpuDemand> = (0..count)
                .map(|id| {
                    (
                        id,
                        CpuDemand {
                            reserved: 4.0,
                            demanded: demand(&mut rng, 4.0, hour),
                        },
                    )
                })
                .collect();
            let grants = governor.govern(&demands);
            for (id, d) in &demands {
                let floor = d.demanded.min(d.reserved) * (physical / reserved_total).min(1.0);
                if grants[id].granted + 1e-9 < floor {
                    governed_guarantee_violations += floor - grants[id].granted;
                }
            }
            let (t, v) = naive_grant(physical, &demands);
            naive_throttled += t;
            naive_violations += v;
        }
        let stats = governor.stats();
        rows.push(vec![
            format!("{density}%"),
            format!("{count}"),
            format!(
                "{:.1}%",
                stats.contended_passes as f64 / stats.passes as f64 * 100.0
            ),
            format!("{:.0}", stats.throttled_core_intervals),
            format!("{:.0}", naive_throttled),
            format!("{:.1}", governed_guarantee_violations),
            format!("{:.0}", naive_violations),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "CPU density",
                "DBs",
                "contended passes",
                "throttled (gov)",
                "throttled (naive)",
                "guarantee viol. (gov)",
                "guarantee viol. (naive)"
            ],
            &rows
        )
    );
    println!("\nthe governor cannot create cores — total throttling tracks demand —");
    println!("but it eliminates guarantee violations that the naive allocator");
    println!("inflicts on well-behaved tenants (noisy-neighbor mitigation, §3.2).");
}
