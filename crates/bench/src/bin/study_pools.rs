//! §5.5's elastic-pool extension, quantified: how much ring capacity do
//! pools unlock over singletons for bursty fleets?
//!
//! An elastic pool is one orchestrated service whose reservation is
//! shared by many member databases; member churn never touches the PLB.
//! We pack a 14-node ring with bursty 2-vcore BC databases, singleton vs
//! pooled, and report how many databases fit and what the pool members'
//! aggregate disk does to the node picture.

use toto::defaults::gen5_model_set;
use toto::pools::{reservation_comparison, ElasticPool};
use toto_bench::render_table;
use toto_fabric::cluster::{Cluster, ClusterConfig, ServiceSpec};
use toto_fabric::metrics::{MetricDef, MetricRegistry};
use toto_fabric::plb::{Plb, PlbConfig};
use toto_models::compiled::CompiledModelSet;
use toto_simcore::time::SimTime;
use toto_spec::EditionKind;

fn ring() -> Cluster {
    let mut metrics = MetricRegistry::new();
    metrics.register(MetricDef {
        name: "Cpu".into(),
        node_capacity: 96.0,
        balancing_weight: 1.0,
    });
    metrics.register(MetricDef {
        name: "Disk".into(),
        node_capacity: 7537.0,
        balancing_weight: 1.0,
    });
    Cluster::new(ClusterConfig {
        node_count: 14,
        metrics,
        fault_domains: 7,
    })
}

fn main() {
    println!("elastic pool study — 14-node ring, bursty 2-vcore BC databases\n");

    // Reservation arithmetic at fleet scale.
    let mut rows = Vec::new();
    for (pool_size, pool_vcores) in [(10u32, 6u32), (20, 8), (50, 12)] {
        let (singleton, pooled) =
            reservation_comparison(1000, 2, pool_size, pool_vcores, EditionKind::PremiumBc);
        rows.push(vec![
            format!("{pool_size} members / {pool_vcores} vcores"),
            format!("{singleton:.0}"),
            format!("{pooled:.0}"),
            format!("{:.1}x", singleton / pooled),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "pool shape",
                "singleton cores",
                "pooled cores",
                "densification"
            ],
            &rows
        )
    );

    // How many databases actually fit on the ring?
    let cpu_total = 14.0 * 96.0;
    let singleton_fit = (cpu_total / (2.0 * 4.0)) as u32;
    let pool_fit = ((cpu_total / (8.0 * 4.0)) as u32) * 20;
    println!("ring capacity: {singleton_fit} singleton databases vs {pool_fit} pooled databases\n");

    // Place a fleet of pools and drive their aggregate disk for a day.
    let mut cluster = ring();
    let mut plb = Plb::new(PlbConfig::default(), 3);
    let models = CompiledModelSet::compile(&gen5_model_set(11, 1200));
    let disk_id = cluster.metrics().by_name("Disk").unwrap();
    let mut pools = Vec::new();
    for p in 0..12 {
        let mut load = cluster.metrics().zero_load();
        load[cluster.metrics().by_name("Cpu").unwrap()] = 8.0;
        load[disk_id] = 0.0;
        let spec = ServiceSpec {
            name: format!("pool-{p}"),
            tag: 0,
            replica_count: 4,
            default_load: load,
        };
        let id = plb
            .create_service(&mut cluster, &spec, SimTime::ZERO)
            .expect("pool placement");
        let mut pool = ElasticPool::new(id, EditionKind::PremiumBc, 8);
        for m in 0..20 {
            pool.add_member(p * 1000 + m, SimTime::ZERO, 5.0 + m as f64);
        }
        pools.push(pool);
    }
    let mut last_total = 0.0;
    for step in 1..=72 {
        let now = SimTime::from_secs(7 * 86_400 + step * 1200);
        last_total = 0.0;
        for pool in &mut pools {
            let node = cluster
                .primary_of(pool.service)
                .map(|r| r.node.raw())
                .unwrap_or(0);
            let aggregate = pool.step_disk(&models, node, now);
            pool.report_to_cluster(&mut cluster, disk_id, aggregate);
            last_total += aggregate;
        }
    }
    cluster.check_invariants();
    println!(
        "12 pools x 20 members after one simulated day: {:.0} GB aggregate member disk,",
        last_total
    );
    println!(
        "cluster disk load {:.0} GB across {} services ({} member databases, all churn",
        cluster.total_load(disk_id),
        cluster.service_count(),
        pools.iter().map(|p| p.len()).sum::<usize>()
    );
    println!("invisible to the PLB).");
}
