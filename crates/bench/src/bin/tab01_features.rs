//! Table 1: features used by the create and drop models (§4.1.3), printed
//! together with the resulting model-count arithmetic (2 x 24 x 2 = 96
//! Create DB models and 96 Drop DB models).

use toto_bench::render_table;

fn main() {
    println!("Table 1 — features used for create and drop models\n");
    let rows = vec![
        vec!["Temporal".to_string(), "Weekend vs. Weekday".to_string()],
        vec!["Temporal".to_string(), "Hours".to_string()],
        vec![
            "Database Edition".to_string(),
            "Standard/GP vs. Premium/BC".to_string(),
        ],
    ];
    println!("{}", render_table(&["Features", "Values"], &rows));
    let day_kinds = 2;
    let hours = 24;
    let editions = 2;
    println!(
        "model count: {day_kinds} day kinds x {hours} hours x {editions} editions = {} Create DB models and {} Drop DB models",
        day_kinds * hours * editions,
        day_kinds * hours * editions
    );
}
