//! Table 2: the bootstrap population — 33 Premium/BC databases, 187
//! Standard/GP databases, 220 total — plus the SLO breakdown our
//! representative mix produced.

use std::collections::BTreeMap;
use toto::experiment::{DensityExperiment, ExperimentOverrides};
use toto_bench::render_table;
use toto_controlplane::slo::SloCatalog;
use toto_spec::{EditionKind, ScenarioSpec};

fn main() {
    let mut scenario = ScenarioSpec::gen5_stage_cluster(100);
    scenario.duration_hours = 1;
    let result = DensityExperiment::new(scenario, ExperimentOverrides::default()).run();
    let catalog = SloCatalog::gen5();

    let bc = result
        .bootstrap
        .services
        .iter()
        .filter(|(_, e, _, _)| *e == EditionKind::PremiumBc)
        .count();
    let gp = result.bootstrap.services.len() - bc;
    println!("Table 2 — initial population\n");
    println!(
        "{}",
        render_table(
            &["Premium/BC Databases", "Standard/GP Databases", "Total"],
            &[vec![bc.to_string(), gp.to_string(), (bc + gp).to_string()]]
        )
    );

    let mut by_slo: BTreeMap<String, usize> = BTreeMap::new();
    for (_, _, slo_index, _) in &result.bootstrap.services {
        let name = catalog.get(*slo_index).expect("slo").name.clone();
        *by_slo.entry(name).or_insert(0) += 1;
    }
    let rows: Vec<Vec<String>> = by_slo
        .iter()
        .map(|(name, count)| vec![name.clone(), count.to_string()])
        .collect();
    println!("SLO breakdown of the bootstrap population:\n");
    println!("{}", render_table(&["SLO", "databases"], &rows));
    println!(
        "reserved cores {:.0}, free cores {:.0}, disk fill {:.1}%",
        result.bootstrap.reserved_cores,
        result.bootstrap.free_cores,
        result.bootstrap.disk_utilization * 100.0
    );
}
