//! Table 3: experiment parameters — free remaining logical cores and
//! initial disk usage percentage per density level. The population (and
//! hence reserved cores and disk) is identical across densities; only the
//! density-scaled logical core capacity changes.

use toto::experiment::{DensityExperiment, ExperimentOverrides};
use toto_bench::{render_table, DENSITIES};
use toto_spec::ScenarioSpec;

fn main() {
    println!("Table 3 — experiment parameters\n");
    let mut rows = Vec::new();
    for &density in &DENSITIES {
        let mut scenario = ScenarioSpec::gen5_stage_cluster(density);
        scenario.duration_hours = 1;
        let r = DensityExperiment::new(scenario, ExperimentOverrides::default()).run();
        rows.push(vec![
            format!("{density}"),
            format!("{:.0}", r.bootstrap.free_cores),
            format!("{:.0}", r.bootstrap.disk_utilization * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Density Level %",
                "Free Remaining Logical Cores",
                "Disk Usage %"
            ],
            &rows
        )
    );
    println!("(paper: 65 / 158 / 224 / 326 free cores, 77% disk at every level)");
}
