//! Shared PLB benchmark fixtures.
//!
//! One construction, two consumers: the criterion benches
//! (`benches/plb.rs`) and the `bench_track` pinned suite time the
//! **same** loaded rings, so a criterion number and a tracked series
//! entry with the same id measure the same work. Keep changes here
//! synchronized with both; a fixture change invalidates the recorded
//! history for every `plb_*` metric.

use toto_fabric::cluster::{Cluster, ClusterConfig, ServiceSpec};
use toto_fabric::ids::{MetricId, NodeId};
use toto_fabric::metrics::{MetricDef, MetricRegistry};
use toto_fabric::plb::{Plb, PlbConfig};
use toto_simcore::rng::DetRng;
use toto_simcore::time::SimTime;

/// Node count of the paper's gen5 stage ring (Table 2 population).
pub const RING_NODES: u32 = 14;
/// Service count of the gen5 stage-ring fixture.
pub const RING_SERVICES: u64 = 220;

/// The gen5 Table-2 mix stretched to `nodes`: ~16 services per node, one
/// BC (4 replicas) per seven services, same per-service loads as the
/// 14-node fixture. Returns the cluster plus its CPU and disk metric ids.
pub fn loaded_cluster_at(nodes: u32, services: u64) -> (Cluster, MetricId, MetricId) {
    let mut metrics = MetricRegistry::new();
    let cpu = metrics.register(MetricDef {
        name: "Cpu".into(),
        node_capacity: 96.0,
        balancing_weight: 1.0,
    });
    let disk = metrics.register(MetricDef {
        name: "Disk".into(),
        node_capacity: 7000.0,
        balancing_weight: 1.0,
    });
    let mut cluster = Cluster::new(ClusterConfig {
        node_count: nodes,
        metrics,
        fault_domains: (nodes / 2).max(7).min(nodes),
    });
    let mut plb = Plb::new(PlbConfig::default(), 9);
    let mut rng = DetRng::seed_from_u64(5);
    for i in 0..services {
        let mut load = cluster.metrics().zero_load();
        let bc = i % 7 == 0;
        load[cpu] = if bc { 4.0 } else { 2.0 };
        load[disk] = if bc {
            350.0
        } else {
            5.0 + rng.next_f64() * 10.0
        };
        let spec = ServiceSpec {
            name: format!("db-{i}"),
            tag: 0,
            replica_count: if bc { 4 } else { 1 },
            default_load: load,
        };
        plb.create_service(&mut cluster, &spec, SimTime::ZERO)
            .expect("bench fixture must stay feasible");
    }
    assert_eq!(cluster.service_count(), services as usize);
    (cluster, cpu, disk)
}

/// The 14-node / 220-service stage-ring fixture.
pub fn loaded_cluster() -> (Cluster, MetricId, MetricId) {
    loaded_cluster_at(RING_NODES, RING_SERVICES)
}

/// The standard "new BC" placement workload: a 4-replica business
/// critical service sized like the fixture's heavier databases.
pub fn bc_spec(cluster: &Cluster, cpu: MetricId, disk: MetricId) -> ServiceSpec {
    let mut spec_load = cluster.metrics().zero_load();
    spec_load[cpu] = 8.0;
    spec_load[disk] = 300.0;
    ServiceSpec {
        name: "new-bc".into(),
        tag: 0,
        replica_count: 4,
        default_load: spec_load,
    }
}

/// Push the first three nodes just past disk capacity (overshoot 150)
/// so a mid-size replica clears each violation and a fix pass performs
/// three real evict/retarget/move decisions. Panics if the fixture
/// fails to violate — that is a broken fixture, not a benchmark result.
pub fn push_three_disk_violations(cluster: &mut Cluster, disk: MetricId) {
    for n in 0..3 {
        let node_load = cluster.node(NodeId(n)).load[disk];
        let victim = cluster.node(NodeId(n)).replicas[0];
        let old = cluster.replica(victim).expect("exists").load[disk];
        cluster.report_load(victim, disk, old + (7_000.0 - node_load) + 150.0);
    }
    assert_eq!(cluster.violations().len(), 3, "fixture must violate");
}
