//! Experiment drivers for the Toto reproduction.
//!
//! One binary per table/figure of the paper lives in `src/bin/`; criterion
//! micro-benches live in `benches/`. This library holds what they share:
//! command-line conventions ([`BenchArgs`]), running the four-density
//! study as a parallel fleet, and rendering aligned text tables.

use toto::experiment::{ExperimentOverrides, ExperimentResult};
use toto_fleet::{FleetExecutor, FleetPlan, StderrProgress};
use toto_spec::ScenarioSpec;

pub mod fixtures;
pub mod track;

/// The paper's four density levels (§5.2).
pub const DENSITIES: [u32; 4] = [100, 110, 120, 140];

/// The shared command-line surface of every experiment driver.
///
/// All drivers accept the same flags, parsed once here instead of ad hoc
/// per binary:
///
/// ```text
/// --hours N     simulated duration override (default: the paper's 144)
/// --threads T   fleet worker threads (default: all available cores)
/// --seed S      root seed override for drivers that take one
/// --out DIR     run-artifact directory for drivers that persist results
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BenchArgs {
    /// `--hours N`; `None` means each driver's default (usually 144).
    pub hours: Option<u64>,
    /// `--threads T`; defaults to all available cores.
    pub threads: usize,
    /// `--seed S`; `None` means the driver's built-in seed.
    pub seed: Option<u64>,
    /// `--out DIR`; `None` means the driver's default (usually `results`).
    pub out: Option<String>,
}

impl BenchArgs {
    /// Parse from the process arguments; panics with a usage hint on a
    /// malformed flag.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit argument list (testable seam).
    pub fn parse_from(argv: impl IntoIterator<Item = String>) -> Self {
        let mut args = BenchArgs {
            hours: None,
            threads: default_threads(),
            seed: None,
            out: None,
        };
        let mut iter = argv.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--hours" => args.hours = Some(value("--hours").parse().expect("--hours: integer")),
                "--threads" => {
                    args.threads = value("--threads").parse().expect("--threads: integer")
                }
                "--seed" => args.seed = Some(value("--seed").parse().expect("--seed: integer")),
                "--out" => args.out = Some(value("--out")),
                other => panic!(
                    "unknown flag {other:?} \
                     (drivers accept --hours N, --threads T, --seed S, --out DIR)"
                ),
            }
        }
        args
    }

    /// `--hours` with a driver-supplied default.
    pub fn hours_or(&self, default: u64) -> u64 {
        self.hours.unwrap_or(default)
    }

    /// A fleet executor sized by `--threads`.
    pub fn executor(&self) -> FleetExecutor {
        FleetExecutor::new(self.threads)
    }
}

/// All available cores (the fleet default).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, usize::from)
}

/// Parse `--hours N` from argv; `None` means the paper's 144 hours.
///
/// Thin compatibility shim over [`BenchArgs`] for drivers that take no
/// other flags.
pub fn hours_arg() -> Option<u64> {
    BenchArgs::parse().hours
}

/// The §5 density study as a fleet plan: one job per density level on
/// the gen5 stage ring. Scenario seeds are the paper's fixed defaults
/// (pinned, not derived) so results are identical to the historical
/// serial driver run by run.
pub fn density_study_plan(duration_hours: Option<u64>) -> FleetPlan {
    let mut plan = FleetPlan::new(0);
    for &density in &DENSITIES {
        let mut scenario = ScenarioSpec::gen5_stage_cluster(density);
        if let Some(h) = duration_hours {
            scenario.duration_hours = h;
        }
        plan.add_pinned(
            format!("density-{density}"),
            scenario,
            ExperimentOverrides::default(),
        );
    }
    plan
}

/// Run the full §5 density study: four 6-day experiments, executed as a
/// parallel fleet on all available cores (the four jobs are mutually
/// independent; per-experiment determinism is unchanged).
///
/// `duration_hours` overrides the 144-hour default (the figure binaries
/// accept `--hours N` for quick runs). Results come back in density
/// order, exactly as the historical serial loop produced them.
pub fn run_density_study(duration_hours: Option<u64>) -> Vec<ExperimentResult> {
    run_density_study_on(duration_hours, default_threads())
}

/// [`run_density_study`] with an explicit worker count.
pub fn run_density_study_on(duration_hours: Option<u64>, threads: usize) -> Vec<ExperimentResult> {
    let plan = density_study_plan(duration_hours);
    let report = FleetExecutor::new(threads).run(plan.jobs(), &StderrProgress);
    report
        .jobs
        .into_iter()
        .map(|job| match job.outcome {
            toto_fleet::JobOutcome::Completed(out) => out.result,
            other => panic!(
                "density job {} did not complete: {}",
                job.label,
                other.status()
            ),
        })
        .collect()
}

/// Render rows as a fixed-width text table with a header rule.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("{:<w$}  ", h, w = widths[i]));
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        out.push_str(&"-".repeat(widths[i]));
        out.push_str("  ");
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_columns() {
        let t = render_table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].starts_with("1  "));
    }

    #[test]
    fn densities_match_paper() {
        assert_eq!(DENSITIES, [100, 110, 120, 140]);
    }

    #[test]
    fn bench_args_parse_all_flags() {
        let args = BenchArgs::parse_from(
            [
                "--hours",
                "12",
                "--threads",
                "3",
                "--seed",
                "7",
                "--out",
                "tmp",
            ]
            .map(String::from),
        );
        assert_eq!(args.hours, Some(12));
        assert_eq!(args.threads, 3);
        assert_eq!(args.seed, Some(7));
        assert_eq!(args.out.as_deref(), Some("tmp"));
        assert_eq!(args.hours_or(144), 12);
    }

    #[test]
    fn bench_args_defaults() {
        let args = BenchArgs::parse_from(Vec::new());
        assert_eq!(args.hours, None);
        assert_eq!(args.hours_or(144), 144);
        assert!(args.threads >= 1);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn bench_args_reject_typos() {
        BenchArgs::parse_from(["--hour".to_string(), "12".to_string()]);
    }

    #[test]
    fn density_plan_keeps_paper_seeds() {
        let plan = density_study_plan(Some(6));
        let defaults = ScenarioSpec::gen5_stage_cluster(120);
        let job = &plan.jobs()[2];
        assert_eq!(job.scenario.density_percent, 120);
        assert_eq!(job.scenario.population_seed, defaults.population_seed);
        assert_eq!(job.scenario.model_seed, defaults.model_seed);
        assert_eq!(job.scenario.plb_seed, defaults.plb_seed);
        assert_eq!(job.scenario.duration_hours, 6);
    }
}
