//! Experiment drivers for the Toto reproduction.
//!
//! One binary per table/figure of the paper lives in `src/bin/`; criterion
//! micro-benches live in `benches/`. This library holds what they share:
//! running the four-density study and rendering aligned text tables.

use toto::experiment::{DensityExperiment, ExperimentOverrides, ExperimentResult};
use toto_spec::ScenarioSpec;

/// The paper's four density levels (§5.2).
pub const DENSITIES: [u32; 4] = [100, 110, 120, 140];

/// Run the full §5 density study: four back-to-back 6-day experiments.
///
/// `duration_hours` overrides the 144-hour default (the figure binaries
/// accept `--hours N` for quick runs).
pub fn run_density_study(duration_hours: Option<u64>) -> Vec<ExperimentResult> {
    DENSITIES
        .iter()
        .map(|&density| {
            let mut scenario = ScenarioSpec::gen5_stage_cluster(density);
            if let Some(h) = duration_hours {
                scenario.duration_hours = h;
            }
            DensityExperiment::new(scenario, ExperimentOverrides::default()).run()
        })
        .collect()
}

/// Parse `--hours N` from argv; `None` means the paper's 144 hours.
pub fn hours_arg() -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--hours")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Render rows as a fixed-width text table with a header rule.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("{:<w$}  ", h, w = widths[i]));
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        out.push_str(&"-".repeat(widths[i]));
        out.push_str("  ");
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_columns() {
        let t = render_table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].starts_with("1  "));
    }

    #[test]
    fn densities_match_paper() {
        assert_eq!(DENSITIES, [100, 110, 120, 140]);
    }
}
