//! `bench_track`: the pinned benchmark suite and its regression gate.
//!
//! The suite measures four things, in a fixed order, with fixed
//! parameters — change a parameter and you invalidate the recorded
//! history, so don't:
//!
//! 1. The six PLB microbenches on the shared [`crate::fixtures`] rings
//!    (same ids and same work as the criterion benches).
//! 2. A headline **sim-events/sec** from a pinned 24-hour density-140
//!    run: dispatched simulation events divided by host wall-clock.
//! 3. `hyperscale_smoke` wall-clock through the scenario runner.
//! 4. The 24-hour four-density fleet wall-clock at 1 and 8 workers.
//!
//! Every entry is the **median of K repeated samples** (K = 5 for
//! microbenches, 3 for macro runs) — *Sampling in Cloud Benchmarking*'s
//! antidote to single-point estimates — and lands in
//! `results/benchdata.json` as one commit-stamped
//! [`BenchRecord`](toto_fleet::BenchRecord) through the store's atomic
//! append. The gate compares each suite metric against the trailing
//! median of its last [`DEFAULT_WINDOW`] recorded samples and fails on
//! a worsening strictly beyond [`DEFAULT_THRESHOLD`], with a typed
//! verdict per metric.

use std::hint::black_box;
use std::time::Instant;
use toto::experiment::{DensityExperiment, ExperimentOverrides};
use toto_fabric::plb::{Plb, PlbConfig};
use toto_fleet::{BenchEntry, BenchRecord, FleetExecutor, NullObserver};
use toto_simcore::time::SimTime;
use toto_spec::ScenarioSpec;
use toto_stats::describe::median;
use toto_stats::regression::{gate_metric, Direction, GateError, GateVerdict};
pub use toto_stats::regression::{DEFAULT_THRESHOLD, DEFAULT_WINDOW};

use crate::fixtures::{bc_spec, loaded_cluster_at, push_three_disk_violations};

/// Repeated samples per microbench entry.
pub const K_MICRO: u32 = 5;
/// Repeated samples per macro (whole-run) entry.
pub const K_MACRO: u32 = 3;
/// Pinned simulated duration of the density-140 and fleet runs, hours.
pub const PINNED_HOURS: u64 = 24;

/// One pinned suite metric: its series name, unit, and which direction
/// of drift counts as a regression.
#[derive(Clone, Copy, Debug)]
pub struct SuiteMetric {
    /// Series name (microbench ids match the criterion benches).
    pub name: &'static str,
    /// Unit label recorded with every sample.
    pub unit: &'static str,
    /// Which way is worse.
    pub direction: Direction,
}

/// The pinned suite, in measurement order. The gate checks exactly
/// these metrics — other series in `benchdata.json` (for example
/// `fleet_runner/jobs_per_sec`) are informational and never gated.
pub const SUITE: &[SuiteMetric] = &[
    SuiteMetric {
        name: "plb_place_bc_x4_ring_100",
        unit: "ns/iter",
        direction: Direction::SmallerIsBetter,
    },
    SuiteMetric {
        name: "plb_place_bc_x4_ring_1000",
        unit: "ns/iter",
        direction: Direction::SmallerIsBetter,
    },
    SuiteMetric {
        name: "plb_violation_scan_ring_100",
        unit: "ns/iter",
        direction: Direction::SmallerIsBetter,
    },
    SuiteMetric {
        name: "plb_violation_scan_ring_1000",
        unit: "ns/iter",
        direction: Direction::SmallerIsBetter,
    },
    SuiteMetric {
        name: "plb_fix_violations_pass_ring_100",
        unit: "ns/iter",
        direction: Direction::SmallerIsBetter,
    },
    SuiteMetric {
        name: "plb_fix_violations_pass_ring_1000",
        unit: "ns/iter",
        direction: Direction::SmallerIsBetter,
    },
    SuiteMetric {
        name: "sim_density140/events_per_sec",
        unit: "events/s",
        direction: Direction::LargerIsBetter,
    },
    SuiteMetric {
        name: "hyperscale_smoke/wall_secs",
        unit: "s",
        direction: Direction::SmallerIsBetter,
    },
    SuiteMetric {
        name: "fleet_density24h/wall_secs_t1",
        unit: "s",
        direction: Direction::SmallerIsBetter,
    },
    SuiteMetric {
        name: "fleet_density24h/wall_secs_t8",
        unit: "s",
        direction: Direction::SmallerIsBetter,
    },
];

/// Why the gate could not produce a verdict. Distinct from a
/// regression: these are malformed inputs, reported typed so the CI log
/// says *what* is broken instead of panicking mid-gate.
#[derive(Clone, Debug, PartialEq)]
pub enum TrackError {
    /// The current record lacks a pinned suite metric entirely.
    MissingMetric {
        /// The absent series name.
        name: String,
    },
    /// A metric's series or current sample is malformed (non-finite,
    /// non-positive baseline, ...).
    Metric {
        /// The offending series name.
        name: String,
        /// The underlying typed gate error.
        source: GateError,
    },
}

impl std::fmt::Display for TrackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrackError::MissingMetric { name } => {
                write!(f, "suite metric {name:?} missing from the current record")
            }
            TrackError::Metric { name, source } => {
                write!(f, "suite metric {name:?}: {source}")
            }
        }
    }
}

impl std::error::Error for TrackError {}

/// One suite metric's gate outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricVerdict {
    /// Series name.
    pub name: String,
    /// Unit label.
    pub unit: String,
    /// Regression direction the verdict was judged under.
    pub direction: Direction,
    /// The typed verdict.
    pub verdict: GateVerdict,
}

/// Gate `current` against the recorded history: every pinned suite
/// metric is compared to the trailing median of its last
/// [`DEFAULT_WINDOW`] samples in `prior` (records lacking a metric —
/// e.g. `fleet_runner` throughput stamps — simply don't contribute to
/// that metric's history). Returns one typed verdict per suite metric,
/// in suite order, or the first typed error for malformed input.
pub fn gate_record(
    prior: &[BenchRecord],
    current: &BenchRecord,
) -> Result<Vec<MetricVerdict>, TrackError> {
    SUITE
        .iter()
        .map(|m| {
            let value = current
                .value_of(m.name)
                .ok_or_else(|| TrackError::MissingMetric {
                    name: m.name.to_string(),
                })?;
            let history: Vec<f64> = prior.iter().filter_map(|r| r.value_of(m.name)).collect();
            let verdict = gate_metric(
                &history,
                value,
                m.direction,
                DEFAULT_THRESHOLD,
                DEFAULT_WINDOW,
            )
            .map_err(|source| TrackError::Metric {
                name: m.name.to_string(),
                source,
            })?;
            Ok(MetricVerdict {
                name: m.name.to_string(),
                unit: m.unit.to_string(),
                direction: m.direction,
                verdict,
            })
        })
        .collect()
}

/// Render the verdicts as the aligned table `bench_track` prints.
pub fn render_verdicts(verdicts: &[MetricVerdict]) -> String {
    let rows: Vec<Vec<String>> = verdicts
        .iter()
        .map(|v| {
            let (baseline, change) = match &v.verdict {
                GateVerdict::NoHistory { .. } => ("-".to_string(), "-".to_string()),
                GateVerdict::Pass {
                    baseline,
                    worsening,
                    ..
                }
                | GateVerdict::Regressed {
                    baseline,
                    worsening,
                    ..
                } => (
                    format!("{baseline:.1}"),
                    format!("{:+.1}%", worsening * 100.0),
                ),
            };
            let current = match &v.verdict {
                GateVerdict::NoHistory { current }
                | GateVerdict::Pass { current, .. }
                | GateVerdict::Regressed { current, .. } => format!("{current:.1}"),
            };
            vec![
                v.name.clone(),
                v.unit.clone(),
                current,
                baseline,
                change,
                v.verdict.verdict().to_string(),
            ]
        })
        .collect();
    crate::render_table(
        &[
            "metric", "unit", "current", "baseline", "worse_by", "verdict",
        ],
        &rows,
    )
}

/// True when any verdict regressed.
pub fn any_regression(verdicts: &[MetricVerdict]) -> bool {
    verdicts.iter().any(|v| v.verdict.is_regression())
}

// ---------------------------------------------------------------------------
// The pinned suite runner
// ---------------------------------------------------------------------------

/// Median of `k` repeated samples.
fn median_of_k(k: u32, mut sample: impl FnMut() -> f64) -> f64 {
    let samples: Vec<f64> = (0..k).map(|_| sample()).collect();
    median(&samples)
}

/// Nanoseconds per iteration of `f` over `iters` calls.
fn ns_per_iter(iters: u32, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn entry(metric: &SuiteMetric, value: f64) -> BenchEntry {
    BenchEntry {
        name: metric.name.to_string(),
        unit: metric.unit.to_string(),
        value,
    }
}

/// Run the six PLB microbenches on the shared fixtures; returns entries
/// in suite order (the first six suite metrics).
fn run_plb_micro(progress: &mut dyn FnMut(&str)) -> Vec<BenchEntry> {
    let mut entries = Vec::new();
    for (ring_idx, &nodes) in [100u32, 1000].iter().enumerate() {
        let services = u64::from(nodes) * 16;
        let (cluster, cpu, disk) = loaded_cluster_at(nodes, services);
        let spec = bc_spec(&cluster, cpu, disk);

        progress(&format!("plb_place_bc_x4_ring_{nodes}"));
        let place = median_of_k(K_MICRO, || {
            let mut plb = Plb::new(PlbConfig::default(), 77);
            ns_per_iter(200, || {
                black_box(
                    plb.place_new_service(&cluster, &spec)
                        .expect("bench fixture must stay feasible"),
                );
            })
        });
        entries.push(entry(&SUITE[ring_idx], place));

        progress(&format!("plb_violation_scan_ring_{nodes}"));
        let scan = median_of_k(K_MICRO, || {
            ns_per_iter(20_000, || {
                black_box(cluster.violations());
            })
        });
        entries.push(entry(&SUITE[2 + ring_idx], scan));

        progress(&format!("plb_fix_violations_pass_ring_{nodes}"));
        let fix = median_of_k(K_MICRO, || {
            // Per-pass setup (clone + induced violations) stays outside
            // the timed region, mirroring criterion's `iter_batched`.
            let mut total_ns = 0.0;
            const PASSES: u32 = 8;
            for _ in 0..PASSES {
                let mut dirty = cluster.clone();
                push_three_disk_violations(&mut dirty, disk);
                let mut plb = Plb::new(PlbConfig::default(), 3);
                total_ns += ns_per_iter(1, || {
                    black_box(plb.fix_violations(&mut dirty, SimTime::from_secs(60)));
                });
            }
            total_ns / f64::from(PASSES)
        });
        entries.push(entry(&SUITE[4 + ring_idx], fix));
    }
    // Reorder: the loop above produced [place_100, scan_100, fix_100,
    // place_1000, scan_1000, fix_1000] indices via SUITE offsets, so
    // sort into suite order by name for a stable record layout.
    let order: Vec<&str> = SUITE[..6].iter().map(|m| m.name).collect();
    entries.sort_by_key(|e| order.iter().position(|n| *n == e.name));
    entries
}

/// The pinned density-140 run: sim-events/sec over `PINNED_HOURS`
/// simulated hours with the paper's default seeds.
fn run_sim_throughput(progress: &mut dyn FnMut(&str)) -> BenchEntry {
    progress("sim_density140/events_per_sec");
    let value = median_of_k(K_MACRO, || {
        let mut scenario = ScenarioSpec::gen5_stage_cluster(140);
        scenario.duration_hours = PINNED_HOURS;
        let t0 = Instant::now();
        let result = DensityExperiment::new(scenario, ExperimentOverrides::default()).run();
        let wall = t0.elapsed().as_secs_f64();
        result.dispatched_events as f64 / wall
    });
    entry(&SUITE[6], value)
}

/// `hyperscale_smoke` wall-clock through the scenario runner (oracle
/// gate included, artifacts to a scratch directory).
fn run_hyperscale_smoke(progress: &mut dyn FnMut(&str)) -> BenchEntry {
    progress("hyperscale_smoke/wall_secs");
    let resolved = toto_scenario::cli::resolve("hyperscale_smoke")
        .expect("hyperscale_smoke is a built-in scenario");
    let mut sample_idx = 0u32;
    let value = median_of_k(K_MACRO, || {
        sample_idx += 1;
        let scratch = std::env::temp_dir().join(format!(
            "toto-bench-track-hs-{}-{sample_idx}",
            std::process::id()
        ));
        let options = toto_scenario::runner::RunOptions {
            threads: 4,
            seeds: 1,
            out: scratch.to_string_lossy().to_string(),
        };
        let t0 = Instant::now();
        toto_scenario::runner::run(&resolved.doc, &resolved.source, &options, &NullObserver)
            .expect("hyperscale_smoke must run clean");
        let wall = t0.elapsed().as_secs_f64();
        let _ = std::fs::remove_dir_all(&scratch);
        wall
    });
    entry(&SUITE[7], value)
}

/// The 24-hour four-density fleet at a fixed worker count; returns its
/// wall-clock (the executor's own measurement).
fn run_fleet_wall(
    threads: usize,
    metric: &SuiteMetric,
    progress: &mut dyn FnMut(&str),
) -> BenchEntry {
    progress(metric.name);
    let value = median_of_k(K_MACRO, || {
        let plan = crate::density_study_plan(Some(PINNED_HOURS));
        let report = FleetExecutor::new(threads).run(plan.jobs(), &NullObserver);
        assert_eq!(
            report.failed_count(),
            0,
            "pinned fleet jobs must complete for a valid wall-clock sample"
        );
        report.wall_secs
    });
    entry(metric, value)
}

/// Run the whole pinned suite; `progress` is called with each metric
/// name as it starts (the bin wires this to stderr). Returns the
/// entries in suite order.
pub fn run_suite(progress: &mut dyn FnMut(&str)) -> Vec<BenchEntry> {
    let mut entries = run_plb_micro(progress);
    entries.push(run_sim_throughput(progress));
    entries.push(run_hyperscale_smoke(progress));
    entries.push(run_fleet_wall(1, &SUITE[8], progress));
    entries.push(run_fleet_wall(8, &SUITE[9], progress));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use toto_fleet::BenchRecord;

    fn full_record(commit: &str, scale: f64) -> BenchRecord {
        BenchRecord::new(
            commit,
            SUITE
                .iter()
                .map(|m| BenchEntry {
                    name: m.name.to_string(),
                    unit: m.unit.to_string(),
                    value: 100.0 * scale,
                })
                .collect(),
        )
    }

    #[test]
    fn suite_names_are_unique_and_ordered() {
        let names: std::collections::BTreeSet<&str> = SUITE.iter().map(|m| m.name).collect();
        assert_eq!(names.len(), SUITE.len(), "duplicate suite metric names");
        assert_eq!(SUITE.len(), 10);
    }

    #[test]
    fn gate_passes_with_no_history() {
        let verdicts = gate_record(&[], &full_record("head", 1.0)).unwrap();
        assert_eq!(verdicts.len(), SUITE.len());
        assert!(verdicts.iter().all(|v| v.verdict.verdict() == "no_history"));
        assert!(!any_regression(&verdicts));
    }

    #[test]
    fn gate_skips_records_without_a_metric() {
        // A fleet_runner throughput stamp in the history must not count
        // as history for suite metrics.
        let stamp = BenchRecord::new(
            "other",
            vec![BenchEntry {
                name: "fleet_runner/jobs_per_sec".to_string(),
                unit: "jobs/s".to_string(),
                value: 0.5,
            }],
        );
        let verdicts = gate_record(&[stamp], &full_record("head", 1.0)).unwrap();
        assert!(verdicts.iter().all(|v| v.verdict.verdict() == "no_history"));
    }

    #[test]
    fn render_includes_every_metric_and_verdict() {
        let prior = [full_record("a", 1.0)];
        let verdicts = gate_record(&prior, &full_record("b", 2.0)).unwrap();
        let table = render_verdicts(&verdicts);
        for m in SUITE {
            assert!(table.contains(m.name), "table missing {}", m.name);
        }
        // Latency metrics doubled (regressed); the throughput metric
        // doubled too, which is an improvement.
        assert!(table.contains("regressed"));
        assert!(table.contains("pass"));
    }
}
