//! Regression tests for the `bench_track` gate itself — the shell gate
//! it replaced had zero tests.
//!
//! The threshold contract is exact: a metric may be up to and including
//! 10% worse than the trailing median of its last five samples; 10.1%
//! fails. Malformed input (a suite metric missing from the current
//! record, a series entry without a value) yields a *typed* error, not
//! a panic and not a silent pass.

use toto_bench::track::{any_regression, gate_record, TrackError, SUITE};
use toto_fleet::{BenchEntry, BenchRecord, RunStore};
use toto_stats::regression::{GateError, GateVerdict};

/// A record carrying every suite metric at `value` (latency metrics and
/// the throughput metric alike; tests pick the metric they care about).
fn uniform_record(commit: &str, value: f64) -> BenchRecord {
    BenchRecord::new(
        commit,
        SUITE
            .iter()
            .map(|m| BenchEntry {
                name: m.name.to_string(),
                unit: m.unit.to_string(),
                value,
            })
            .collect(),
    )
}

/// Five prior records, all at 100.0 — a flat history whose trailing
/// median is exactly 100.0 for every suite metric.
fn flat_history() -> Vec<BenchRecord> {
    (0..5)
        .map(|i| uniform_record(&format!("c{i}"), 100.0))
        .collect()
}

/// Override one metric of a record.
fn with_metric(mut record: BenchRecord, name: &str, value: f64) -> BenchRecord {
    for e in &mut record.entries {
        if e.name == name {
            e.value = value;
        }
    }
    record
}

#[test]
fn exactly_ten_percent_worse_passes() {
    let latency = "plb_place_bc_x4_ring_100";
    let current = with_metric(uniform_record("head", 100.0), latency, 110.0);
    let verdicts = gate_record(&flat_history(), &current).unwrap();
    assert!(
        !any_regression(&verdicts),
        "a 10.0% worsening is within the gate: {verdicts:?}"
    );
    let v = verdicts.iter().find(|v| v.name == latency).unwrap();
    assert_eq!(v.verdict.verdict(), "pass");
}

#[test]
fn ten_point_one_percent_worse_fails() {
    let latency = "plb_place_bc_x4_ring_100";
    let current = with_metric(uniform_record("head", 100.0), latency, 110.1);
    let verdicts = gate_record(&flat_history(), &current).unwrap();
    assert!(any_regression(&verdicts), "10.1% must trip the gate");
    let v = verdicts.iter().find(|v| v.name == latency).unwrap();
    let GateVerdict::Regressed {
        baseline, current, ..
    } = &v.verdict
    else {
        panic!("expected a regression verdict, got {:?}", v.verdict);
    };
    assert_eq!(*baseline, 100.0);
    assert_eq!(*current, 110.1);
    // Every other metric still passes: the verdict is per-metric.
    assert_eq!(
        verdicts
            .iter()
            .filter(|v| v.verdict.is_regression())
            .count(),
        1
    );
}

#[test]
fn throughput_direction_gates_drops_not_rises() {
    let throughput = "sim_density140/events_per_sec";
    // Throughput falling 10.1% regresses...
    let drop = with_metric(uniform_record("head", 100.0), throughput, 89.9);
    let verdicts = gate_record(&flat_history(), &drop).unwrap();
    let v = verdicts.iter().find(|v| v.name == throughput).unwrap();
    assert!(v.verdict.is_regression());
    // ...but latency falling the same amount is an improvement.
    let faster = with_metric(
        uniform_record("head", 100.0),
        "plb_violation_scan_ring_100",
        89.9,
    );
    let verdicts = gate_record(&flat_history(), &faster).unwrap();
    assert!(!any_regression(&verdicts));
}

#[test]
fn trailing_median_window_is_five() {
    // Six prior samples: one ancient fast outlier (10) then five at 100.
    // The window must ignore the ancient sample: baseline 100, so 105
    // passes. If the whole series were used the median would drag low
    // enough that 105 still passes — so also check the converse: five
    // fast samples pushed out of the window by five slow ones.
    let latency = "plb_place_bc_x4_ring_100";
    let mut history: Vec<BenchRecord> = vec![uniform_record("old", 10.0)];
    history.extend(flat_history());
    let current = with_metric(uniform_record("head", 100.0), latency, 105.0);
    assert!(!any_regression(&gate_record(&history, &current).unwrap()));

    // Five fast records followed by five slow ones: the window sees
    // only the slow five (baseline 200), so 210 passes even though it
    // is 2.1x the all-time median.
    let mut history: Vec<BenchRecord> = (0..5)
        .map(|i| uniform_record(&format!("f{i}"), 100.0))
        .collect();
    history.extend((0..5).map(|i| uniform_record(&format!("s{i}"), 200.0)));
    let current = with_metric(uniform_record("head", 200.0), latency, 210.0);
    assert!(!any_regression(&gate_record(&history, &current).unwrap()));
}

#[test]
fn missing_suite_metric_is_a_typed_error() {
    let mut current = uniform_record("head", 100.0);
    current
        .entries
        .retain(|e| e.name != "hyperscale_smoke/wall_secs");
    let err = gate_record(&flat_history(), &current).unwrap_err();
    assert_eq!(
        err,
        TrackError::MissingMetric {
            name: "hyperscale_smoke/wall_secs".to_string()
        }
    );
    assert!(err.to_string().contains("hyperscale_smoke/wall_secs"));
}

#[test]
fn non_finite_current_is_a_typed_error() {
    // A NaN cannot be serialized into the store, but gate_record judges
    // in-memory records too — the typed error must surface, not a panic.
    let current = with_metric(
        uniform_record("head", 100.0),
        "plb_place_bc_x4_ring_100",
        f64::NAN,
    );
    let err = gate_record(&flat_history(), &current).unwrap_err();
    let TrackError::Metric { name, source } = err else {
        panic!("expected a metric error");
    };
    assert_eq!(name, "plb_place_bc_x4_ring_100");
    assert!(matches!(source, GateError::NonFiniteCurrent { .. }));
}

#[test]
fn malformed_series_entry_is_a_typed_load_error() {
    // A benchdata.json whose entry lacks its value: loading reports a
    // typed InvalidData error naming the missing field — the gate never
    // sees (and never silently passes) a half-parsed series.
    let dir = std::env::temp_dir().join(format!("toto-gate-malformed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("benchdata.json"),
        r#"[
  {
    "commit": "deadbee",
    "entries": [
      {
        "name": "plb_place_bc_x4_ring_100",
        "unit": "ns/iter"
      }
    ],
    "schema_version": 1
  }
]
"#,
    )
    .unwrap();
    let err = RunStore::new(&dir).load_bench_records().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(
        err.to_string().contains("missing bench value"),
        "error must name the malformed field, got: {err}"
    );

    // An entry from a future schema version is likewise rejected, not
    // reinterpreted.
    std::fs::write(
        dir.join("benchdata.json"),
        r#"[
  {
    "commit": "deadbee",
    "entries": [],
    "schema_version": 999
  }
]
"#,
    )
    .unwrap();
    let err = RunStore::new(&dir).load_bench_records().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("schema"), "got: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}
