//! Deterministic fault injection for the Toto reproduction.
//!
//! The paper's density study ran on a live staging cluster where faults
//! — maintenance upgrades, node failures — *happened to* the experiment
//! ("the outliers at each density level are when a cluster maintenance
//! upgrade was occurring", §5.3.2). The simulator can do better: inject
//! faults **on purpose**, from a declarative [`ChaosPlan`], with every
//! nondeterministic choice (which node dies, which report is lost)
//! drawn from a labelled seed stream so that a `(spec, seed)` pair
//! replays byte-identically.
//!
//! The crate has three parts:
//!
//! * [`plan`] — [`ChaosPlan`] / [`FaultSpec`]: the declarative fault
//!   list (XML round-trip like every other spec), plus compilation into
//!   primitive time-sorted [`ChaosAction`]s.
//! * [`oracle`] — [`InvariantOracle`]: four cross-cutting safety
//!   properties checked after every dispatched event while chaos is
//!   active. Faults may degrade KPIs; they must never break these.
//! * [`report`] / [`runtime`] — per-fault KPI accounting
//!   ([`ChaosReport`]) and the seeded run-time state
//!   ([`ChaosRuntime`]).
//!
//! The experiment runner (crates/core) owns the actual injection: it
//! schedules one simulation event per compiled action and calls the
//! fabric entry points (`Plb::crash_node`, `Plb::drain_node`,
//! `Cluster::set_metric_capacity`, report suppression at the RgManager
//! boundary). This crate deliberately contains no event handlers — it
//! only decides *what* and *when*, never executes.

pub mod oracle;
pub mod plan;
pub mod report;
pub mod runtime;

pub use oracle::{InvariantOracle, OracleViolation};
pub use plan::{ChaosAction, ChaosPlan, FaultSpec, ScheduledFault};
pub use report::{ChaosFaultRecord, ChaosReport};
pub use runtime::{chaos_seed, ChaosRuntime};

#[cfg(test)]
mod tests {
    use super::*;
    use toto_spec::ResourceKind;

    #[test]
    fn named_plans_parse_and_round_trip() {
        for name in ChaosPlan::NAMED {
            let plan = ChaosPlan::named(name).expect("built-in plan");
            assert!(!plan.is_empty(), "{name} is empty");
            let xml = plan.to_xml_string();
            let back = ChaosPlan::parse(&xml).expect("round-trip parse");
            assert_eq!(plan, back, "{name} did not round-trip");
        }
        assert!(ChaosPlan::named("no-such-plan").is_none());
    }

    #[test]
    fn empty_plan_compiles_to_nothing() {
        let plan = ChaosPlan::default();
        assert!(plan.is_empty());
        assert!(plan.compile(14, 144).is_empty());
    }

    #[test]
    fn compile_expands_sorts_and_clips() {
        let plan = ChaosPlan {
            faults: vec![
                FaultSpec::CapacityDegrade {
                    at_hour: 5,
                    resource: ResourceKind::Disk,
                    factor: 0.9,
                    restore_hour: Some(8),
                },
                FaultSpec::RollingRestart {
                    start_hour: 1,
                    downtime_hours: 2,
                },
                FaultSpec::NodeCrash {
                    at_hour: 200,
                    node: None,
                    downtime_secs: 600,
                },
            ],
        };
        let actions = plan.compile(3, 10);
        // Rolling restart expands to one drain per node (hours 1, 3, 5);
        // at the hour-5 tie the degrade fires first (declared first);
        // the hour-200 crash is clipped by the 10-hour duration.
        let times: Vec<u64> = actions.iter().map(|a| a.at_secs / 3600).collect();
        assert_eq!(times, vec![1, 3, 5, 5, 8]);
        assert!(matches!(
            actions[2].action,
            ChaosAction::Degrade {
                resource: ResourceKind::Disk,
                ..
            }
        ));
        assert!(matches!(
            actions[3].action,
            ChaosAction::Drain { node: 2, .. }
        ));
        assert!(matches!(
            actions[4].action,
            ChaosAction::RestoreCapacity {
                resource: ResourceKind::Disk
            }
        ));
    }

    #[test]
    fn report_loss_window_compiles_to_start_and_end() {
        let plan = ChaosPlan {
            faults: vec![FaultSpec::ReportLoss {
                from_hour: 2,
                to_hour: 4,
                drop_probability: 0.25,
            }],
        };
        let actions = plan.compile(4, 6);
        assert_eq!(actions.len(), 2);
        assert!(
            matches!(actions[0].action, ChaosAction::ReportLossStart { drop_probability } if drop_probability == 0.25)
        );
        assert_eq!(actions[1].action, ChaosAction::ReportLossEnd);
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let bad_factor =
            r#"<chaosPlan><capacityDegrade atHour="1" resource="Disk" factor="1.5"/></chaosPlan>"#;
        assert!(ChaosPlan::parse(bad_factor).is_err());
        let bad_prob =
            r#"<chaosPlan><reportLoss fromHour="1" toHour="2" dropProbability="1.5"/></chaosPlan>"#;
        assert!(ChaosPlan::parse(bad_prob).is_err());
        let bad_fault = r#"<chaosPlan><meteorStrike atHour="1"/></chaosPlan>"#;
        assert!(ChaosPlan::parse(bad_fault).is_err());
        let bad_root = r#"<notAPlan/>"#;
        assert!(ChaosPlan::parse(bad_root).is_err());
    }
}
