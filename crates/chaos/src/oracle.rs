//! Invariant oracles: cross-cutting safety properties checked after
//! every dispatched simulation event while chaos is active.
//!
//! Each oracle states a property that must hold *no matter which faults
//! were injected*. A violation is a bug in the orchestration layers, not
//! in the plan, so oracles never panic mid-run: they emit an
//! [`toto_trace::EventKind::OracleViolation`] trace event, count the
//! violation, and let the run finish so the evidence lands in the trace
//! sidecar.
//!
//! The four oracles:
//!
//! 1. **`replica_on_down_node`** — no placement decision puts (or moves)
//!    a replica onto a down node. Replicas *stranded* by a crash (they
//!    were already there and nothing up fits them) are legal; the oracle
//!    is transition-based and only flags replicas that arrived on the
//!    down node since the previous check.
//! 2. **`service_total_loss`** — no service newly loses its last live
//!    replica while at least one up node could host one (same fit rule
//!    as the PLB: per-metric capacity × placement headroom, no sibling
//!    co-location). Also transition-based: entering the all-down state
//!    with an escape hatch available is the bug.
//! 3. **`naming_consistency`** — the model XML key exists and every
//!    persisted-state key refers to a live database identity (dropped
//!    databases must scrub their keys).
//! 4. **`cost_cache`** — every node's cached PLB cost equals a bitwise
//!    recompute from its load vector (the decision-identity contract of
//!    the cost cache).

use toto_fabric::cluster::Cluster;
use toto_fabric::naming::NamingService;
use toto_rgmanager::MODEL_KEY;

/// Prefix under which RgManagers persist metric state in the Naming
/// Service (`toto/state/{resource}/svc-{identity}`).
const STATE_PREFIX: &str = "toto/state/";

/// One detected violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleViolation {
    /// Which oracle fired (stable snake_case name).
    pub oracle: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

/// The stateful invariant checker. One instance lives for a whole run;
/// [`InvariantOracle::check`] is called after every dispatched event.
#[derive(Debug)]
pub struct InvariantOracle {
    /// Placement headroom the PLB uses, so oracle 2 applies the same
    /// fit rule as the placement code it audits.
    headroom: f64,
    /// `(replica raw id, node raw id)` at the previous check, sorted by
    /// replica id ([`Cluster::replicas`] iterates in id order, so the
    /// scratch fills already sorted — no per-check map rebuild).
    prev_placement: Vec<(u64, u32)>,
    /// Scratch for the next placement snapshot; swapped with
    /// `prev_placement` each check so neither ever reallocates once the
    /// run reaches steady state.
    placement_scratch: Vec<(u64, u32)>,
    /// Services that were already in the all-replicas-down state at the
    /// previous check (sorted for deterministic iteration).
    prev_all_down: Vec<u64>,
    /// Scratch for oracle 2's next all-down set (same swap scheme).
    all_down_scratch: Vec<u64>,
    /// Scratch for oracle 3's sorted live-identity set.
    live_scratch: Vec<u64>,
    /// Total checks performed.
    pub checks: u64,
    /// Total violations detected.
    pub violations: u64,
}

impl InvariantOracle {
    /// New oracle auditing a PLB configured with `placement_headroom`.
    pub fn new(placement_headroom: f64) -> Self {
        InvariantOracle {
            headroom: placement_headroom,
            prev_placement: Vec::new(),
            placement_scratch: Vec::new(),
            prev_all_down: Vec::new(),
            all_down_scratch: Vec::new(),
            live_scratch: Vec::new(),
            checks: 0,
            violations: 0,
        }
    }

    /// Run all four oracles against the post-event state. Violations are
    /// returned *and* emitted as trace events / counted on `self`.
    ///
    /// `live_identities` iterates the identities of all live databases
    /// (the values of the experiment's service → identity map).
    pub fn check(
        &mut self,
        cluster: &Cluster,
        naming: &NamingService,
        live_identities: impl Iterator<Item = u64>,
    ) -> Vec<OracleViolation> {
        self.checks += 1;
        let mut found = Vec::new();

        // Oracle 1: replicas that arrived on a down node since last check.
        // Replicas iterate in id order, so the scratch fills sorted and
        // the previous snapshot can be probed by binary search.
        self.placement_scratch.clear();
        for rep in cluster.replicas() {
            self.placement_scratch.push((rep.id.raw(), rep.node.raw()));
            if !cluster.node(rep.node).up
                && self
                    .prev_placement
                    .binary_search(&(rep.id.raw(), rep.node.raw()))
                    .is_err()
            {
                found.push(OracleViolation {
                    oracle: "replica_on_down_node",
                    detail: format!(
                        "replica {} of service {} placed on down node {}",
                        rep.id.raw(),
                        rep.service.raw(),
                        rep.node.raw()
                    ),
                });
            }
        }
        std::mem::swap(&mut self.prev_placement, &mut self.placement_scratch);

        // Oracle 2: services newly stranded with every replica on a down
        // node while an up node could host one.
        self.all_down_scratch.clear();
        for svc in cluster.services() {
            if svc.replicas.is_empty() {
                continue;
            }
            let every_replica_down = svc
                .replicas
                .iter()
                .filter_map(|r| cluster.replica(*r))
                .all(|r| !cluster.node(r.node).up);
            if !every_replica_down {
                continue;
            }
            self.all_down_scratch.push(svc.id.raw());
            if self.prev_all_down.binary_search(&svc.id.raw()).is_ok() {
                continue; // Already stranded before this event: not a transition.
            }
            let sample = svc.replicas.first().and_then(|r| cluster.replica(*r));
            let Some(sample) = sample else { continue };
            let escape = cluster.nodes().iter().find(|n| {
                n.up && !n.hosts_service(svc.id)
                    && cluster.metrics().iter().all(|(mid, def)| {
                        n.load[mid] + sample.load[mid] <= def.node_capacity * self.headroom
                    })
            });
            if let Some(node) = escape {
                found.push(OracleViolation {
                    oracle: "service_total_loss",
                    detail: format!(
                        "service {} lost every replica although node {} fits one",
                        svc.id.raw(),
                        node.id.raw()
                    ),
                });
            }
        }
        std::mem::swap(&mut self.prev_all_down, &mut self.all_down_scratch);

        // Oracle 3: Naming Service consistency. The live set reuses a
        // sorted scratch vector and the prefix scan borrows keys from
        // the store — this runs after every event, so neither may
        // allocate in steady state.
        if !naming.contains_key(MODEL_KEY) {
            found.push(OracleViolation {
                oracle: "naming_consistency",
                detail: format!("model key '{MODEL_KEY}' missing"),
            });
        }
        self.live_scratch.clear();
        self.live_scratch.extend(live_identities);
        self.live_scratch.sort_unstable();
        for key in naming.keys_with_prefix(STATE_PREFIX) {
            let identity = key
                .rsplit_once("/svc-")
                .and_then(|(_, raw)| raw.parse::<u64>().ok());
            match identity {
                Some(id) if self.live_scratch.binary_search(&id).is_ok() => {}
                _ => found.push(OracleViolation {
                    oracle: "naming_consistency",
                    detail: format!("persisted-state key '{key}' has no live database"),
                }),
            }
        }

        // Oracle 4: node-cost cache vs. bitwise recompute.
        for node in cluster.nodes() {
            let cached = cluster.node_cost(node.id);
            let fresh = cluster.metrics().cost_of(&node.load);
            if cached.to_bits() != fresh.to_bits() {
                found.push(OracleViolation {
                    oracle: "cost_cache",
                    detail: format!(
                        "node {} cached cost {cached:?} != recomputed {fresh:?}",
                        node.id.raw()
                    ),
                });
            }
        }

        self.violations += found.len() as u64;
        for v in &found {
            toto_trace::emit(toto_trace::EventKind::OracleViolation, || {
                toto_trace::EventBody::OracleViolation {
                    oracle: v.oracle.to_string(),
                    detail: v.detail.clone(),
                }
            });
        }
        found
    }

    /// Forget a replica's tracked placement (e.g. after a drop, to keep
    /// the snapshot from growing without bound). Unknown ids are ignored.
    pub fn forget_replica(&mut self, replica_raw: u64) {
        if let Ok(i) = self
            .prev_placement
            .binary_search_by_key(&replica_raw, |&(id, _)| id)
        {
            self.prev_placement.remove(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toto_fabric::cluster::{ClusterConfig, ServiceSpec};
    use toto_fabric::ids::{MetricId, NodeId};
    use toto_fabric::metrics::{MetricDef, MetricRegistry};
    use toto_fabric::plb::{Plb, PlbConfig};
    use toto_simcore::time::SimTime;

    fn cluster(nodes: u32) -> Cluster {
        let mut metrics = MetricRegistry::new();
        metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: 96.0,
            balancing_weight: 1.0,
        });
        metrics.register(MetricDef {
            name: "Disk".into(),
            node_capacity: 1000.0,
            balancing_weight: 1.0,
        });
        Cluster::new(ClusterConfig {
            node_count: nodes,
            metrics,
            fault_domains: 1,
        })
    }

    fn place(
        cluster: &mut Cluster,
        plb: &mut Plb,
        name: &str,
        replicas: u32,
    ) -> toto_fabric::ids::ServiceId {
        let mut load = cluster.metrics().zero_load();
        load[MetricId(0)] = 4.0;
        load[MetricId(1)] = 50.0;
        let spec = ServiceSpec {
            name: name.into(),
            tag: 0,
            replica_count: replicas,
            default_load: load,
        };
        plb.create_service(cluster, &spec, SimTime::ZERO)
            .expect("test cluster has room")
    }

    fn healthy_naming() -> NamingService {
        let mut naming = NamingService::new();
        naming.write(MODEL_KEY, "<modelSet/>");
        naming
    }

    #[test]
    fn healthy_cluster_has_no_violations() {
        let mut c = cluster(4);
        let mut plb = Plb::new(PlbConfig::default(), 7);
        place(&mut c, &mut plb, "db", 3);
        let naming = healthy_naming();
        let mut oracle = InvariantOracle::new(1.0);
        let found = oracle.check(&c, &naming, std::iter::empty());
        assert!(found.is_empty(), "unexpected violations: {found:?}");
        assert_eq!(oracle.checks, 1);
        assert_eq!(oracle.violations, 0);
    }

    #[test]
    fn replica_moved_onto_down_node_fires_oracle_1() {
        let mut c = cluster(4);
        let mut plb = Plb::new(PlbConfig::default(), 7);
        let svc = place(&mut c, &mut plb, "db", 1);
        let naming = healthy_naming();
        let mut oracle = InvariantOracle::new(1.0);
        assert!(oracle.check(&c, &naming, std::iter::empty()).is_empty());
        // Deliberately break the invariant: move the replica onto a node
        // that has been marked down (the cluster mutator itself does not
        // police node liveness — that is the PLB's job, and the oracle's).
        let rid = c.service(svc).unwrap().replicas[0];
        let from = c.replica(rid).unwrap().node;
        let to = NodeId(if from.raw() == 3 { 2 } else { 3 });
        c.set_node_up(to, false);
        c.move_replica(rid, to);
        let found = oracle.check(&c, &naming, std::iter::empty());
        assert!(
            found.iter().any(|v| v.oracle == "replica_on_down_node"),
            "oracle 1 did not fire: {found:?}"
        );
    }

    #[test]
    fn stranded_replica_does_not_fire_oracle_1() {
        let mut c = cluster(4);
        let mut plb = Plb::new(PlbConfig::default(), 7);
        let svc = place(&mut c, &mut plb, "db", 1);
        let naming = healthy_naming();
        let mut oracle = InvariantOracle::new(1.0);
        assert!(oracle.check(&c, &naming, std::iter::empty()).is_empty());
        // The node goes down with the replica already on it: stranded,
        // not newly placed — oracle 1 must stay quiet.
        let rid = c.service(svc).unwrap().replicas[0];
        let node = c.replica(rid).unwrap().node;
        c.set_node_up(node, false);
        let found = oracle.check(&c, &naming, std::iter::empty());
        assert!(
            found.iter().all(|v| v.oracle != "replica_on_down_node"),
            "oracle 1 fired on a stranded replica: {found:?}"
        );
    }

    #[test]
    fn total_loss_with_escape_hatch_fires_oracle_2() {
        let mut c = cluster(4);
        let mut plb = Plb::new(PlbConfig::default(), 7);
        let svc = place(&mut c, &mut plb, "db", 1);
        let naming = healthy_naming();
        let mut oracle = InvariantOracle::new(1.0);
        assert!(oracle.check(&c, &naming, std::iter::empty()).is_empty());
        // Deliberately break the invariant: take the hosting node down
        // without failing the replica over, while three empty up nodes
        // could trivially host it.
        let node = c.replica(c.service(svc).unwrap().replicas[0]).unwrap().node;
        c.set_node_up(node, false);
        let found = oracle.check(&c, &naming, std::iter::empty());
        assert!(
            found.iter().any(|v| v.oracle == "service_total_loss"),
            "oracle 2 did not fire: {found:?}"
        );
        // And only on the transition: the next check sees the same
        // stranded state and stays quiet.
        let again = oracle.check(&c, &naming, std::iter::empty());
        assert!(again.iter().all(|v| v.oracle != "service_total_loss"));
    }

    #[test]
    fn dangling_persisted_key_fires_oracle_3() {
        let c = cluster(2);
        let mut naming = healthy_naming();
        naming.write("toto/state/Disk/svc-999", "42.0");
        let mut oracle = InvariantOracle::new(1.0);
        // Identity 999 is not live → the key dangles.
        let found = oracle.check(&c, &naming, [7u64].into_iter());
        assert!(
            found.iter().any(|v| v.oracle == "naming_consistency"),
            "oracle 3 did not fire: {found:?}"
        );
        // A live identity silences it.
        let found = oracle.check(&c, &naming, [999u64].into_iter());
        assert!(found.iter().all(|v| v.oracle != "naming_consistency"));
    }

    #[test]
    fn missing_model_key_fires_oracle_3() {
        let c = cluster(2);
        let naming = NamingService::new();
        let mut oracle = InvariantOracle::new(1.0);
        let found = oracle.check(&c, &naming, std::iter::empty());
        assert!(found
            .iter()
            .any(|v| v.oracle == "naming_consistency" && v.detail.contains(MODEL_KEY)));
    }

    #[test]
    fn corrupted_cost_cache_fires_oracle_4() {
        let mut c = cluster(2);
        let naming = healthy_naming();
        let mut oracle = InvariantOracle::new(1.0);
        assert!(oracle.check(&c, &naming, std::iter::empty()).is_empty());
        // Deliberately corrupt the cache through the test-only hook.
        c.corrupt_node_cost_for_test(NodeId(1), 123.456);
        let found = oracle.check(&c, &naming, std::iter::empty());
        assert!(
            found.iter().any(|v| v.oracle == "cost_cache"),
            "oracle 4 did not fire: {found:?}"
        );
        assert_eq!(oracle.violations, 1);
    }
}
