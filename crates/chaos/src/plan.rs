//! Declarative fault-injection plans.
//!
//! A [`ChaosPlan`] is part of the experiment configuration: a list of
//! [`FaultSpec`]s pinned to hours of the run. Like every other spec in
//! this workspace it round-trips through XML (§3.3.1's declarative
//! idiom), and everything it leaves unresolved — e.g. *which* node
//! crashes — is decided at injection time from the experiment's seeded
//! chaos RNG stream, so a `(spec, seed)` pair replays byte-identically.
//!
//! Plans are compiled ([`ChaosPlan::compile`]) into a flat, time-sorted
//! list of primitive [`ChaosAction`]s before the run starts; the runner
//! schedules one simulation event per action.

use toto_spec::xml::{ParseError, XmlElement};
use toto_spec::ResourceKind;

/// One declared fault. Hours are offsets from experiment start.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultSpec {
    /// A node crashes (abrupt, no drain) and restarts after
    /// `downtime_secs`. `node: None` lets the chaos RNG pick an up node
    /// at injection time.
    NodeCrash {
        /// Hour the crash fires.
        at_hour: u64,
        /// Fixed victim, or `None` for a seeded pick among up nodes.
        node: Option<u32>,
        /// Seconds until the node comes back.
        downtime_secs: u64,
    },
    /// Upgrade-domain style rolling restart: node 0, 1, 2, … are each
    /// drained for `downtime_hours` in turn, like the paper's cluster
    /// maintenance upgrades (§5.3.2).
    RollingRestart {
        /// Hour the first node is drained.
        start_hour: u64,
        /// Per-node downtime (also the stagger between nodes).
        downtime_hours: u64,
    },
    /// Permanent decommission: the node is drained and never comes back.
    /// A drain blocked by a last-replica conflict refuses the
    /// decommission (recorded, not forced).
    Decommission {
        /// Hour the decommission fires.
        at_hour: u64,
        /// Fixed victim, or `None` for a seeded pick among up nodes.
        node: Option<u32>,
    },
    /// Shrink one resource's per-node logical capacity to
    /// `factor` × its configured value, optionally restoring later.
    CapacityDegrade {
        /// Hour the degrade fires.
        at_hour: u64,
        /// Which metric's capacity shrinks.
        resource: ResourceKind,
        /// Multiplier in (0, 1] applied to the configured capacity.
        factor: f64,
        /// Hour the original capacity is restored (`None` = never).
        restore_hour: Option<u64>,
    },
    /// Metric-report loss at the RgManager boundary: during the window
    /// each per-replica report is dropped with `drop_probability`. The
    /// PLB then keeps acting on the stale previous value, so a loss is
    /// equivalent to delaying that replica's report by one period.
    ReportLoss {
        /// Hour the lossy window opens.
        from_hour: u64,
        /// Hour the window closes.
        to_hour: u64,
        /// Per-report drop probability in [0, 1].
        drop_probability: f64,
    },
    /// Correlated failover storm: `node_count` distinct up nodes crash
    /// simultaneously and all restart after `downtime_secs`.
    FailoverStorm {
        /// Hour the storm fires.
        at_hour: u64,
        /// How many nodes go down at once.
        node_count: u32,
        /// Seconds until the nodes come back.
        downtime_secs: u64,
    },
}

/// A primitive, time-pinned injection produced by [`ChaosPlan::compile`].
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduledFault {
    /// Seconds from experiment start.
    pub at_secs: u64,
    /// What to inject.
    pub action: ChaosAction,
}

/// The primitive actions the experiment runner knows how to inject.
#[derive(Clone, Debug, PartialEq)]
pub enum ChaosAction {
    /// Abrupt crash (+ scheduled restart after `downtime_secs`).
    Crash {
        /// Victim, or `None` for a seeded pick at injection time.
        node: Option<u32>,
        /// Seconds until restart.
        downtime_secs: u64,
    },
    /// Graceful drain (+ scheduled restart), one rolling-restart step.
    Drain {
        /// Node to drain.
        node: u32,
        /// Seconds until restart.
        downtime_secs: u64,
    },
    /// Drain with no restart.
    Decommission {
        /// Victim, or `None` for a seeded pick at injection time.
        node: Option<u32>,
    },
    /// Shrink a resource's per-node capacity to `factor` × configured.
    Degrade {
        /// Which metric shrinks.
        resource: ResourceKind,
        /// Multiplier in (0, 1].
        factor: f64,
    },
    /// Undo a [`ChaosAction::Degrade`] for the same resource.
    RestoreCapacity {
        /// Which metric recovers.
        resource: ResourceKind,
    },
    /// Open a report-loss window.
    ReportLossStart {
        /// Per-report drop probability in [0, 1].
        drop_probability: f64,
    },
    /// Close the report-loss window.
    ReportLossEnd,
    /// Simultaneous crash of `node_count` distinct up nodes.
    Storm {
        /// How many nodes go down.
        node_count: u32,
        /// Seconds until all restart.
        downtime_secs: u64,
    },
}

/// A fault-injection plan: the chaos section of an experiment spec.
///
/// The default plan is empty; an empty plan injects nothing, draws
/// nothing from any RNG and leaves the run bitwise identical to a run
/// without chaos support at all.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosPlan {
    /// Declared faults, in declaration order.
    pub faults: Vec<FaultSpec>,
}

impl ChaosPlan {
    /// True iff the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Built-in named plans (`fleet_runner --chaos <name>`).
    ///
    /// Returns `None` for unknown names; [`ChaosPlan::NAMED`] lists the
    /// valid ones.
    pub fn named(name: &str) -> Option<ChaosPlan> {
        let faults = match name {
            "node-crash" => vec![FaultSpec::NodeCrash {
                at_hour: 2,
                node: None,
                downtime_secs: 1800,
            }],
            "storm" => vec![FaultSpec::FailoverStorm {
                at_hour: 2,
                node_count: 3,
                downtime_secs: 1200,
            }],
            "degrade" => vec![FaultSpec::CapacityDegrade {
                at_hour: 1,
                resource: ResourceKind::Disk,
                factor: 0.85,
                restore_hour: Some(4),
            }],
            "report-loss" => vec![FaultSpec::ReportLoss {
                from_hour: 1,
                to_hour: 4,
                drop_probability: 0.5,
            }],
            "rolling" => vec![FaultSpec::RollingRestart {
                start_hour: 1,
                downtime_hours: 1,
            }],
            "decommission" => vec![FaultSpec::Decommission {
                at_hour: 2,
                node: None,
            }],
            _ => return None,
        };
        Some(ChaosPlan { faults })
    }

    /// Names accepted by [`ChaosPlan::named`].
    pub const NAMED: [&'static str; 6] = [
        "node-crash",
        "storm",
        "degrade",
        "report-loss",
        "rolling",
        "decommission",
    ];

    /// Expand the plan into primitive actions for a run of
    /// `duration_hours` on `node_count` nodes, sorted by time (stable:
    /// ties fire in declaration order). Actions at or past the end of
    /// the run are dropped.
    pub fn compile(&self, node_count: u32, duration_hours: u64) -> Vec<ScheduledFault> {
        let end_secs = duration_hours * 3600;
        let mut out: Vec<ScheduledFault> = Vec::new();
        for fault in &self.faults {
            match fault {
                FaultSpec::NodeCrash {
                    at_hour,
                    node,
                    downtime_secs,
                } => out.push(ScheduledFault {
                    at_secs: at_hour * 3600,
                    action: ChaosAction::Crash {
                        node: *node,
                        downtime_secs: *downtime_secs,
                    },
                }),
                FaultSpec::RollingRestart {
                    start_hour,
                    downtime_hours,
                } => {
                    for i in 0..u64::from(node_count) {
                        out.push(ScheduledFault {
                            at_secs: (start_hour + i * downtime_hours) * 3600,
                            action: ChaosAction::Drain {
                                node: i as u32,
                                downtime_secs: downtime_hours * 3600,
                            },
                        });
                    }
                }
                FaultSpec::Decommission { at_hour, node } => out.push(ScheduledFault {
                    at_secs: at_hour * 3600,
                    action: ChaosAction::Decommission { node: *node },
                }),
                FaultSpec::CapacityDegrade {
                    at_hour,
                    resource,
                    factor,
                    restore_hour,
                } => {
                    out.push(ScheduledFault {
                        at_secs: at_hour * 3600,
                        action: ChaosAction::Degrade {
                            resource: *resource,
                            factor: *factor,
                        },
                    });
                    if let Some(restore) = restore_hour {
                        out.push(ScheduledFault {
                            at_secs: restore * 3600,
                            action: ChaosAction::RestoreCapacity {
                                resource: *resource,
                            },
                        });
                    }
                }
                FaultSpec::ReportLoss {
                    from_hour,
                    to_hour,
                    drop_probability,
                } => {
                    out.push(ScheduledFault {
                        at_secs: from_hour * 3600,
                        action: ChaosAction::ReportLossStart {
                            drop_probability: *drop_probability,
                        },
                    });
                    out.push(ScheduledFault {
                        at_secs: to_hour * 3600,
                        action: ChaosAction::ReportLossEnd,
                    });
                }
                FaultSpec::FailoverStorm {
                    at_hour,
                    node_count: k,
                    downtime_secs,
                } => out.push(ScheduledFault {
                    at_secs: at_hour * 3600,
                    action: ChaosAction::Storm {
                        node_count: *k,
                        downtime_secs: *downtime_secs,
                    },
                }),
            }
        }
        out.retain(|f| f.at_secs < end_secs);
        out.sort_by_key(|f| f.at_secs);
        out
    }

    /// Serialise to an XML element (`<chaosPlan>`).
    pub fn to_xml(&self) -> XmlElement {
        let mut root = XmlElement::new("chaosPlan");
        for fault in &self.faults {
            let el = match fault {
                FaultSpec::NodeCrash {
                    at_hour,
                    node,
                    downtime_secs,
                } => {
                    let mut el = XmlElement::new("nodeCrash")
                        .attr("atHour", at_hour)
                        .attr("downtimeSecs", downtime_secs);
                    if let Some(n) = node {
                        el = el.attr("node", n);
                    }
                    el
                }
                FaultSpec::RollingRestart {
                    start_hour,
                    downtime_hours,
                } => XmlElement::new("rollingRestart")
                    .attr("startHour", start_hour)
                    .attr("downtimeHours", downtime_hours),
                FaultSpec::Decommission { at_hour, node } => {
                    let mut el = XmlElement::new("decommission").attr("atHour", at_hour);
                    if let Some(n) = node {
                        el = el.attr("node", n);
                    }
                    el
                }
                FaultSpec::CapacityDegrade {
                    at_hour,
                    resource,
                    factor,
                    restore_hour,
                } => {
                    let mut el = XmlElement::new("capacityDegrade")
                        .attr("atHour", at_hour)
                        .attr("resource", resource)
                        .attr("factor", factor);
                    if let Some(h) = restore_hour {
                        el = el.attr("restoreHour", h);
                    }
                    el
                }
                FaultSpec::ReportLoss {
                    from_hour,
                    to_hour,
                    drop_probability,
                } => XmlElement::new("reportLoss")
                    .attr("fromHour", from_hour)
                    .attr("toHour", to_hour)
                    .attr("dropProbability", drop_probability),
                FaultSpec::FailoverStorm {
                    at_hour,
                    node_count,
                    downtime_secs,
                } => XmlElement::new("failoverStorm")
                    .attr("atHour", at_hour)
                    .attr("nodeCount", node_count)
                    .attr("downtimeSecs", downtime_secs),
            };
            root = root.child(el);
        }
        root
    }

    /// Serialise to an XML document string.
    pub fn to_xml_string(&self) -> String {
        self.to_xml().to_xml_string()
    }

    /// Parse from an XML element produced by [`ChaosPlan::to_xml`].
    pub fn from_xml(el: &XmlElement) -> Result<ChaosPlan, ParseError> {
        if el.name != "chaosPlan" {
            return Err(ParseError {
                offset: 0,
                message: format!("expected <chaosPlan>, found <{}>", el.name),
            });
        }
        let mut faults = Vec::new();
        for child in &el.children {
            let fault = match child.name.as_str() {
                "nodeCrash" => FaultSpec::NodeCrash {
                    at_hour: child.parse_attr("atHour")?,
                    node: opt_attr(child, "node")?,
                    downtime_secs: child.parse_attr("downtimeSecs")?,
                },
                "rollingRestart" => FaultSpec::RollingRestart {
                    start_hour: child.parse_attr("startHour")?,
                    downtime_hours: child.parse_attr("downtimeHours")?,
                },
                "decommission" => FaultSpec::Decommission {
                    at_hour: child.parse_attr("atHour")?,
                    node: opt_attr(child, "node")?,
                },
                "capacityDegrade" => {
                    let factor: f64 = child.parse_attr("factor")?;
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(ParseError {
                            offset: 0,
                            message: format!("<capacityDegrade> factor {factor} outside (0, 1]"),
                        });
                    }
                    FaultSpec::CapacityDegrade {
                        at_hour: child.parse_attr("atHour")?,
                        resource: child.parse_attr("resource")?,
                        factor,
                        restore_hour: opt_attr(child, "restoreHour")?,
                    }
                }
                "reportLoss" => {
                    let p: f64 = child.parse_attr("dropProbability")?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(ParseError {
                            offset: 0,
                            message: format!("<reportLoss> dropProbability {p} outside [0, 1]"),
                        });
                    }
                    FaultSpec::ReportLoss {
                        from_hour: child.parse_attr("fromHour")?,
                        to_hour: child.parse_attr("toHour")?,
                        drop_probability: p,
                    }
                }
                "failoverStorm" => FaultSpec::FailoverStorm {
                    at_hour: child.parse_attr("atHour")?,
                    node_count: child.parse_attr("nodeCount")?,
                    downtime_secs: child.parse_attr("downtimeSecs")?,
                },
                other => {
                    return Err(ParseError {
                        offset: 0,
                        message: format!("unknown chaos fault <{other}>"),
                    })
                }
            };
            faults.push(fault);
        }
        Ok(ChaosPlan { faults })
    }

    /// Parse an XML document string.
    pub fn parse(input: &str) -> Result<ChaosPlan, ParseError> {
        Self::from_xml(&XmlElement::parse(input)?)
    }
}

fn opt_attr<T: std::str::FromStr>(el: &XmlElement, key: &str) -> Result<Option<T>, ParseError>
where
    T::Err: std::fmt::Display,
{
    match el.get_attr(key) {
        None => Ok(None),
        Some(_) => el.parse_attr(key).map(Some),
    }
}
