//! Per-run chaos accounting: what was injected, what it cost.

/// KPI deltas attributed to one injected fault.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosFaultRecord {
    /// Seconds from experiment start at which the fault fired.
    pub at_secs: u64,
    /// Stable fault kind name (`node_crash`, `drain`, `drain_blocked`,
    /// `decommission`, `capacity_degrade`, `report_loss`, `storm`).
    pub kind: String,
    /// The node hit, when the fault targets exactly one.
    pub node: Option<u32>,
    /// Replica moves the fault forced immediately.
    pub failovers: u64,
    /// Reserved cores of the services whose replicas failed over.
    pub failed_over_cores: f64,
    /// Creation redirects that accumulated between the fault and its
    /// recovery (0 for faults that recover instantly or never).
    pub redirects_delta: u64,
    /// Seconds until the fault's effect was undone (node restarted,
    /// capacity restored, loss window closed). `None` = permanent.
    pub recovery_secs: Option<u64>,
}

/// Everything one chaos-enabled run reports beyond its normal KPIs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosReport {
    /// One record per injected fault, in injection order.
    pub faults: Vec<ChaosFaultRecord>,
    /// Post-event invariant checks performed.
    pub oracle_checks: u64,
    /// Invariant violations detected (must be 0 for a healthy engine).
    pub oracle_violations: u64,
}

impl ChaosReport {
    /// Canonical JSON, schema-stable for artifact diffing: fixed key
    /// order, `{:?}` float formatting (shortest round-trip), `null` for
    /// absent options.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema_version\": 1,\n  \"faults\": [");
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"at_secs\": {}, ", f.at_secs));
            out.push_str(&format!("\"kind\": \"{}\", ", f.kind));
            match f.node {
                Some(n) => out.push_str(&format!("\"node\": {n}, ")),
                None => out.push_str("\"node\": null, "),
            }
            out.push_str(&format!("\"failovers\": {}, ", f.failovers));
            out.push_str(&format!(
                "\"failed_over_cores\": {:?}, ",
                f.failed_over_cores
            ));
            out.push_str(&format!("\"redirects_delta\": {}, ", f.redirects_delta));
            match f.recovery_secs {
                Some(s) => out.push_str(&format!("\"recovery_secs\": {s}")),
                None => out.push_str("\"recovery_secs\": null"),
            }
            out.push('}');
        }
        if !self.faults.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"oracle_checks\": {},\n", self.oracle_checks));
        out.push_str(&format!(
            "  \"oracle_violations\": {}\n",
            self.oracle_violations
        ));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_complete() {
        let report = ChaosReport {
            faults: vec![
                ChaosFaultRecord {
                    at_secs: 7200,
                    kind: "node_crash".into(),
                    node: Some(3),
                    failovers: 5,
                    failed_over_cores: 40.5,
                    redirects_delta: 2,
                    recovery_secs: Some(1800),
                },
                ChaosFaultRecord {
                    at_secs: 10800,
                    kind: "decommission".into(),
                    node: None,
                    failovers: 0,
                    failed_over_cores: 0.0,
                    redirects_delta: 0,
                    recovery_secs: None,
                },
            ],
            oracle_checks: 1234,
            oracle_violations: 0,
        };
        let json = report.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"kind\": \"node_crash\""));
        assert!(json.contains("\"failed_over_cores\": 40.5"));
        assert!(json.contains("\"node\": null"));
        assert!(json.contains("\"recovery_secs\": null"));
        assert!(json.contains("\"oracle_checks\": 1234"));
        assert_eq!(json, report.to_json(), "serialisation must be pure");
    }

    #[test]
    fn empty_report_serialises() {
        let json = ChaosReport::default().to_json();
        assert!(json.contains("\"faults\": []"));
        assert!(json.contains("\"oracle_violations\": 0"));
    }
}
