//! Run-time chaos state threaded through an experiment.

use crate::oracle::InvariantOracle;
use crate::report::ChaosReport;
use toto_fabric::cluster::Cluster;
use toto_fabric::ids::NodeId;
use toto_simcore::rng::{DetRng, SeedTree};

/// Derive the chaos RNG seed from the scenario's PLB seed. Chaos shares
/// the PLB lineage (both model Service-Fabric-side nondeterminism) but
/// draws from its own labelled stream, so enabling chaos never perturbs
/// the PLB's draws for decisions both runs make.
pub fn chaos_seed(plb_seed: u64) -> u64 {
    SeedTree::new(plb_seed).child("chaos", 0).seed()
}

/// Mutable chaos state owned by a running experiment. Absent entirely
/// (no allocation, no RNG draws) when the plan is empty.
#[derive(Debug)]
pub struct ChaosRuntime {
    /// Seeded stream for victim picks and report-loss draws.
    pub rng: DetRng,
    /// The post-event invariant checker.
    pub oracle: InvariantOracle,
    /// Accumulating per-fault accounting.
    pub report: ChaosReport,
    /// Per-report drop probability while a loss window is open.
    pub drop_probability: Option<f64>,
    /// Original per-node capacity of each degraded resource, by
    /// `ResourceKind::index()`, so a restore is exact.
    pub saved_capacity: [Option<f64>; 3],
}

impl ChaosRuntime {
    /// Fresh runtime for one run.
    pub fn new(plb_seed: u64, placement_headroom: f64) -> Self {
        ChaosRuntime {
            rng: DetRng::seed_from_u64(chaos_seed(plb_seed)),
            oracle: InvariantOracle::new(placement_headroom),
            report: ChaosReport::default(),
            drop_probability: None,
            saved_capacity: [None; 3],
        }
    }

    /// Pick one up node uniformly from the chaos stream (ids ascending,
    /// so the draw is reproducible). `None` if every node is down.
    pub fn pick_up_node(&mut self, cluster: &Cluster) -> Option<NodeId> {
        let up: Vec<NodeId> = cluster
            .nodes()
            .iter()
            .filter(|n| n.up)
            .map(|n| n.id)
            .collect();
        if up.is_empty() {
            return None;
        }
        let i = self.rng.next_below(up.len() as u64) as usize;
        Some(up[i])
    }

    /// Pick up to `count` distinct up nodes (ascending candidate order,
    /// draws without replacement).
    pub fn pick_up_nodes(&mut self, cluster: &Cluster, count: u32) -> Vec<NodeId> {
        let mut up: Vec<NodeId> = cluster
            .nodes()
            .iter()
            .filter(|n| n.up)
            .map(|n| n.id)
            .collect();
        let mut picked = Vec::new();
        for _ in 0..count {
            if up.is_empty() {
                break;
            }
            let i = self.rng.next_below(up.len() as u64) as usize;
            picked.push(up.remove(i));
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toto_fabric::cluster::ClusterConfig;
    use toto_fabric::metrics::{MetricDef, MetricRegistry};

    fn cluster(nodes: u32) -> Cluster {
        let mut metrics = MetricRegistry::new();
        metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: 96.0,
            balancing_weight: 1.0,
        });
        Cluster::new(ClusterConfig {
            node_count: nodes,
            metrics,
            fault_domains: 1,
        })
    }

    #[test]
    fn chaos_seed_is_stable_and_distinct_from_plb_seed() {
        assert_eq!(chaos_seed(42), chaos_seed(42));
        assert_ne!(chaos_seed(42), 42);
        assert_ne!(chaos_seed(42), chaos_seed(43));
    }

    #[test]
    fn node_picks_are_deterministic_and_respect_liveness() {
        let mut c = cluster(6);
        c.set_node_up(NodeId(2), false);
        let mut a = ChaosRuntime::new(7, 1.0);
        let mut b = ChaosRuntime::new(7, 1.0);
        for _ in 0..20 {
            let pa = a.pick_up_node(&c).unwrap();
            let pb = b.pick_up_node(&c).unwrap();
            assert_eq!(pa, pb);
            assert_ne!(pa, NodeId(2), "down node must never be picked");
        }
        let storm = a.pick_up_nodes(&c, 4);
        assert_eq!(storm.len(), 4);
        let mut dedup = storm.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "storm picks must be distinct");
        assert!(storm.iter().all(|n| *n != NodeId(2)));
        // Asking for more nodes than are up caps at the up count.
        let mut all = ChaosRuntime::new(9, 1.0);
        assert_eq!(all.pick_up_nodes(&c, 99).len(), 5);
    }
}
