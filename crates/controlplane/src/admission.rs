//! Admission control and creation redirects.
//!
//! §5.3.1: "A creation redirect will occur when the cluster does not have
//! enough cores to satisfy the creation request. Instead of being placed
//! in this tenant ring, the database will be redirected to another tenant
//! ring that has enough capacity." The admission controller therefore
//! checks the ring's remaining *logical* cores (which scale with the
//! density parameter) before asking the PLB for a placement, and treats a
//! placement failure the same way.

use crate::slo::{encode_tag, Slo};
use toto_fabric::cluster::{Cluster, ServiceSpec};
use toto_fabric::ids::{MetricId, ServiceId};
use toto_fabric::plb::Plb;
use toto_simcore::time::SimTime;
use toto_spec::EditionKind;

/// A creation request forwarded by the Population Manager.
#[derive(Clone, Debug)]
pub struct CreateRequest {
    /// Database name (for the service record).
    pub name: String,
    /// Catalog index of the requested SLO.
    pub slo_index: usize,
    /// Initial local-disk load per replica, GB. For local-store databases
    /// this is the data size; for remote-store databases only tempDB.
    pub initial_disk_gb: f64,
    /// Initial memory load per replica, GB (a cold buffer pool).
    pub initial_memory_gb: f64,
}

/// A creation that had to leave the ring.
#[derive(Clone, Debug, PartialEq)]
pub struct RedirectEvent {
    /// When the redirect happened.
    pub time: SimTime,
    /// Edition of the redirected database.
    pub edition: EditionKind,
    /// SLO name of the redirected database.
    pub slo_name: String,
    /// Cores the request would have reserved (all replicas).
    pub requested_cores: f64,
    /// Remaining logical cores at the time of the request.
    pub remaining_cores: f64,
}

/// Result of an admission attempt.
#[derive(Clone, Debug, PartialEq)]
pub enum AdmissionOutcome {
    /// The database was created in this ring.
    Admitted(ServiceId),
    /// The database was redirected to another ring.
    Redirected(RedirectEvent),
}

/// The ring's admission controller.
#[derive(Clone, Debug)]
pub struct AdmissionController {
    cpu: MetricId,
    memory: MetricId,
    disk: MetricId,
    redirects: Vec<RedirectEvent>,
}

impl AdmissionController {
    /// Build over the cluster's metric ids.
    pub fn new(cpu: MetricId, memory: MetricId, disk: MetricId) -> Self {
        AdmissionController {
            cpu,
            memory,
            disk,
            redirects: Vec::new(),
        }
    }

    /// Remaining logical cores in the ring: density-scaled capacity minus
    /// the cores already reserved.
    pub fn remaining_cores(&self, cluster: &Cluster) -> f64 {
        cluster.total_capacity(self.cpu) - cluster.total_load(self.cpu)
    }

    /// Build the fabric service spec for a request.
    fn service_spec(
        &self,
        cluster: &Cluster,
        slo: &Slo,
        slo_index: usize,
        req: &CreateRequest,
    ) -> ServiceSpec {
        let mut load = cluster.metrics().zero_load();
        load[self.cpu] = slo.vcores as f64;
        load[self.memory] = req.initial_memory_gb;
        load[self.disk] = req.initial_disk_gb;
        ServiceSpec {
            name: req.name.clone(),
            tag: encode_tag(slo.edition, slo_index),
            replica_count: slo.replica_count(),
            default_load: load,
        }
    }

    /// Try to admit a creation. On insufficient cores or placement
    /// failure the request is redirected (recorded and returned).
    pub fn try_admit(
        &mut self,
        cluster: &mut Cluster,
        plb: &mut Plb,
        slo: &Slo,
        req: &CreateRequest,
        now: SimTime,
    ) -> AdmissionOutcome {
        let requested = slo.total_reserved_cores();
        let remaining = self.remaining_cores(cluster);
        let redirect = |remaining: f64| RedirectEvent {
            time: now,
            edition: slo.edition,
            slo_name: slo.name.clone(),
            requested_cores: requested,
            remaining_cores: remaining,
        };
        let trace_redirect = || {
            toto_trace::emit(toto_trace::EventKind::AdmissionRedirected, || {
                toto_trace::EventBody::AdmissionRedirected {
                    cores: requested,
                    available: remaining,
                }
            });
        };
        if requested > remaining {
            let ev = redirect(remaining);
            self.redirects.push(ev.clone());
            trace_redirect();
            return AdmissionOutcome::Redirected(ev);
        }
        let spec = self.service_spec(cluster, slo, req.slo_index, req);
        match plb.create_service(cluster, &spec, now) {
            Ok(id) => {
                toto_trace::emit(toto_trace::EventKind::AdmissionAdmitted, || {
                    toto_trace::EventBody::AdmissionAdmitted {
                        service: id.raw(),
                        cores: requested,
                    }
                });
                AdmissionOutcome::Admitted(id)
            }
            Err(_) => {
                let ev = redirect(remaining);
                self.redirects.push(ev.clone());
                trace_redirect();
                AdmissionOutcome::Redirected(ev)
            }
        }
    }

    /// All redirects so far, in time order.
    pub fn redirects(&self) -> &[RedirectEvent] {
        &self.redirects
    }

    /// Number of redirects up to and including `t`.
    ///
    /// The redirect log is append-only and every append happens at the
    /// simulation's current (monotone) time, so the vector is sorted by
    /// `time` and a binary search suffices. Region aggregation calls this
    /// per-ring per-KPI-sample, so the old linear scan was quadratic in
    /// redirect volume over a run.
    pub fn redirects_until(&self, t: SimTime) -> usize {
        debug_assert!(
            self.redirects.windows(2).all(|w| w[0].time <= w[1].time),
            "redirect log must be time-sorted"
        );
        self.redirects.partition_point(|r| r.time <= t)
    }

    /// The CPU metric id the controller accounts reservations in.
    pub fn cpu_metric(&self) -> MetricId {
        self.cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloCatalog;
    use toto_fabric::cluster::ClusterConfig;
    use toto_fabric::metrics::{MetricDef, MetricRegistry};
    use toto_fabric::plb::PlbConfig;

    fn setup(nodes: u32, cpu_cap: f64) -> (Cluster, Plb, AdmissionController, SloCatalog) {
        let mut metrics = MetricRegistry::new();
        let cpu = metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: cpu_cap,
            balancing_weight: 1.0,
        });
        let memory = metrics.register(MetricDef {
            name: "Memory".into(),
            node_capacity: 512.0,
            balancing_weight: 0.5,
        });
        let disk = metrics.register(MetricDef {
            name: "Disk".into(),
            node_capacity: 7000.0,
            balancing_weight: 1.0,
        });
        let cluster = Cluster::new(ClusterConfig {
            node_count: nodes,
            metrics,
            fault_domains: 1,
        });
        let plb = Plb::new(PlbConfig::default(), 7);
        let ac = AdmissionController::new(cpu, memory, disk);
        (cluster, plb, ac, SloCatalog::gen5())
    }

    fn request(catalog: &SloCatalog, slo_name: &str, disk: f64) -> (usize, CreateRequest) {
        let (idx, _) = catalog.by_name(slo_name).unwrap();
        (
            idx,
            CreateRequest {
                name: format!("db-{slo_name}"),
                slo_index: idx,
                initial_disk_gb: disk,
                initial_memory_gb: 1.0,
            },
        )
    }

    #[test]
    fn admission_reserves_cores() {
        let (mut cluster, mut plb, mut ac, catalog) = setup(4, 96.0);
        let before = ac.remaining_cores(&cluster);
        let (idx, req) = request(&catalog, "GP_4", 10.0);
        let slo = catalog.get(idx).unwrap();
        let out = ac.try_admit(&mut cluster, &mut plb, slo, &req, SimTime::ZERO);
        assert!(matches!(out, AdmissionOutcome::Admitted(_)));
        assert_eq!(ac.remaining_cores(&cluster), before - 4.0);
        cluster.check_invariants();
    }

    #[test]
    fn bc_reserves_cores_for_all_replicas() {
        let (mut cluster, mut plb, mut ac, catalog) = setup(6, 96.0);
        let before = ac.remaining_cores(&cluster);
        let (idx, req) = request(&catalog, "BC_8", 100.0);
        let slo = catalog.get(idx).unwrap();
        let out = ac.try_admit(&mut cluster, &mut plb, slo, &req, SimTime::ZERO);
        assert!(matches!(out, AdmissionOutcome::Admitted(_)));
        assert_eq!(ac.remaining_cores(&cluster), before - 32.0);
    }

    #[test]
    fn exhausted_ring_redirects() {
        let (mut cluster, mut plb, mut ac, catalog) = setup(2, 8.0);
        // Ring has 16 logical cores. Admit two GP_4 (8 cores)…
        for _ in 0..2 {
            let (idx, req) = request(&catalog, "GP_4", 1.0);
            let slo = catalog.get(idx).unwrap();
            assert!(matches!(
                ac.try_admit(&mut cluster, &mut plb, slo, &req, SimTime::ZERO),
                AdmissionOutcome::Admitted(_)
            ));
        }
        // …then a GP_16 cannot fit (16 > 8 remaining): redirect.
        let (idx, req) = request(&catalog, "GP_16", 1.0);
        let slo = catalog.get(idx).unwrap();
        let out = ac.try_admit(&mut cluster, &mut plb, slo, &req, SimTime::from_secs(60));
        match out {
            AdmissionOutcome::Redirected(ev) => {
                assert_eq!(ev.requested_cores, 16.0);
                assert_eq!(ev.remaining_cores, 8.0);
                assert_eq!(ev.slo_name, "GP_16");
            }
            other => panic!("expected redirect, got {other:?}"),
        }
        assert_eq!(ac.redirects().len(), 1);
        assert_eq!(ac.redirects_until(SimTime::from_secs(59)), 0);
        assert_eq!(ac.redirects_until(SimTime::from_secs(60)), 1);
    }

    #[test]
    fn placement_failure_redirects_even_with_cores_free() {
        // Plenty of aggregate cores but BC_2 needs four *distinct* nodes;
        // a two-node ring cannot place it.
        let (mut cluster, mut plb, mut ac, catalog) = setup(2, 96.0);
        let (idx, req) = request(&catalog, "BC_2", 10.0);
        let slo = catalog.get(idx).unwrap();
        let out = ac.try_admit(&mut cluster, &mut plb, slo, &req, SimTime::ZERO);
        assert!(matches!(out, AdmissionOutcome::Redirected(_)));
        assert_eq!(cluster.service_count(), 0);
    }

    #[test]
    fn big_bc_database_is_the_paper_example() {
        // §5.3.1: a 24-core Premium/BC database, replicated x4, needs 96
        // cores; a ring with fewer remaining cores redirects it while a
        // denser ring admits it.
        let (mut tight, mut plb_a, mut ac_a, catalog) = setup(14, 6.0); // 84 cores
        let (idx, req) = request(&catalog, "BC_24", 500.0);
        let slo = catalog.get(idx).unwrap();
        assert!(matches!(
            ac_a.try_admit(&mut tight, &mut plb_a, slo, &req, SimTime::ZERO),
            AdmissionOutcome::Redirected(_)
        ));
        let (mut dense, mut plb_b, mut ac_b, _) = setup(14, 25.0); // 350 cores
        assert!(matches!(
            ac_b.try_admit(&mut dense, &mut plb_b, slo, &req, SimTime::ZERO),
            AdmissionOutcome::Admitted(_)
        ));
    }
}
