//! The control plane: SLO catalog, pricing, admission and redirects.
//!
//! §3.3.3's Population Manager "calls public CRUD APIs"; those APIs land
//! here. The control plane owns the catalog of purchasable SLOs (edition,
//! cores, memory, disk caps and prices — §2's editions and §5.1's
//! SLO-determined pricing), admits creations into the tenant ring while
//! reserved cores remain ("The number of reserved cores in the cluster is
//! determined by the modeled SLO sizes", §5.2), and issues **creation
//! redirects** when the ring cannot satisfy a request ("Instead of being
//! placed in this tenant ring, the database will be redirected to another
//! tenant ring that has enough capacity", §5.3.1) — the signal Figure 10
//! plots.

pub mod admission;
pub mod ring;
pub mod slo;

pub use admission::{AdmissionController, AdmissionOutcome, CreateRequest, RedirectEvent};
pub use ring::{
    PlacementPolicy, RegionAdmission, RegionOutcome, RegionRedirect, RingAdmissionStats,
    RingLedger, RingSet,
};
pub use slo::{decode_tag, encode_tag, Slo, SloCatalog};
