//! Region-level admission: [`AdmissionController`] generalised from one
//! cluster to a [`RingSet`].
//!
//! §5.3.1 describes the region mechanism the single-ring admission
//! controller only hints at: "Instead of being placed in this tenant
//! ring, the database will be redirected to another tenant ring that has
//! enough capacity." A region hosts several fabric rings with
//! heterogeneous node counts and density targets; one region-level
//! admission layer picks a home ring per create under a configurable
//! placement policy and falls through sibling rings on rejection —
//! every fall-through is a **cross-ring redirect**, the paper's
//! creation-redirect KPI promoted to a region KPI with per-ring
//! attribution. A create no ring can take leaves the region entirely
//! (the paper's "redirected to another tenant ring" when *this* region
//! has none).
//!
//! The ledger model is deliberately the same arithmetic the single-ring
//! [`AdmissionController`] applies against a live cluster: a ring admits
//! while `requested_cores <= logical_cores - reserved_cores`. The region
//! layer runs *ahead* of the per-ring simulations (it decides routing;
//! the rings then replay the decided schedule), so it accounts logical
//! cores in a ledger instead of querying a `Cluster`.
//!
//! [`AdmissionController`]: crate::admission::AdmissionController

use toto_simcore::time::SimTime;

/// How the region picks a home ring for a create.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Tightest ring that the request still fits: ranks rings by
    /// remaining cores ascending. Packs rings to their density targets
    /// one at a time (maximum redirects, maximum consolidation).
    BestFit,
    /// Emptiest ring first: ranks rings by remaining cores descending.
    /// Minimises redirects by levelling absolute headroom.
    Spread,
    /// Lowest fill *relative to each ring's density target* first:
    /// ranks by `reserved / logical` ascending, so heterogeneous rings
    /// converge to their individual targets in lock-step.
    DensityTarget,
}

impl PlacementPolicy {
    /// Stable policy name (used in specs and run records).
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::BestFit => "best-fit",
            PlacementPolicy::Spread => "spread",
            PlacementPolicy::DensityTarget => "density-target",
        }
    }

    /// Parse a policy name as written in a region spec.
    pub fn from_name(name: &str) -> Option<PlacementPolicy> {
        match name {
            "best-fit" => Some(PlacementPolicy::BestFit),
            "spread" => Some(PlacementPolicy::Spread),
            "density-target" => Some(PlacementPolicy::DensityTarget),
            _ => None,
        }
    }
}

/// Capacity ledger for one fabric ring in the region.
#[derive(Clone, Debug)]
pub struct RingLedger {
    /// Ring name (unique within the region).
    pub name: String,
    /// Density-scaled logical core capacity of the ring.
    pub logical_cores: f64,
    /// Cores currently reserved (bootstrap population + admitted creates
    /// − drops). Maintained by [`RegionAdmission`].
    pub reserved_cores: f64,
    /// The ring's density ladder value (logical = base × density/100).
    pub density_target: u32,
    /// Whether the ring currently accepts creates. `false` before a
    /// build-out joins and after a decommission drains.
    pub admitting: bool,
}

impl RingLedger {
    /// Cores still admittable.
    pub fn remaining_cores(&self) -> f64 {
        self.logical_cores - self.reserved_cores
    }

    /// Fill fraction relative to the ring's own density target.
    pub fn fill(&self) -> f64 {
        if self.logical_cores <= 0.0 {
            1.0
        } else {
            self.reserved_cores / self.logical_cores
        }
    }
}

/// The set of rings a region routes over: the cluster-state analogue at
/// region scope (mutated only through [`RegionAdmission`]).
#[derive(Clone, Debug, Default)]
pub struct RingSet {
    rings: Vec<RingLedger>,
}

impl RingSet {
    /// An empty region (rings join via [`RegionAdmission::ring_up`]).
    pub fn new() -> Self {
        RingSet { rings: Vec::new() }
    }

    /// All rings, in join order (join order is spec order, so ring
    /// indices are stable across runs).
    pub fn rings(&self) -> &[RingLedger] {
        &self.rings
    }

    /// Ledger for ring `i`, if it exists.
    pub fn get(&self, i: usize) -> Option<&RingLedger> {
        self.rings.get(i)
    }

    /// Index of the ring with this name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.rings.iter().position(|r| r.name == name)
    }

    /// Ledger invariants: reservations stay within `[0, logical]` for
    /// every ring (a tiny epsilon absorbs f64 accumulation error).
    pub fn invariants_hold(&self) -> bool {
        const EPS: f64 = 1e-6;
        self.rings
            .iter()
            .all(|r| r.reserved_cores >= -EPS && r.reserved_cores <= r.logical_cores + EPS)
    }
}

/// One region-level redirect: a create that could not stay on its
/// first-choice ring. `to == None` means it left the region entirely.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionRedirect {
    /// When the redirect happened.
    pub time: SimTime,
    /// Ring that rejected the create (per-ring attribution).
    pub from: usize,
    /// Ring that finally admitted it, or `None` for out-of-region.
    pub to: Option<usize>,
    /// Cores the create would have reserved.
    pub cores: f64,
}

/// Where a region-level admission attempt ended up.
#[derive(Clone, Debug, PartialEq)]
pub enum RegionOutcome {
    /// Admitted on the policy's first-choice ring.
    Admitted { ring: usize },
    /// Admitted after one or more rings rejected it (cross-ring
    /// redirect); `from` is the first-choice ring that rejected.
    Redirected { ring: usize, from: usize },
    /// No admitting ring could take it; it leaves the region.
    OutOfRegion,
}

impl RegionOutcome {
    /// The ring that admitted the create, if any.
    pub fn ring(&self) -> Option<usize> {
        match self {
            RegionOutcome::Admitted { ring } | RegionOutcome::Redirected { ring, .. } => {
                Some(*ring)
            }
            RegionOutcome::OutOfRegion => None,
        }
    }
}

/// Per-ring admission counters (for the region run record).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RingAdmissionStats {
    /// Creates admitted with this ring as first choice.
    pub admitted_first_choice: u64,
    /// Creates this ring rejected (redirects attributed *from* it).
    pub redirects_out: u64,
    /// Creates this ring absorbed after a sibling rejected them.
    pub redirects_in: u64,
}

/// The region-level admission controller: placement policy + redirect
/// log + per-ring attribution over a [`RingSet`].
#[derive(Clone, Debug)]
pub struct RegionAdmission {
    policy: PlacementPolicy,
    redirects: Vec<RegionRedirect>,
    stats: Vec<RingAdmissionStats>,
    out_of_region: u64,
}

impl RegionAdmission {
    /// Fresh controller for a policy.
    pub fn new(policy: PlacementPolicy) -> Self {
        RegionAdmission {
            policy,
            redirects: Vec::new(),
            stats: Vec::new(),
            out_of_region: 0,
        }
    }

    /// The active placement policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// All cross-ring / out-of-region redirects so far, in time order.
    pub fn redirects(&self) -> &[RegionRedirect] {
        &self.redirects
    }

    /// Number of region redirects up to and including `t` (same
    /// binary-search contract as `AdmissionController::redirects_until`).
    pub fn redirects_until(&self, t: SimTime) -> usize {
        debug_assert!(
            self.redirects.windows(2).all(|w| w[0].time <= w[1].time),
            "region redirect log must be time-sorted"
        );
        self.redirects.partition_point(|r| r.time <= t)
    }

    /// Per-ring attribution counters (indexed like the ring set).
    pub fn stats(&self) -> &[RingAdmissionStats] {
        &self.stats
    }

    /// Creates that no ring could take.
    pub fn out_of_region(&self) -> u64 {
        self.out_of_region
    }

    /// Ring lifecycle: a ring joins region admission (build-out).
    /// Returns its (stable, join-order) index.
    pub fn ring_up(&mut self, rings: &mut RingSet, ledger: RingLedger, nodes: u64) -> usize {
        toto_trace::emit(toto_trace::EventKind::RegionRingUp, || {
            toto_trace::EventBody::RegionRingUp {
                ring: ledger.name.clone(),
                nodes,
                logical_cores: ledger.logical_cores,
            }
        });
        rings.rings.push(ledger);
        self.stats.push(RingAdmissionStats::default());
        debug_assert!(rings.invariants_hold(), "ring_up broke ledger invariants");
        rings.rings.len() - 1
    }

    /// Policy preference order over admitting rings (feasibility is NOT
    /// considered — the first-choice ring is the policy's pick assuming
    /// infinite capacity, so a full first choice produces a redirect,
    /// exactly like the paper's single-ring controller).
    fn preference_order(&self, rings: &RingSet) -> Vec<usize> {
        let mut order: Vec<usize> = (0..rings.rings.len())
            .filter(|&i| rings.rings[i].admitting)
            .collect();
        // Stable sort keeps spec order on ties, so routing is
        // deterministic for identical ledgers.
        match self.policy {
            PlacementPolicy::BestFit => order.sort_by(|&a, &b| {
                let (ra, rb) = (
                    rings.rings[a].remaining_cores(),
                    rings.rings[b].remaining_cores(),
                );
                ra.total_cmp(&rb)
            }),
            PlacementPolicy::Spread => order.sort_by(|&a, &b| {
                let (ra, rb) = (
                    rings.rings[a].remaining_cores(),
                    rings.rings[b].remaining_cores(),
                );
                rb.total_cmp(&ra)
            }),
            PlacementPolicy::DensityTarget => order.sort_by(|&a, &b| {
                let (fa, fb) = (rings.rings[a].fill(), rings.rings[b].fill());
                fa.total_cmp(&fb)
            }),
        }
        order
    }

    /// Try to admit a create of `requested_cores` somewhere in the
    /// region. Walks the policy's preference order; every rejection
    /// before the admitting ring is recorded as a redirect attributed to
    /// the rejecting ring.
    pub fn try_admit(
        &mut self,
        rings: &mut RingSet,
        db: &str,
        requested_cores: f64,
        now: SimTime,
    ) -> RegionOutcome {
        let order = self.preference_order(rings);
        let Some(&first) = order.first() else {
            self.out_of_region += 1;
            return RegionOutcome::OutOfRegion;
        };
        let admitted = order
            .iter()
            .copied()
            .find(|&i| requested_cores <= rings.rings[i].remaining_cores());
        match admitted {
            Some(ring) => {
                // Attribute one redirect per ring the create fell
                // through before landing.
                for &from in order.iter().take_while(|&&i| i != ring) {
                    self.record_redirect(rings, from, Some(ring), requested_cores, now);
                }
                rings.rings[ring].reserved_cores += requested_cores;
                debug_assert!(
                    rings.invariants_hold(),
                    "admission overfilled ring {ring} past its logical capacity"
                );
                toto_trace::emit(toto_trace::EventKind::RegionRingAdmit, || {
                    toto_trace::EventBody::RegionRingAdmit {
                        ring: rings.rings[ring].name.clone(),
                        db: db.to_string(),
                        cores: requested_cores,
                    }
                });
                if ring == first {
                    self.stats[ring].admitted_first_choice += 1;
                    RegionOutcome::Admitted { ring }
                } else {
                    self.stats[ring].redirects_in += 1;
                    RegionOutcome::Redirected { ring, from: first }
                }
            }
            None => {
                // Out-of-region: attributed to the first-choice ring
                // only (the ring the paper's controller would have
                // redirected from).
                self.record_redirect(rings, first, None, requested_cores, now);
                self.out_of_region += 1;
                RegionOutcome::OutOfRegion
            }
        }
    }

    /// Re-admit one drained tenant on a sibling ring. A drain move is by
    /// definition a cross-ring redirect, so it is always attributed as a
    /// redirect *from* the drained ring — even though that ring no
    /// longer participates in the preference order — and as a
    /// redirect-in on whichever sibling absorbs it.
    pub fn drain_admit(
        &mut self,
        rings: &mut RingSet,
        from: usize,
        db: &str,
        cores: f64,
        now: SimTime,
    ) -> RegionOutcome {
        let order = self.preference_order(rings);
        let admitted = order
            .iter()
            .copied()
            .find(|&i| i != from && cores <= rings.rings[i].remaining_cores());
        match admitted {
            Some(ring) => {
                self.record_redirect(rings, from, Some(ring), cores, now);
                rings.rings[ring].reserved_cores += cores;
                debug_assert!(
                    rings.invariants_hold(),
                    "drain re-admission overfilled ring {ring}"
                );
                toto_trace::emit(toto_trace::EventKind::RegionRingAdmit, || {
                    toto_trace::EventBody::RegionRingAdmit {
                        ring: rings.rings[ring].name.clone(),
                        db: db.to_string(),
                        cores,
                    }
                });
                self.stats[ring].redirects_in += 1;
                RegionOutcome::Redirected { ring, from }
            }
            None => {
                self.record_redirect(rings, from, None, cores, now);
                self.out_of_region += 1;
                RegionOutcome::OutOfRegion
            }
        }
    }

    /// Release reserved cores on a ring when a tenant drops.
    ///
    /// Deliberately untraced: a release is ledger accounting driven by a
    /// tenant drop, and the drop itself is already visible as a DbDrop
    /// event at the same simulated time — a second event per drop would
    /// only bloat traces without adding diff signal.
    // toto-lint: allow(T001)
    pub fn release(&mut self, rings: &mut RingSet, ring: usize, cores: f64) {
        if let Some(ledger) = rings.rings.get_mut(ring) {
            ledger.reserved_cores = (ledger.reserved_cores - cores).max(0.0);
        }
        debug_assert!(rings.invariants_hold(), "release broke ledger invariants");
    }

    /// Ring lifecycle: decommission. The ring stops admitting and its
    /// reservation ledger is emptied; the caller re-admits the drained
    /// tenants on sibling rings via [`drain_admit`](Self::drain_admit)
    /// (each re-admission records its own cross-ring redirect). Returns
    /// the cores that were reserved.
    pub fn drain_ring(&mut self, rings: &mut RingSet, ring: usize, tenants: u64) -> f64 {
        let Some(ledger) = rings.rings.get_mut(ring) else {
            return 0.0;
        };
        let drained = ledger.reserved_cores;
        ledger.admitting = false;
        ledger.reserved_cores = 0.0;
        toto_trace::emit(toto_trace::EventKind::RegionRingDrain, || {
            toto_trace::EventBody::RegionRingDrain {
                ring: ledger.name.clone(),
                tenants,
                cores: drained,
            }
        });
        debug_assert!(
            rings.invariants_hold(),
            "drain_ring broke ledger invariants"
        );
        drained
    }

    fn record_redirect(
        &mut self,
        rings: &RingSet,
        from: usize,
        to: Option<usize>,
        cores: f64,
        now: SimTime,
    ) {
        self.stats[from].redirects_out += 1;
        self.redirects.push(RegionRedirect {
            time: now,
            from,
            to,
            cores,
        });
        toto_trace::emit(toto_trace::EventKind::RegionRingRedirect, || {
            let name = |i: usize| {
                rings
                    .rings
                    .get(i)
                    .map(|r| r.name.clone())
                    .unwrap_or_default()
            };
            toto_trace::EventBody::RegionRingRedirect {
                from: name(from),
                to: to.map(name).unwrap_or_else(|| "out-of-region".to_string()),
                cores,
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(name: &str, logical: f64, reserved: f64, target: u32) -> RingLedger {
        RingLedger {
            name: name.to_string(),
            logical_cores: logical,
            reserved_cores: reserved,
            density_target: target,
            admitting: true,
        }
    }

    fn region(policy: PlacementPolicy, ledgers: Vec<RingLedger>) -> (RingSet, RegionAdmission) {
        let mut rings = RingSet::new();
        let mut adm = RegionAdmission::new(policy);
        for l in ledgers {
            adm.ring_up(&mut rings, l, 14);
        }
        (rings, adm)
    }

    #[test]
    fn best_fit_packs_the_tightest_ring_first() {
        let (mut rings, mut adm) = region(
            PlacementPolicy::BestFit,
            vec![
                ledger("a", 100.0, 90.0, 100), // 10 remaining
                ledger("b", 100.0, 50.0, 100), // 50 remaining
            ],
        );
        let out = adm.try_admit(&mut rings, "db-1", 8.0, SimTime::ZERO);
        assert_eq!(out, RegionOutcome::Admitted { ring: 0 });
        assert_eq!(rings.get(0).unwrap().reserved_cores, 98.0);
    }

    #[test]
    fn spread_levels_headroom() {
        let (mut rings, mut adm) = region(
            PlacementPolicy::Spread,
            vec![ledger("a", 100.0, 90.0, 100), ledger("b", 100.0, 50.0, 100)],
        );
        let out = adm.try_admit(&mut rings, "db-1", 8.0, SimTime::ZERO);
        assert_eq!(out, RegionOutcome::Admitted { ring: 1 });
    }

    #[test]
    fn density_target_ranks_by_relative_fill() {
        // Ring a: 60/120 = 0.5 fill. Ring b: 55/100 = 0.55 fill. A
        // spread policy would pick b (45 free > 60? no — a has 60 free);
        // use ledgers where absolute and relative orders differ.
        let (mut rings, mut adm) = region(
            PlacementPolicy::DensityTarget,
            vec![
                ledger("a", 120.0, 60.0, 120), // fill 0.50, 60 free
                ledger("b", 100.0, 45.0, 100), // fill 0.45, 55 free
            ],
        );
        let out = adm.try_admit(&mut rings, "db-1", 8.0, SimTime::ZERO);
        assert_eq!(out, RegionOutcome::Admitted { ring: 1 });
    }

    #[test]
    fn overflow_redirects_to_a_sibling_with_attribution() {
        let (mut rings, mut adm) = region(
            PlacementPolicy::BestFit,
            vec![
                ledger("tight", 100.0, 96.0, 100), // 4 remaining
                ledger("roomy", 100.0, 10.0, 100),
            ],
        );
        let out = adm.try_admit(&mut rings, "db-1", 16.0, SimTime::from_secs(60));
        assert_eq!(out, RegionOutcome::Redirected { ring: 1, from: 0 });
        assert_eq!(adm.redirects().len(), 1);
        assert_eq!(adm.redirects()[0].from, 0);
        assert_eq!(adm.redirects()[0].to, Some(1));
        assert_eq!(adm.stats()[0].redirects_out, 1);
        assert_eq!(adm.stats()[1].redirects_in, 1);
        // The tight ring's ledger is untouched; the roomy ring absorbed it.
        assert_eq!(rings.get(0).unwrap().reserved_cores, 96.0);
        assert_eq!(rings.get(1).unwrap().reserved_cores, 26.0);
    }

    #[test]
    fn exhausted_region_redirects_out() {
        let (mut rings, mut adm) = region(
            PlacementPolicy::Spread,
            vec![ledger("a", 10.0, 8.0, 100), ledger("b", 10.0, 9.0, 100)],
        );
        let out = adm.try_admit(&mut rings, "db-1", 16.0, SimTime::from_secs(5));
        assert_eq!(out, RegionOutcome::OutOfRegion);
        assert_eq!(adm.out_of_region(), 1);
        assert_eq!(adm.redirects().len(), 1);
        assert_eq!(adm.redirects()[0].to, None);
        assert_eq!(adm.redirects_until(SimTime::from_secs(4)), 0);
        assert_eq!(adm.redirects_until(SimTime::from_secs(5)), 1);
    }

    #[test]
    fn drained_ring_stops_admitting() {
        let (mut rings, mut adm) = region(
            PlacementPolicy::Spread,
            vec![
                ledger("old", 200.0, 40.0, 100),
                ledger("new", 100.0, 0.0, 100),
            ],
        );
        let drained = adm.drain_ring(&mut rings, 0, 7);
        assert_eq!(drained, 40.0);
        assert!(!rings.get(0).unwrap().admitting);
        // All subsequent creates land on the surviving ring even though
        // the drained ring has more (nominal) headroom.
        let out = adm.try_admit(&mut rings, "db-1", 4.0, SimTime::ZERO);
        assert_eq!(out, RegionOutcome::Admitted { ring: 1 });
    }

    #[test]
    fn drain_admit_attributes_the_move_to_the_drained_ring() {
        let (mut rings, mut adm) = region(
            PlacementPolicy::Spread,
            vec![
                ledger("old", 200.0, 40.0, 100),
                ledger("new", 100.0, 0.0, 100),
            ],
        );
        adm.drain_ring(&mut rings, 0, 1);
        let out = adm.drain_admit(&mut rings, 0, "old:db-1", 8.0, SimTime::from_secs(9));
        assert_eq!(out, RegionOutcome::Redirected { ring: 1, from: 0 });
        assert_eq!(adm.stats()[0].redirects_out, 1);
        assert_eq!(adm.stats()[1].redirects_in, 1);
        assert_eq!(rings.get(1).unwrap().reserved_cores, 8.0);
        // A tenant no sibling can hold leaves the region, still
        // attributed to the drained ring.
        let out = adm.drain_admit(&mut rings, 0, "old:db-2", 500.0, SimTime::from_secs(9));
        assert_eq!(out, RegionOutcome::OutOfRegion);
        assert_eq!(adm.stats()[0].redirects_out, 2);
        assert_eq!(adm.out_of_region(), 1);
    }

    #[test]
    fn release_returns_cores() {
        let (mut rings, mut adm) =
            region(PlacementPolicy::Spread, vec![ledger("a", 100.0, 20.0, 100)]);
        adm.release(&mut rings, 0, 8.0);
        assert_eq!(rings.get(0).unwrap().reserved_cores, 12.0);
        assert!(rings.invariants_hold());
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [
            PlacementPolicy::BestFit,
            PlacementPolicy::Spread,
            PlacementPolicy::DensityTarget,
        ] {
            assert_eq!(PlacementPolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(PlacementPolicy::from_name("round-robin"), None);
    }
}
