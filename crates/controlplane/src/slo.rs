//! Service Level Objectives and pricing.
//!
//! §2: SLOs configure "the amount of compute units (cores) or the amount
//! of DRAM memory available to the SQL process", differ per edition, and
//! local-store editions come "at higher cost (and revenue) due to local
//! SSD and replication". §5.1 models revenue as SLO price × lifetime plus
//! storage price × size × lifetime. The dollar figures below are modeled
//! constants in the spirit of the public Azure price list the paper cites
//! ([9]); only their *relative* magnitudes matter for the study.

use toto_spec::EditionKind;

/// One purchasable service level objective.
#[derive(Clone, Debug, PartialEq)]
pub struct Slo {
    /// Catalog name, e.g. `GP_4` or `BC_8`.
    pub name: String,
    /// Edition group.
    pub edition: EditionKind,
    /// Reserved vcores. This is the CPU reservation the PLB accounts.
    pub vcores: u32,
    /// Memory available to the SQL process, GB.
    pub memory_gb: f64,
    /// Maximum data size, GB (local-store SLOs have high caps that can
    /// "consume a significant fraction of a single machine", §2).
    pub max_data_gb: f64,
    /// Modeled compute price, $/hour for the whole instance.
    pub compute_price_per_hour: f64,
    /// Modeled storage price, $/GB/hour.
    pub storage_price_per_gb_hour: f64,
}

impl Slo {
    /// Replicas the orchestrator must place for this SLO.
    pub fn replica_count(&self) -> u32 {
        self.edition.replica_count()
    }

    /// Total cores reserved across all replicas.
    pub fn total_reserved_cores(&self) -> f64 {
        (self.vcores * self.replica_count()) as f64
    }
}

/// The SLO catalog for one hardware generation.
#[derive(Clone, Debug, Default)]
pub struct SloCatalog {
    slos: Vec<Slo>,
}

impl SloCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The gen5 catalog used by the experiments. Compute prices follow
    /// the public per-core rates (GP ≈ $0.09/core/h, BC ≈ $0.24/core/h);
    /// storage at GP ≈ $0.115/GB/month and BC ≈ $0.25/GB/month, converted
    /// to hours (÷ 730).
    pub fn gen5() -> Self {
        let mut catalog = SloCatalog::new();
        let gp_core_hour = 0.09;
        let bc_core_hour = 0.24;
        let gp_gb_hour = 0.115 / 730.0;
        let bc_gb_hour = 0.25 / 730.0;
        for &cores in &[2u32, 4, 8, 16, 24] {
            catalog.register(Slo {
                name: format!("GP_{cores}"),
                edition: EditionKind::StandardGp,
                vcores: cores,
                memory_gb: cores as f64 * 5.1,
                max_data_gb: 4096.0,
                compute_price_per_hour: gp_core_hour * cores as f64,
                storage_price_per_gb_hour: gp_gb_hour,
            });
        }
        for &cores in &[2u32, 4, 8, 16, 24] {
            catalog.register(Slo {
                name: format!("BC_{cores}"),
                edition: EditionKind::PremiumBc,
                vcores: cores,
                memory_gb: cores as f64 * 5.1,
                // BC max data: 1 TB on small SLOs, up to 4 TB on large ones
                // ("a high maximum allowable capacity which consumes a
                // significant fraction of a single machine", §2).
                max_data_gb: match cores {
                    2 | 4 => 1024.0,
                    8 => 2048.0,
                    _ => 4096.0,
                },
                compute_price_per_hour: bc_core_hour * cores as f64,
                storage_price_per_gb_hour: bc_gb_hour,
            });
        }
        catalog
    }

    /// Add an SLO; returns its index. Panics on duplicate names.
    pub fn register(&mut self, slo: Slo) -> usize {
        assert!(
            self.slos.iter().all(|s| s.name != slo.name),
            "duplicate SLO '{}'",
            slo.name
        );
        self.slos.push(slo);
        self.slos.len() - 1
    }

    /// All SLOs.
    pub fn slos(&self) -> &[Slo] {
        &self.slos
    }

    /// Number of SLOs.
    pub fn len(&self) -> usize {
        self.slos.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.slos.is_empty()
    }

    /// Lookup by index.
    pub fn get(&self, index: usize) -> Option<&Slo> {
        self.slos.get(index)
    }

    /// Lookup by name.
    pub fn by_name(&self, name: &str) -> Option<(usize, &Slo)> {
        self.slos.iter().enumerate().find(|(_, s)| s.name == name)
    }

    /// SLOs of one edition, `(index, slo)` pairs.
    pub fn of_edition(&self, edition: EditionKind) -> impl Iterator<Item = (usize, &Slo)> {
        self.slos
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.edition == edition)
    }
}

/// Encode `(edition, slo_index)` into the opaque fabric service tag.
pub fn encode_tag(edition: EditionKind, slo_index: usize) -> u64 {
    ((edition.index() as u64) << 32) | slo_index as u64
}

/// Decode a fabric service tag back into `(edition, slo_index)`.
pub fn decode_tag(tag: u64) -> (EditionKind, usize) {
    let edition = if (tag >> 32) & 1 == 0 {
        EditionKind::StandardGp
    } else {
        EditionKind::PremiumBc
    };
    (edition, (tag & 0xFFFF_FFFF) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen5_catalog_has_both_editions() {
        let c = SloCatalog::gen5();
        assert_eq!(c.len(), 10);
        assert_eq!(c.of_edition(EditionKind::StandardGp).count(), 5);
        assert_eq!(c.of_edition(EditionKind::PremiumBc).count(), 5);
    }

    #[test]
    fn bc_is_pricier_and_replicated() {
        let c = SloCatalog::gen5();
        let (_, gp4) = c.by_name("GP_4").unwrap();
        let (_, bc4) = c.by_name("BC_4").unwrap();
        assert!(bc4.compute_price_per_hour > 2.0 * gp4.compute_price_per_hour);
        assert!(bc4.storage_price_per_gb_hour > gp4.storage_price_per_gb_hour);
        assert_eq!(gp4.total_reserved_cores(), 4.0);
        // Replicated x4: a 24-core BC database reserves 96 cores total,
        // the paper's §5.3.1 example.
        let (_, bc24) = c.by_name("BC_24").unwrap();
        assert_eq!(bc24.total_reserved_cores(), 96.0);
    }

    #[test]
    fn tag_roundtrip() {
        let c = SloCatalog::gen5();
        for (i, slo) in c.slos().iter().enumerate() {
            let tag = encode_tag(slo.edition, i);
            assert_eq!(decode_tag(tag), (slo.edition, i));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate SLO")]
    fn duplicate_slo_panics() {
        let mut c = SloCatalog::gen5();
        let dup = c.get(0).unwrap().clone();
        c.register(dup);
    }

    #[test]
    fn lookup_by_name_and_index_agree() {
        let c = SloCatalog::gen5();
        let (i, slo) = c.by_name("BC_8").unwrap();
        assert_eq!(c.get(i).unwrap(), slo);
        assert!(c.by_name("HS_2").is_none());
        assert!(c.get(999).is_none());
    }
}
