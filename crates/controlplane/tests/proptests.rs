//! Property-based tests for admission control.

use proptest::prelude::*;
use toto_controlplane::admission::{AdmissionController, AdmissionOutcome, CreateRequest};
use toto_controlplane::slo::{decode_tag, encode_tag, SloCatalog};
use toto_fabric::cluster::{Cluster, ClusterConfig};
use toto_fabric::metrics::{MetricDef, MetricRegistry};
use toto_fabric::plb::{Plb, PlbConfig};
use toto_simcore::time::SimTime;
use toto_spec::EditionKind;

fn ring(nodes: u32, cpu: f64) -> (Cluster, Plb, AdmissionController) {
    let mut metrics = MetricRegistry::new();
    let c = metrics.register(MetricDef {
        name: "Cpu".into(),
        node_capacity: cpu,
        balancing_weight: 1.0,
    });
    let m = metrics.register(MetricDef {
        name: "Memory".into(),
        node_capacity: 460.0,
        balancing_weight: 0.3,
    });
    let d = metrics.register(MetricDef {
        name: "Disk".into(),
        node_capacity: 7000.0,
        balancing_weight: 1.0,
    });
    (
        Cluster::new(ClusterConfig::uniform(nodes, metrics)),
        Plb::new(PlbConfig::default(), 5),
        AdmissionController::new(c, m, d),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reserved_cores_never_exceed_capacity(
        slo_picks in prop::collection::vec(0usize..10, 1..80),
        nodes in 2u32..10,
    ) {
        let catalog = SloCatalog::gen5();
        let (mut cluster, mut plb, mut ac) = ring(nodes, 48.0);
        let capacity = nodes as f64 * 48.0;
        for (i, pick) in slo_picks.iter().enumerate() {
            let slo = catalog.get(*pick).expect("ten SLOs");
            let req = CreateRequest {
                name: format!("db{i}"),
                slo_index: *pick,
                initial_disk_gb: 2.0,
                initial_memory_gb: 0.5,
            };
            let outcome = ac.try_admit(&mut cluster, &mut plb, slo, &req, SimTime::ZERO);
            // Redirect events always carry consistent accounting.
            if let AdmissionOutcome::Redirected(ev) = &outcome {
                prop_assert_eq!(ev.edition, slo.edition);
                prop_assert_eq!(ev.requested_cores, slo.total_reserved_cores());
            }
            cluster.check_invariants();
        }
        let reserved: f64 = cluster.total_load(ac.cpu_metric());
        prop_assert!(reserved <= capacity + 1e-9, "{reserved} > {capacity}");
        prop_assert!((ac.remaining_cores(&cluster) - (capacity - reserved)).abs() < 1e-9);
    }

    #[test]
    fn tags_round_trip_for_every_slo(pick in 0usize..10) {
        let catalog = SloCatalog::gen5();
        let slo = catalog.get(pick).expect("ten SLOs");
        let tag = encode_tag(slo.edition, pick);
        prop_assert_eq!(decode_tag(tag), (slo.edition, pick));
    }

    #[test]
    fn admitted_services_carry_their_edition(pick in 0usize..10) {
        let catalog = SloCatalog::gen5();
        let (mut cluster, mut plb, mut ac) = ring(8, 96.0);
        let slo = catalog.get(pick).expect("ten SLOs");
        let req = CreateRequest {
            name: "probe".into(),
            slo_index: pick,
            initial_disk_gb: 1.0,
            initial_memory_gb: 0.5,
        };
        if let AdmissionOutcome::Admitted(id) =
            ac.try_admit(&mut cluster, &mut plb, slo, &req, SimTime::ZERO)
        {
            let svc = cluster.service(id).expect("admitted");
            let (edition, idx) = decode_tag(svc.tag);
            prop_assert_eq!(edition, slo.edition);
            prop_assert_eq!(idx, pick);
            let expected_replicas = match edition {
                EditionKind::StandardGp => 1,
                EditionKind::PremiumBc => 4,
            };
            prop_assert_eq!(svc.replicas.len(), expected_replicas);
        }
    }
}
