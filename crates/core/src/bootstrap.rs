//! Bootstrapping the initial population (§5.2, Tables 2–3).
//!
//! "At the beginning of each experiment, we bootstrapped the cluster to
//! contain an initial population of databases … a representative mix of
//! Premium/BC databases vs Standard/GP databases, a representative mix of
//! SLOs within each service tier, and a representative mix of initial
//! disk usage loads." Growth is frozen during bootstrap and the PLB is
//! given time to place and balance before the experiment begins.

use toto_controlplane::slo::{encode_tag, SloCatalog};
use toto_fabric::cluster::{Cluster, ServiceSpec};
use toto_fabric::ids::{MetricId, ServiceId};
use toto_fabric::plb::Plb;
use toto_simcore::rng::DetRng;
use toto_simcore::time::SimTime;
use toto_spec::{EditionKind, ScenarioSpec};

/// Per-edition bootstrap SLO mixes, tuned so 187 GP + 33 BC databases
/// reserve close to Table 3's core budget (leaving ~65 free at 100 %).
fn bootstrap_mix(edition: EditionKind) -> &'static [(&'static str, f64)] {
    match edition {
        EditionKind::StandardGp => &[
            ("GP_2", 55.0),
            ("GP_4", 27.0),
            ("GP_8", 12.0),
            ("GP_16", 5.0),
            ("GP_24", 1.0),
        ],
        EditionKind::PremiumBc => &[
            ("BC_2", 52.0),
            ("BC_4", 31.0),
            ("BC_8", 14.0),
            ("BC_16", 3.0),
        ],
    }
}

/// Why bootstrap could not build the population.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BootstrapError {
    /// The per-edition bootstrap mix references an SLO name that is not
    /// in the catalog the caller supplied.
    UnknownSlo {
        /// The unresolved SLO name.
        name: String,
        /// The edition whose mix referenced it.
        edition: EditionKind,
    },
}

impl std::fmt::Display for BootstrapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootstrapError::UnknownSlo { name, edition } => write!(
                f,
                "bootstrap mix for {edition:?} references unknown SLO {name:?}"
            ),
        }
    }
}

impl std::error::Error for BootstrapError {}

/// One drafted initial-population database, fully resolved: the name,
/// SLO and initial disk it will be created with, in placement order.
///
/// The draft plan is a pure function of `(population_seed, catalog,
/// scenario shape)` — no PLB, no cluster — which is what lets the region
/// control plane seed its per-ring ledgers (and know every bootstrap
/// tenant's name and footprint for a decommission drain) without running
/// the ring simulations first.
#[derive(Clone, Debug)]
pub struct BootstrapDraft {
    /// Service name bootstrap will create (`boot-{slo}-{index}`).
    pub name: String,
    /// Edition of the drafted database.
    pub edition: EditionKind,
    /// Catalog index of its SLO.
    pub slo_index: usize,
    /// Reserved vcores per replica.
    pub vcores: u32,
    /// Replica count of its SLO.
    pub replica_count: u32,
    /// Initial per-replica disk, GB (tempDB for GP, scaled draw for BC).
    pub initial_disk_gb: f64,
}

impl BootstrapDraft {
    /// Cores this draft reserves across all replicas.
    pub fn reserved_cores(&self) -> f64 {
        f64::from(self.vcores) * f64::from(self.replica_count)
    }
}

/// What bootstrap produced.
#[derive(Clone, Debug)]
pub struct BootstrapReport {
    /// Created services with their edition and initial per-replica disk.
    pub services: Vec<(ServiceId, EditionKind, usize, f64)>,
    /// Cores reserved by the initial population.
    pub reserved_cores: f64,
    /// Free logical cores remaining at the configured density.
    pub free_cores: f64,
    /// Cluster disk usage as a fraction of logical disk capacity.
    pub disk_utilization: f64,
    /// Databases that could not be placed (should be zero; non-zero means
    /// the scenario over-fills the ring).
    pub placement_failures: u32,
}

/// Draft the Table-2 initial population without placing it: resolved
/// SLOs, scaled initial disk sizes, and final service names, in the
/// placement order [`bootstrap_population`] will use.
///
/// Depends only on `scenario.population_seed` and the scenario's shape
/// (never the PLB seed), so callers that need the population's footprint
/// ahead of placement — the region admission ledger — see exactly what a
/// later full bootstrap will create.
pub fn draft_population(
    catalog: &SloCatalog,
    scenario: &ScenarioSpec,
) -> Result<Vec<BootstrapDraft>, BootstrapError> {
    let mut rng = DetRng::seed_from_u64(scenario.population_seed ^ 0xB007_57A9);

    // Draw the population: SLOs and relative disk weights. The catalog is
    // resolved once per draft so the rest of the pipeline (capping, the
    // packing sort, placement) never needs a fallible lookup again.
    struct Draft {
        edition: EditionKind,
        slo_index: usize,
        slo_name: String,
        vcores: u32,
        max_data_gb: f64,
        replica_count: u32,
        disk_weight: f64,
    }
    let mut drafts = Vec::new();
    let draw = |edition: EditionKind, rng: &mut DetRng| -> Result<Draft, BootstrapError> {
        let mix = bootstrap_mix(edition);
        let total: f64 = mix.iter().map(|(_, w)| w).sum();
        let mut pick = rng.next_f64() * total;
        let mut name = mix[mix.len() - 1].0;
        for (n, w) in mix {
            if pick < *w {
                name = n;
                break;
            }
            pick -= w;
        }
        let (slo_index, slo) = catalog
            .by_name(name)
            .ok_or_else(|| BootstrapError::UnknownSlo {
                name: name.to_string(),
                edition,
            })?;
        // Heavy-tailed relative size: exp(N(0, 1.1)).
        let z = {
            let u1 = rng.next_f64().max(1e-12);
            let u2 = rng.next_f64();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        Ok(Draft {
            edition,
            slo_index,
            slo_name: slo.name.clone(),
            vcores: slo.vcores,
            max_data_gb: slo.max_data_gb,
            replica_count: slo.replica_count(),
            disk_weight: (1.1 * z).exp(),
        })
    };
    for _ in 0..scenario.bootstrap_premium_bc {
        drafts.push(draw(EditionKind::PremiumBc, &mut rng)?);
    }
    for _ in 0..scenario.bootstrap_standard_gp {
        drafts.push(draw(EditionKind::StandardGp, &mut rng)?);
    }

    // Scale BC disk weights to hit the target fill. GP databases carry
    // only a small tempDB.
    let target_disk = scenario.bootstrap_disk_fill * scenario.total_logical_disk_gb();
    let gp_tempdb = 2.0_f64;
    let gp_total: f64 = drafts
        .iter()
        .filter(|d| d.edition == EditionKind::StandardGp)
        .count() as f64
        * gp_tempdb;
    // Fit the BC scale iteratively: per-database caps (SLO max data and a
    // placement-headroom cap) make the capped total a nonlinear function
    // of the scale, so a fixed point search converges on the target fill.
    let bc_target = (target_disk - gp_total).max(0.0);
    let capped_size = |d: &Draft, scale: f64| -> f64 {
        (d.disk_weight * scale)
            .min(d.max_data_gb)
            .clamp(1.0, 1200.0)
    };
    let mut bc_scale = 400.0;
    for _ in 0..12 {
        let total: f64 = drafts
            .iter()
            .filter(|d| d.edition == EditionKind::PremiumBc)
            .map(|d| capped_size(d, bc_scale) * EditionKind::PremiumBc.replica_count() as f64)
            .sum();
        if total <= 0.0 {
            break;
        }
        bc_scale *= (bc_target / total).clamp(0.25, 4.0);
    }

    // Place big databases first (easier packing while the ring is empty),
    // sizing "big" by the dominant resource: a 24-core GP database is as
    // hard to pack as a terabyte-scale BC replica.
    let cpu_cap = scenario.cpu_capacity_per_node();
    let disk_cap = scenario.disk_capacity_per_node();
    drafts.sort_by(|a, b| {
        let frac = |d: &Draft| {
            let disk_frac = if d.edition.is_local_store() {
                capped_size(d, bc_scale) / disk_cap
            } else {
                0.0
            };
            (d.vcores as f64 / cpu_cap).max(disk_frac)
        };
        frac(b).total_cmp(&frac(a))
    });

    Ok(drafts
        .into_iter()
        .enumerate()
        .map(|(i, d)| BootstrapDraft {
            name: format!("boot-{}-{i}", d.slo_name.to_lowercase()),
            initial_disk_gb: match d.edition {
                EditionKind::StandardGp => gp_tempdb,
                EditionKind::PremiumBc => capped_size(&d, bc_scale),
            },
            edition: d.edition,
            slo_index: d.slo_index,
            vcores: d.vcores,
            replica_count: d.replica_count,
        })
        .collect())
}

/// Build the Table-2 initial population on an empty cluster.
///
/// BC initial sizes are drawn from a heavy-tailed distribution and then
/// scaled so the cluster starts at `scenario.bootstrap_disk_fill` of its
/// logical disk (Table 3's 77 %). Fails with [`BootstrapError::UnknownSlo`]
/// when the bootstrap mix names an SLO the catalog does not define.
pub fn bootstrap_population(
    cluster: &mut Cluster,
    plb: &mut Plb,
    catalog: &SloCatalog,
    scenario: &ScenarioSpec,
    cpu: MetricId,
    memory: MetricId,
    disk: MetricId,
) -> Result<BootstrapReport, BootstrapError> {
    assert_eq!(
        cluster.service_count(),
        0,
        "bootstrap requires an empty cluster"
    );
    let drafts = draft_population(catalog, scenario)?;

    let mut services = Vec::new();
    let mut placement_failures = 0u32;
    for (i, draft) in drafts.iter().enumerate() {
        let initial_disk = draft.initial_disk_gb;
        let mut load = cluster.metrics().zero_load();
        load[cpu] = draft.vcores as f64;
        load[memory] = 1.0;
        load[disk] = initial_disk;
        let spec = ServiceSpec {
            name: draft.name.clone(),
            tag: encode_tag(draft.edition, draft.slo_index),
            replica_count: draft.replica_count,
            default_load: load,
        };
        match plb.create_service(cluster, &spec, SimTime::ZERO) {
            Ok(id) => services.push((id, draft.edition, draft.slo_index, initial_disk)),
            Err(_) => {
                // A failure here means the scenario over-fills the ring; it
                // is surfaced both in the flight recorder and as the
                // `placement_failures` counter in the report/KPIs.
                toto_trace::emit(toto_trace::EventKind::BootstrapPlacementFailed, || {
                    toto_trace::EventBody::BootstrapPlacementFailed {
                        draft: i as u64,
                        vcores: u64::from(draft.vcores),
                        disk_gb: initial_disk,
                    }
                });
                placement_failures += 1;
            }
        }
    }

    // "This also allows the PLB to properly place and balance the
    // databases throughout the cluster before the experiment" (§5.2).
    for _ in 0..4 {
        if plb.balance(cluster, SimTime::ZERO).is_empty() {
            break;
        }
    }

    let reserved = cluster.total_load(cpu);
    let disk_used = cluster.total_load(disk);
    Ok(BootstrapReport {
        services,
        reserved_cores: reserved,
        free_cores: cluster.total_capacity(cpu) - reserved,
        disk_utilization: disk_used / cluster.total_capacity(disk),
        placement_failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use toto_fabric::cluster::ClusterConfig;
    use toto_fabric::metrics::{MetricDef, MetricRegistry};
    use toto_fabric::plb::PlbConfig;

    fn build(density: u32) -> (BootstrapReport, Cluster, MetricId, MetricId, ScenarioSpec) {
        let scenario = ScenarioSpec::gen5_stage_cluster(density);
        let mut metrics = MetricRegistry::new();
        let cpu = metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: scenario.cpu_capacity_per_node(),
            balancing_weight: 1.0,
        });
        let memory = metrics.register(MetricDef {
            name: "Memory".into(),
            node_capacity: scenario.memory_per_node_gb * 0.9,
            balancing_weight: 0.3,
        });
        let disk = metrics.register(MetricDef {
            name: "Disk".into(),
            node_capacity: scenario.disk_capacity_per_node(),
            balancing_weight: 1.0,
        });
        let mut cluster = Cluster::new(ClusterConfig {
            node_count: scenario.node_count,
            metrics,
            fault_domains: scenario.fault_domains,
        });
        let mut plb = Plb::new(PlbConfig::default(), scenario.plb_seed);
        let catalog = SloCatalog::gen5();
        let report = bootstrap_population(
            &mut cluster,
            &mut plb,
            &catalog,
            &scenario,
            cpu,
            memory,
            disk,
        )
        .expect("bootstrap succeeds on the gen5 catalog");
        (report, cluster, cpu, disk, scenario)
    }

    #[test]
    fn table2_population_is_created() {
        let (report, cluster, _, _, scenario) = build(100);
        assert_eq!(report.placement_failures, 0);
        assert_eq!(report.services.len(), 220);
        assert_eq!(cluster.service_count(), 220);
        let bc = report
            .services
            .iter()
            .filter(|(_, e, _, _)| *e == EditionKind::PremiumBc)
            .count();
        assert_eq!(bc as u32, scenario.bootstrap_premium_bc);
        cluster.check_invariants();
    }

    #[test]
    fn disk_fill_hits_target() {
        let (report, _, _, _, scenario) = build(100);
        assert!(
            (report.disk_utilization - scenario.bootstrap_disk_fill).abs() < 0.06,
            "disk utilization {} vs target {}",
            report.disk_utilization,
            scenario.bootstrap_disk_fill
        );
    }

    #[test]
    fn free_cores_grow_with_density() {
        let (r100, _, _, _, _) = build(100);
        let (r120, _, _, _, _) = build(120);
        // Same population (same seed), more logical cores at 120 %.
        assert!((r100.reserved_cores - r120.reserved_cores).abs() < 1e-9);
        assert!(r120.free_cores > r100.free_cores + 200.0);
        // Table 3's 100 % row leaves only a few dozen cores free.
        assert!(
            r100.free_cores > 0.0 && r100.free_cores < 200.0,
            "free cores at 100%: {}",
            r100.free_cores
        );
    }

    #[test]
    fn bc_initial_sizes_respect_slo_caps() {
        let (report, _, _, _, _) = build(110);
        let catalog = SloCatalog::gen5();
        for (_, edition, slo_index, disk_gb) in &report.services {
            if *edition == EditionKind::PremiumBc {
                let slo = catalog.get(*slo_index).unwrap();
                assert!(*disk_gb <= slo.max_data_gb + 1e-9);
                assert!(*disk_gb >= 1.0);
            } else {
                assert_eq!(*disk_gb, 2.0);
            }
        }
    }

    #[test]
    fn unknown_slo_is_a_typed_error() {
        let scenario = ScenarioSpec::gen5_stage_cluster(100);
        let mut metrics = MetricRegistry::new();
        let cpu = metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: scenario.cpu_capacity_per_node(),
            balancing_weight: 1.0,
        });
        let memory = metrics.register(MetricDef {
            name: "Memory".into(),
            node_capacity: scenario.memory_per_node_gb * 0.9,
            balancing_weight: 0.3,
        });
        let disk = metrics.register(MetricDef {
            name: "Disk".into(),
            node_capacity: scenario.disk_capacity_per_node(),
            balancing_weight: 1.0,
        });
        let mut cluster = Cluster::new(ClusterConfig {
            node_count: scenario.node_count,
            metrics,
            fault_domains: scenario.fault_domains,
        });
        let mut plb = Plb::new(PlbConfig::default(), scenario.plb_seed);
        // An empty catalog cannot resolve any mix entry.
        let catalog = SloCatalog::new();
        let err = bootstrap_population(
            &mut cluster,
            &mut plb,
            &catalog,
            &scenario,
            cpu,
            memory,
            disk,
        )
        .unwrap_err();
        let BootstrapError::UnknownSlo { edition, .. } = err;
        assert_eq!(edition, EditionKind::PremiumBc);
        assert!(err.to_string().contains("unknown SLO"));
    }

    #[test]
    fn draft_plan_matches_what_bootstrap_places() {
        let (report, _, _, _, scenario) = build(100);
        let catalog = SloCatalog::gen5();
        let drafts = draft_population(&catalog, &scenario).expect("draft plan");
        assert_eq!(report.placement_failures, 0);
        assert_eq!(drafts.len(), report.services.len());
        // Placement order, editions, SLOs and initial disk all line up.
        for (draft, (_, edition, slo_index, disk_gb)) in drafts.iter().zip(&report.services) {
            assert_eq!(draft.edition, *edition);
            assert_eq!(draft.slo_index, *slo_index);
            assert_eq!(draft.initial_disk_gb, *disk_gb);
            assert!(draft.name.starts_with("boot-"));
        }
        // And the drafted core footprint is the placed footprint.
        let drafted: f64 = drafts.iter().map(|d| d.reserved_cores()).sum();
        assert!((drafted - report.reserved_cores).abs() < 1e-9);
    }

    #[test]
    fn draft_plan_ignores_the_plb_seed() {
        let catalog = SloCatalog::gen5();
        let mut a = ScenarioSpec::gen5_stage_cluster(110);
        let mut b = ScenarioSpec::gen5_stage_cluster(110);
        a.plb_seed = 1;
        b.plb_seed = 999;
        let da = draft_population(&catalog, &a).expect("draft a");
        let db = draft_population(&catalog, &b).expect("draft b");
        assert_eq!(da.len(), db.len());
        for (x, y) in da.iter().zip(&db) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.initial_disk_gb, y.initial_disk_gb);
        }
    }

    #[test]
    fn bootstrap_is_reproducible() {
        let (a, _, _, _, _) = build(100);
        let (b, _, _, _, _) = build(100);
        assert_eq!(a.services.len(), b.services.len());
        assert_eq!(a.reserved_cores, b.reserved_cores);
        assert_eq!(a.disk_utilization, b.disk_utilization);
    }
}
