//! Default model parameters for the gen5 density study.
//!
//! In the paper these come from training on Azure telemetry; here they are
//! the result of running the `toto-models` training pipeline over the
//! synthetic production traces (see the `model_training` example, which
//! regenerates them and shows the fit quality). They are checked in as
//! constants so experiments are exactly reproducible.

use toto_spec::model::{
    GrowthStateSpec, HourlyTable, InitialCreationSpec, MetricModelSpec, ModelSetSpec,
    RapidGrowthSpec, SteadyStateSpec, TargetPopulation,
};
use toto_spec::population::{PopulationModelSpec, SloMixEntry};
use toto_spec::{EditionKind, ResourceKind, ScenarioSpec};

/// Diurnal multiplier used by the default tables: low overnight, peaking
/// mid-afternoon (mirrors the synthetic trace generator's shape).
pub fn diurnal(hour: usize) -> f64 {
    let phase = (hour as f64 - 14.0) / 24.0 * std::f64::consts::TAU;
    0.25 + 0.75 * (0.5 + 0.5 * phase.cos())
}

/// Build an hourly table from a weekday peak value: weekday cells follow
/// the diurnal curve, weekend cells are scaled down; sigma tracks the
/// square root of the mean (over-dispersed counts).
pub fn diurnal_table(weekday_peak: f64, weekend_factor: f64, sigma_scale: f64) -> HourlyTable {
    let mut t = HourlyTable::constant(0.0, 0.0);
    for h in 0..24 {
        let wd = weekday_peak * diurnal(h);
        let we = wd * weekend_factor;
        t.cells[0][h] = (wd, (wd.max(0.25)).sqrt() * sigma_scale);
        t.cells[1][h] = (we, (we.max(0.25)).sqrt() * sigma_scale);
    }
    t
}

/// The ring-level create/drop population model for the density study.
///
/// Rates are region-level traffic scaled down to one tenant ring (§4.1.1
/// scales "by the total number of tenant rings within that region"),
/// tuned so the 14-node ring saturates on the paper's timescale.
pub fn gen5_population_model(seed: u64) -> PopulationModelSpec {
    // GP: ~2.6 creates/hour at the weekday peak; BC several times rarer
    // (Figure 6: "Premium/BC databases had significantly fewer creates").
    let gp_create = diurnal_table(3.0, 0.45, 1.1);
    let bc_create = diurnal_table(0.30, 0.5, 1.0);
    // Drops trail creates so the ring's population grows over the run;
    // BC grows faster in share, pushing local-store disk up over the days.
    let gp_drop = diurnal_table(3.0 * 0.80, 0.45, 1.1);
    let bc_drop = diurnal_table(0.30 * 0.55, 0.5, 1.0);
    PopulationModelSpec {
        seed,
        create: [gp_create, bc_create],
        drop: [gp_drop, bc_drop],
        slo_mix: [
            vec![
                SloMixEntry {
                    slo_name: "GP_2".into(),
                    weight: 48.0,
                },
                SloMixEntry {
                    slo_name: "GP_4".into(),
                    weight: 30.0,
                },
                SloMixEntry {
                    slo_name: "GP_8".into(),
                    weight: 14.0,
                },
                SloMixEntry {
                    slo_name: "GP_16".into(),
                    weight: 6.0,
                },
                SloMixEntry {
                    slo_name: "GP_24".into(),
                    weight: 2.0,
                },
            ],
            vec![
                SloMixEntry {
                    slo_name: "BC_2".into(),
                    weight: 40.0,
                },
                SloMixEntry {
                    slo_name: "BC_4".into(),
                    weight: 29.0,
                },
                SloMixEntry {
                    slo_name: "BC_8".into(),
                    weight: 20.0,
                },
                SloMixEntry {
                    slo_name: "BC_16".into(),
                    weight: 8.0,
                },
                SloMixEntry {
                    slo_name: "BC_24".into(),
                    weight: 3.0,
                },
            ],
        ],
        // Initial disk per replica, GB: GP carries only tempDB; BC carries
        // a full local data copy (heavy tail up to ~1.5 TB).
        initial_disk_bins: [
            vec![0.1, 0.5, 1.0, 2.0, 4.0, 8.0],
            vec![10.0, 40.0, 120.0, 250.0, 400.0, 600.0],
        ],
    }
}

/// The disk (and memory) model set for the density study.
pub fn gen5_model_set(base_seed: u64, report_period_secs: u64) -> ModelSetSpec {
    // Steady-state disk deltas per 20-minute report, GB: small, diurnal,
    // occasionally negative (§4.2.2). BC databases hold real data and
    // grow faster than GP tempDB churn.
    let bc_steady = {
        let mut t = HourlyTable::constant(0.0, 0.0);
        for h in 0..24 {
            let mu = 0.13 * diurnal(h);
            t.cells[0][h] = (mu, 0.17);
            t.cells[1][h] = (mu * 0.5, 0.12);
        }
        t
    };
    let gp_steady = {
        let mut t = HourlyTable::constant(0.0, 0.0);
        for h in 0..24 {
            let mu = 0.06 * diurnal(h);
            t.cells[0][h] = (mu, 0.12);
            t.cells[1][h] = (mu * 0.5, 0.08);
        }
        t
    };
    ModelSetSpec {
        version: 1,
        base_seed,
        models: vec![
            MetricModelSpec {
                resource: ResourceKind::Disk,
                target: TargetPopulation::Edition(EditionKind::PremiumBc),
                persisted: true,
                report_period_secs,
                reset_value: 0.0,
                additive: true,
                secondary_scale: 1.0,
                seed_salt: 1,
                steady: SteadyStateSpec { hourly: bc_steady },
                // §4.2.3: restores from .mdf; §5.3.2 saw a BC database grow
                // ~1.3 TB in its first 30 minutes.
                initial: Some(InitialCreationSpec {
                    probability: 0.60,
                    duration_secs: 30 * 60,
                    bin_edges: vec![12.0, 40.0, 90.0, 160.0, 240.0, 320.0],
                }),
                // §4.2.4: ETL-style spike cycles on a small minority.
                rapid: Some(RapidGrowthSpec {
                    probability: 0.03,
                    steady_secs: 8 * 3600,
                    between_secs: 12 * 3600,
                    increase: GrowthStateSpec {
                        duration_secs: 40 * 60,
                        bin_edges: vec![10.0, 25.0, 60.0, 120.0, 240.0, 400.0],
                    },
                    decrease: GrowthStateSpec {
                        duration_secs: 60 * 60,
                        bin_edges: vec![10.0, 25.0, 60.0, 120.0, 240.0, 400.0],
                    },
                }),
            },
            MetricModelSpec {
                resource: ResourceKind::Disk,
                target: TargetPopulation::Edition(EditionKind::StandardGp),
                // §3.3.2: GP disk is tempDB only and resets on failover.
                persisted: false,
                report_period_secs,
                reset_value: 0.5,
                additive: true,
                secondary_scale: 1.0,
                seed_salt: 2,
                steady: SteadyStateSpec { hourly: gp_steady },
                initial: None,
                rapid: None,
            },
            // CPU *usage* model (§5.5 future work, shipped as an extension):
            // the sampled value is interpreted as a utilization fraction of
            // the replica's reservation and feeds the node governor — it is
            // never reported to the PLB, whose Cpu metric stays the
            // admission-time reservation.
            MetricModelSpec {
                resource: ResourceKind::Cpu,
                target: TargetPopulation::All,
                persisted: false,
                report_period_secs,
                reset_value: 0.05,
                additive: false,
                secondary_scale: 0.30,
                seed_salt: 4,
                steady: SteadyStateSpec {
                    hourly: {
                        let mut t = HourlyTable::constant(0.0, 0.0);
                        for h in 0..24 {
                            let mu = 0.22 * diurnal(h);
                            t.cells[0][h] = (mu, 0.18);
                            t.cells[1][h] = (mu * 0.6, 0.12);
                        }
                        t
                    },
                },
                initial: None,
                rapid: None,
            },
            // Memory models are §5.5 "future work" in the paper; we ship
            // them as an extension: absolute levels that reset on failover
            // (a cold buffer pool), with secondaries at a quarter of the
            // primary's footprint.
            MetricModelSpec {
                resource: ResourceKind::Memory,
                target: TargetPopulation::All,
                persisted: false,
                report_period_secs,
                reset_value: 0.5,
                additive: false,
                secondary_scale: 0.25,
                seed_salt: 3,
                steady: SteadyStateSpec {
                    hourly: {
                        let mut t = HourlyTable::constant(0.0, 0.0);
                        for h in 0..24 {
                            let mu = 6.0 * diurnal(h);
                            t.cells[0][h] = (mu, 1.5);
                            t.cells[1][h] = (mu * 0.6, 1.0);
                        }
                        t
                    },
                },
                initial: None,
                rapid: None,
            },
        ],
    }
}

/// A zero-growth model set used while bootstrapping: §5.2 "during
/// bootstrap, the disk usage growth was fixed to 0 to prevent the
/// databases from growing before the experiment had begun".
pub fn frozen_model_set(base_seed: u64, report_period_secs: u64) -> ModelSetSpec {
    let mut set = gen5_model_set(base_seed, report_period_secs);
    set.version = 0;
    for model in &mut set.models {
        if model.resource == ResourceKind::Disk {
            model.steady.hourly = HourlyTable::constant(0.0, 0.0);
            model.initial = None;
            model.rapid = None;
        }
    }
    set
}

/// Bootstrap SLO-mix target for Table 3: the initial 220 databases should
/// reserve most of the 100 %-density logical cores, leaving only a few
/// dozen free.
pub fn bootstrap_reserved_target(scenario: &ScenarioSpec) -> f64 {
    scenario.base_cpu_capacity_per_node() * scenario.node_count as f64 - 65.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_peaks_mid_afternoon() {
        assert!(diurnal(14) > diurnal(2));
        assert!((diurnal(14) - 1.0).abs() < 1e-9);
        assert!(diurnal(2) >= 0.25);
    }

    #[test]
    fn population_model_roundtrips_and_is_weekday_heavy() {
        let spec = gen5_population_model(9);
        let xml = spec.to_xml_string();
        let back = toto_spec::population::PopulationModelSpec::from_xml_str(&xml).unwrap();
        assert_eq!(back, spec);
        let gp = &spec.create[EditionKind::StandardGp.index()];
        assert!(gp.cells[0][14].0 > gp.cells[1][14].0);
        let bc = &spec.create[EditionKind::PremiumBc.index()];
        assert!(bc.cells[0][14].0 < gp.cells[0][14].0 / 4.0);
    }

    #[test]
    fn model_set_covers_disk_for_both_editions() {
        let set = gen5_model_set(1, 1200);
        let bc = set
            .model_for(ResourceKind::Disk, EditionKind::PremiumBc)
            .unwrap();
        assert!(bc.persisted);
        let gp = set
            .model_for(ResourceKind::Disk, EditionKind::StandardGp)
            .unwrap();
        assert!(!gp.persisted);
        assert!(set
            .model_for(ResourceKind::Memory, EditionKind::PremiumBc)
            .is_some());
        // CPU *usage* model (utilization fraction for the node governor;
        // the PLB's Cpu metric remains the reservation).
        let cpu = set
            .model_for(ResourceKind::Cpu, EditionKind::StandardGp)
            .unwrap();
        assert!(!cpu.additive);
        assert!(cpu.secondary_scale < 1.0);
    }

    #[test]
    fn frozen_set_has_zero_disk_growth() {
        let set = frozen_model_set(1, 1200);
        assert_eq!(set.version, 0);
        let bc = set
            .model_for(ResourceKind::Disk, EditionKind::PremiumBc)
            .unwrap();
        assert_eq!(bc.steady.hourly.cells[0][14], (0.0, 0.0));
        assert!(bc.initial.is_none());
        // Memory models stay live during bootstrap.
        let mem = set
            .model_for(ResourceKind::Memory, EditionKind::PremiumBc)
            .unwrap();
        assert!(mem.steady.hourly.cells[0][14].0 > 0.0);
    }

    #[test]
    fn bootstrap_target_leaves_65_free_cores() {
        let s = ScenarioSpec::gen5_stage_cluster(100);
        let target = bootstrap_reserved_target(&s);
        assert!((s.total_logical_cores() - target - 65.0).abs() < 1e-9);
    }
}
