//! Directed population schedules: externally decided create/drop streams.
//!
//! The default experiment drives growth from its own seeded
//! [`PopulationManager`](crate::population::PopulationManager). A
//! *directed* run instead replays a schedule someone else decided — the
//! region control plane, which routes one regional population stream
//! across rings and hands each ring the sub-stream it admitted. The ring
//! experiment still does everything else itself (bootstrap, PLB,
//! governance, failovers, chaos, KPI sampling); only the create/drop
//! *decisions* come from outside.
//!
//! Every directive is fully resolved — name, SLO, initial loads — so a
//! directed run consumes **no** population RNG: the schedule, not a
//! seed, is the population. That is what makes per-ring runs
//! independently replayable after the region layer has decided routing.

use toto_spec::EditionKind;

/// One externally decided population action.
#[derive(Clone, Debug, PartialEq)]
pub enum DirectedAction {
    /// Create a database with a fully resolved request.
    Create {
        /// Database name (region-unique; becomes the stable identity).
        name: String,
        /// Catalog index of the SLO to create with.
        slo_index: usize,
        /// Edition (must match the SLO's edition).
        edition: EditionKind,
        /// Initial per-replica disk load, GB.
        initial_disk_gb: f64,
        /// Initial per-replica memory load, GB.
        initial_memory_gb: f64,
    },
    /// Drop the database created under `name`. A name that is not live
    /// (its create was redirected away or already dropped) is a no-op.
    Drop {
        /// Name the database was created with.
        name: String,
    },
}

/// A directive with its time, as an offset from experiment start.
#[derive(Clone, Debug, PartialEq)]
pub struct DirectedEvent {
    /// Seconds after the experiment's start time.
    pub offset_secs: u64,
    /// What to do.
    pub action: DirectedAction,
}

/// A full directed schedule for one run, sorted by offset.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DirectedSchedule {
    /// The directives, non-decreasing in `offset_secs`.
    pub events: Vec<DirectedEvent>,
}

impl DirectedSchedule {
    /// An empty schedule (a directed run with no growth at all).
    pub fn new() -> Self {
        DirectedSchedule::default()
    }

    /// Append a directive; keeps the schedule sorted by offset (stable
    /// for equal offsets, so insertion order breaks ties).
    pub fn push(&mut self, offset_secs: u64, action: DirectedAction) {
        debug_assert!(
            self.events
                .last()
                .is_none_or(|last| last.offset_secs <= offset_secs),
            "directed schedule must be appended in time order"
        );
        self.events.push(DirectedEvent {
            offset_secs,
            action,
        });
    }

    /// Number of create directives.
    pub fn create_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, DirectedAction::Create { .. }))
            .count()
    }

    /// Number of drop directives.
    pub fn drop_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, DirectedAction::Drop { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_counts() {
        let mut s = DirectedSchedule::new();
        s.push(
            10,
            DirectedAction::Create {
                name: "gp_4-0".into(),
                slo_index: 1,
                edition: EditionKind::StandardGp,
                initial_disk_gb: 12.0,
                initial_memory_gb: 1.0,
            },
        );
        s.push(
            3600,
            DirectedAction::Drop {
                name: "gp_4-0".into(),
            },
        );
        assert_eq!(s.create_count(), 1);
        assert_eq!(s.drop_count(), 1);
        assert_eq!(s.events[0].offset_secs, 10);
    }
}
