//! The density-study experiment runner (§5).
//!
//! One experiment = one density level run for a configured duration on a
//! simulated gen5 stage ring:
//!
//! 1. **Bootstrap** (§5.2): create the Table-2 population with growth
//!    frozen, let the PLB place and balance.
//! 2. **Start**: write the model XML into the Naming Service and start
//!    the Population Manager — "each experiment officially began by
//!    modifying the model XML … and instructing the Population Manager to
//!    begin creating and dropping databases".
//! 3. **Run**: replicas report modeled metric loads every report period;
//!    RgManagers refresh models every 15 minutes; the PLB fixes capacity
//!    violations (failovers); the control plane redirects creations the
//!    ring cannot take; telemetry samples everything.
//! 4. **Score**: modeled adjusted revenue per §5.1.

use crate::bootstrap::{bootstrap_population, BootstrapReport};
use crate::defaults;
use crate::directed::{DirectedAction, DirectedSchedule};
use crate::population::{PlannedAction, PopulationManager};
use std::collections::BTreeMap;
use toto_chaos::{ChaosAction, ChaosFaultRecord, ChaosPlan, ChaosReport, ChaosRuntime};
use toto_controlplane::admission::{AdmissionController, AdmissionOutcome};
use toto_controlplane::slo::{decode_tag, SloCatalog};
use toto_fabric::cluster::{Cluster, ClusterConfig, ReplicaRole};
use toto_fabric::ids::{MetricId, NodeId, ReplicaId};
use toto_fabric::metrics::{MetricDef, MetricRegistry};
use toto_fabric::naming::NamingService;
use toto_fabric::plb::{FailoverEvent, Plb, PlbConfig};
use toto_models::compiled::ReplicaRoleKind;
use toto_rgmanager::{persisted_state_key, ReportRequest, RgManager, MODEL_KEY};
use toto_simcore::event::{Scheduler, Simulation};
use toto_simcore::rng::DetRng;
use toto_simcore::time::{SimDuration, SimTime};
use toto_spec::model::ModelSetSpec;
use toto_spec::population::PopulationModelSpec;
use toto_spec::{EditionKind, ResourceKind, ScenarioSpec};
use toto_telemetry::kpi::{FailoverRecord, NodeSnapshot, Telemetry};
use toto_telemetry::revenue::{BillingRecord, RevenueBreakdown, RevenueParams};

/// Optional deviations from the scenario defaults.
#[derive(Clone, Debug)]
pub struct ExperimentOverrides {
    /// Replace the default population model.
    pub population: Option<PopulationModelSpec>,
    /// Replace the default metric model set.
    pub models: Option<ModelSetSpec>,
    /// Replace the default PLB configuration.
    pub plb: Option<PlbConfig>,
    /// Run proactive balancing during the experiment (on by default —
    /// SF's PLB balances continuously; balancing moves are not failovers).
    pub balance_during_run: bool,
    /// Interval between node-level snapshots, seconds (default 600 — the
    /// paper's Figure 13 uses 10-minute node readings).
    pub node_snapshot_secs: Option<u64>,
    /// Replace the SLA/revenue parameters.
    pub revenue: Option<RevenueParams>,
    /// Optional rolling maintenance upgrade: nodes are drained one at a
    /// time and brought back, as production clusters do mid-experiment
    /// ("the outliers at each density level are when a cluster
    /// maintenance upgrade was occurring", §5.3.2).
    pub rolling_upgrade: Option<RollingUpgrade>,
    /// Deterministic fault-injection plan (empty by default). An empty
    /// plan is strictly inert: no chaos state is allocated, no RNG
    /// stream is drawn, and the run is byte-identical to one on a build
    /// without chaos support.
    pub chaos: ChaosPlan,
    /// Replace the seeded population stream with an externally decided
    /// create/drop schedule (region runs). The Population Manager is
    /// then never consulted — no population RNG is drawn during the run
    /// — but hourly KPI sampling continues unchanged.
    pub directed: Option<DirectedSchedule>,
}

/// A rolling cluster upgrade: starting at `start_hour`, each node in
/// turn is drained, stays down for `downtime_hours`, and comes back
/// before the next node begins.
#[derive(Clone, Copy, Debug)]
pub struct RollingUpgrade {
    /// Hour (from experiment start) the upgrade begins.
    pub start_hour: u64,
    /// How long each node stays drained.
    pub downtime_hours: u64,
}

impl Default for ExperimentOverrides {
    fn default() -> Self {
        ExperimentOverrides {
            population: None,
            models: None,
            plb: None,
            balance_during_run: true,
            node_snapshot_secs: None,
            revenue: None,
            rolling_upgrade: None,
            chaos: ChaosPlan::default(),
            directed: None,
        }
    }
}

/// Billing bookkeeping per live database.
#[derive(Clone, Debug)]
struct BillingState {
    edition: EditionKind,
    compute_price_per_hour: f64,
    storage_price_per_gb_hour: f64,
    created_at: SimTime,
    dropped_at: Option<SimTime>,
    disk_sum: f64,
    disk_samples: u64,
    initial_disk: f64,
    downtime_secs: f64,
}

impl BillingState {
    fn to_record(&self, service: u64) -> BillingRecord {
        let avg = if self.disk_samples > 0 {
            self.disk_sum / self.disk_samples as f64
        } else {
            self.initial_disk
        };
        BillingRecord {
            service,
            edition: self.edition,
            compute_price_per_hour: self.compute_price_per_hour,
            storage_price_per_gb_hour: self.storage_price_per_gb_hour,
            created_at: self.created_at,
            dropped_at: self.dropped_at,
            avg_data_gb: avg,
            downtime_secs: self.downtime_secs,
        }
    }
}

/// The mutable state threaded through the event loop.
pub struct ExperimentState {
    scenario: ScenarioSpec,
    cluster: Cluster,
    plb: Plb,
    naming: NamingService,
    rgmanagers: Vec<RgManager>,
    governors: Vec<toto_rgmanager::governance::NodeGovernor>,
    admission: AdmissionController,
    catalog: SloCatalog,
    popmgr: PopulationManager,
    telemetry: Telemetry,
    billing: BTreeMap<u64, BillingState>,
    qos_rng: DetRng,
    /// Stable per-database identities (hash of the creation name), keyed
    /// by fabric service id. The identity — not the infrastructure id —
    /// drives model pattern membership and persisted-state keys, so the
    /// same Population Manager stream produces the same database
    /// behaviours in every experiment regardless of admission history,
    /// exactly as the paper's fixed-seed design intends (§5.2).
    identities: std::collections::BTreeMap<u64, u64>,
    /// Live services by creation name (bootstrap + admitted creates),
    /// so directed drops can resolve their victim without a scan.
    by_name: BTreeMap<String, toto_fabric::ids::ServiceId>,
    /// Whether a directed schedule replaces the population stream.
    directed_mode: bool,
    /// Create directives executed (admitted or redirected).
    directed_created: u64,
    cpu: MetricId,
    memory: MetricId,
    disk: MetricId,
    start: SimTime,
    end: SimTime,
    report_period: SimDuration,
    node_snapshot_period: SimDuration,
    balance_during_run: bool,
    /// Fault-injection state; `None` whenever the chaos plan is empty.
    chaos: Option<ChaosRuntime>,
    /// Scratch for `report_metrics`' per-replica snapshot, reused every
    /// report period so the hottest periodic event allocates nothing in
    /// steady state.
    report_rows: Vec<ReplicaRow>,
}

/// One row of `report_metrics`' pre-collected snapshot: (id, service,
/// node, role, edition, created_at, disk_load, mem_load). Collected
/// before reporting because reporting mutates the cluster.
type ReplicaRow = (
    ReplicaId,
    u64,
    u32,
    ReplicaRole,
    EditionKind,
    SimTime,
    f64,
    f64,
);

/// Everything an experiment run produces.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// The scenario that was run.
    pub scenario: ScenarioSpec,
    /// All collected telemetry.
    pub telemetry: Telemetry,
    /// Aggregate modeled adjusted revenue (§5.1).
    pub revenue: RevenueBreakdown,
    /// Per-database billing records.
    pub billing: Vec<BillingRecord>,
    /// Reserved cores at the end of the run.
    pub final_reserved_cores: f64,
    /// Cluster disk usage at the end of the run, GB.
    pub final_disk_gb: f64,
    /// Total creation redirects.
    pub redirect_count: usize,
    /// Every creation redirect, in time order.
    pub redirects: Vec<toto_controlplane::admission::RedirectEvent>,
    /// Hour (simulated) of the first creation redirect, if any.
    pub first_redirect_hour: Option<u64>,
    /// What bootstrap produced (Tables 2–3).
    pub bootstrap: BootstrapReport,
    /// Databases created by the Population Manager during the run.
    pub created_during_run: u64,
    /// Per-fault accounting and oracle counters; `None` when the run
    /// had no chaos plan.
    pub chaos: Option<ChaosReport>,
    /// Simulation events dispatched over the whole run (bootstrap
    /// included). Dividing by host wall-clock gives the sim-events/sec
    /// headline throughput `bench_track` records.
    pub dispatched_events: u64,
}

/// The experiment runner.
pub struct DensityExperiment {
    scenario: ScenarioSpec,
    overrides: ExperimentOverrides,
}

impl DensityExperiment {
    /// Configure an experiment.
    pub fn new(scenario: ScenarioSpec, overrides: ExperimentOverrides) -> Self {
        DensityExperiment {
            scenario,
            overrides,
        }
    }

    /// Run to completion and score.
    pub fn run(self) -> ExperimentResult {
        let DensityExperiment {
            scenario,
            overrides,
        } = self;

        // --- Cluster and metrics -----------------------------------------
        let mut metrics = MetricRegistry::new();
        let cpu = metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: scenario.cpu_capacity_per_node(),
            balancing_weight: 1.0,
        });
        let memory = metrics.register(MetricDef {
            name: "Memory".into(),
            node_capacity: scenario.memory_per_node_gb * 0.9,
            balancing_weight: 0.3,
        });
        let disk = metrics.register(MetricDef {
            name: "Disk".into(),
            node_capacity: scenario.disk_capacity_per_node(),
            balancing_weight: 1.0,
        });
        let mut cluster = Cluster::new(ClusterConfig {
            node_count: scenario.node_count,
            metrics,
            fault_domains: scenario.fault_domains,
        });
        let mut plb = Plb::new(overrides.plb.clone().unwrap_or_default(), scenario.plb_seed);
        let catalog = SloCatalog::gen5();

        // --- Bootstrap ----------------------------------------------------
        // The built-in mix and the gen5 catalog are compiled together, so
        // a failure here is a programming error, not a runtime condition.
        toto_trace::emit(toto_trace::EventKind::Phase, || {
            toto_trace::EventBody::Phase {
                label: "bootstrap".to_string(),
            }
        });
        let bootstrap = bootstrap_population(
            &mut cluster,
            &mut plb,
            &catalog,
            &scenario,
            cpu,
            memory,
            disk,
        )
        .expect("bootstrap mix resolves against the gen5 catalog");

        // The experiment clock starts one week after the bootstrap epoch:
        // the initial population is pre-aged (its databases must not
        // re-trigger initial-creation growth — the paper freezes growth
        // during bootstrap for exactly this reason), and a whole number of
        // weeks keeps the epoch-is-Monday calendar alignment.
        let start = SimTime::ZERO + SimDuration::from_days(7);

        // --- Toto orchestrator: write models, seed persisted state --------
        let mut naming = NamingService::new();
        let model_set = overrides.models.clone().unwrap_or_else(|| {
            defaults::gen5_model_set(scenario.model_seed, scenario.report_period_secs)
        });
        naming.write(MODEL_KEY, model_set.to_xml_string());
        let mut billing: BTreeMap<u64, BillingState> = BTreeMap::new();
        let mut identities: std::collections::BTreeMap<u64, u64> =
            std::collections::BTreeMap::new();
        let mut by_name: BTreeMap<String, toto_fabric::ids::ServiceId> = BTreeMap::new();
        for (id, edition, slo_index, initial_disk) in &bootstrap.services {
            let name = cluster
                .service(*id)
                .expect("bootstrap service")
                .name
                .clone();
            let identity = toto_simcore::rng::stable_id(&name);
            by_name.insert(name, *id);
            identities.insert(id.raw(), identity);
            if edition.disk_is_persisted() {
                naming.write(
                    &persisted_state_key(ResourceKind::Disk, identity),
                    format!("{initial_disk:?}"),
                );
            }
            let slo = catalog.get(*slo_index).expect("bootstrap SLO");
            billing.insert(
                id.raw(),
                BillingState {
                    edition: *edition,
                    compute_price_per_hour: slo.compute_price_per_hour,
                    storage_price_per_gb_hour: slo.storage_price_per_gb_hour,
                    created_at: start,
                    dropped_at: None,
                    disk_sum: 0.0,
                    disk_samples: 0,
                    initial_disk: *initial_disk,
                    downtime_secs: 0.0,
                },
            );
        }

        let mut rgmanagers: Vec<RgManager> = (0..scenario.node_count).map(RgManager::new).collect();
        for rg in &mut rgmanagers {
            rg.refresh_models(&mut naming);
        }
        let governors: Vec<toto_rgmanager::governance::NodeGovernor> = (0..scenario.node_count)
            .map(|_| toto_rgmanager::governance::NodeGovernor::new(scenario.cores_per_node))
            .collect();

        let population_spec = overrides
            .population
            .clone()
            .unwrap_or_else(|| defaults::gen5_population_model(scenario.population_seed));
        let popmgr = PopulationManager::new(&population_spec, &catalog);

        let mut telemetry = Telemetry::new();
        telemetry.bootstrap_placement_failures = u64::from(bootstrap.placement_failures);

        let end = start + SimDuration::from_hours(scenario.duration_hours);
        let chaos_node_count = scenario.node_count;
        let chaos_duration_hours = scenario.duration_hours;
        let chaos = if overrides.chaos.is_empty() {
            None
        } else {
            // The oracle applies the same fit rule as the PLB it audits.
            let headroom = overrides.plb.clone().unwrap_or_default().placement_headroom;
            Some(ChaosRuntime::new(scenario.plb_seed, headroom))
        };
        let state = ExperimentState {
            report_period: SimDuration::from_secs(scenario.report_period_secs),
            node_snapshot_period: SimDuration::from_secs(
                overrides.node_snapshot_secs.unwrap_or(600),
            ),
            balance_during_run: overrides.balance_during_run,
            // QoS downtime draws share the PLB seed lineage: they are part
            // of the run-to-run non-determinism the paper attributes to SF.
            qos_rng: DetRng::seed_from_u64(scenario.plb_seed ^ 0x00D0_3713),
            identities,
            by_name,
            directed_mode: overrides.directed.is_some(),
            directed_created: 0,
            scenario,
            cluster,
            plb,
            naming,
            rgmanagers,
            governors,
            admission: AdmissionController::new(cpu, memory, disk),
            catalog,
            popmgr,
            telemetry,
            billing,
            cpu,
            memory,
            disk,
            start,
            end,
            chaos,
            report_rows: Vec::new(),
        };

        let mut sim = Simulation::new(state);
        let refresh = SimDuration::from_secs(sim.state().scenario.model_refresh_secs);
        let report = sim.state().report_period;
        let snapshot = sim.state().node_snapshot_period;
        sim.scheduler().schedule_at(start, population_tick);
        sim.scheduler().schedule_at(start + report, report_metrics);
        sim.scheduler().schedule_at(start + refresh, refresh_models);
        sim.scheduler()
            .schedule_at(start + SimDuration::from_secs(300), plb_tick);
        sim.scheduler().schedule_at(start + report, governance_tick);
        sim.scheduler().schedule_at(start + snapshot, node_snapshot);
        if let Some(directed) = &overrides.directed {
            // The schedule is fully known up front; one simulation event
            // per directive, in schedule order (FIFO on equal times).
            for ev in &directed.events {
                let at = start + SimDuration::from_secs(ev.offset_secs);
                if at > end {
                    continue;
                }
                let action = ev.action.clone();
                sim.scheduler()
                    .schedule_at(at, move |s: &mut ExperimentState, sc| {
                        directed_action(s, &action, sc.now());
                    });
            }
        }
        if let Some(upgrade) = overrides.rolling_upgrade {
            let nodes = sim.state().cluster.node_count() as u64;
            for i in 0..nodes {
                let t_drain = start
                    + SimDuration::from_hours(upgrade.start_hour + i * upgrade.downtime_hours);
                if t_drain >= end {
                    break;
                }
                let node = NodeId(i as u32);
                sim.scheduler()
                    .schedule_at(t_drain, move |s: &mut ExperimentState, sc| {
                        let events = {
                            let mut plb = s.plb.clone();
                            // A drain blocked by a last-live-replica conflict
                            // skips this node's upgrade slot (it stays up).
                            let ev = plb
                                .drain_node(&mut s.cluster, node, sc.now())
                                .unwrap_or_default();
                            s.plb = plb;
                            ev
                        };
                        // Drain moves reset non-persisted state but are not
                        // capacity-violation failovers.
                        process_failovers(s, events);
                    });
                let t_up = t_drain + SimDuration::from_hours(upgrade.downtime_hours);
                if t_up <= end {
                    sim.scheduler()
                        .schedule_at(t_up, move |s: &mut ExperimentState, _| {
                            s.cluster.set_node_up(node, true);
                        });
                }
            }
        }
        if sim.state().chaos.is_some() {
            for fault in overrides
                .chaos
                .compile(chaos_node_count, chaos_duration_hours)
            {
                let t = start + SimDuration::from_secs(fault.at_secs);
                if t >= end {
                    continue;
                }
                match fault.action {
                    ChaosAction::Crash {
                        node,
                        downtime_secs,
                    } => sim
                        .scheduler()
                        .schedule_at(t, move |s: &mut ExperimentState, sc| {
                            chaos_crash(s, sc, node, downtime_secs)
                        }),
                    ChaosAction::Drain {
                        node,
                        downtime_secs,
                    } => sim
                        .scheduler()
                        .schedule_at(t, move |s: &mut ExperimentState, sc| {
                            chaos_drain(s, sc, node, downtime_secs)
                        }),
                    ChaosAction::Decommission { node } => sim
                        .scheduler()
                        .schedule_at(t, move |s: &mut ExperimentState, sc| {
                            chaos_decommission(s, sc, node)
                        }),
                    ChaosAction::Degrade { resource, factor } => sim
                        .scheduler()
                        .schedule_at(t, move |s: &mut ExperimentState, sc| {
                            chaos_degrade(s, sc, resource, factor)
                        }),
                    ChaosAction::RestoreCapacity { resource } => sim
                        .scheduler()
                        .schedule_at(t, move |s: &mut ExperimentState, sc| {
                            chaos_restore_capacity(s, sc, resource)
                        }),
                    ChaosAction::ReportLossStart { drop_probability } => sim
                        .scheduler()
                        .schedule_at(t, move |s: &mut ExperimentState, sc| {
                            chaos_report_loss_start(s, sc, drop_probability)
                        }),
                    ChaosAction::ReportLossEnd => sim
                        .scheduler()
                        .schedule_at(t, |s: &mut ExperimentState, sc| {
                            chaos_report_loss_end(s, sc)
                        }),
                    ChaosAction::Storm {
                        node_count,
                        downtime_secs,
                    } => sim
                        .scheduler()
                        .schedule_at(t, move |s: &mut ExperimentState, sc| {
                            chaos_storm(s, sc, node_count, downtime_secs)
                        }),
                }
            }
            // The invariant oracles audit the state after every dispatched
            // event while chaos is active. Take/put-back keeps the oracle's
            // mutable state disjoint from the cluster and naming borrows.
            sim.set_post_dispatch(|s: &mut ExperimentState, _| {
                let Some(mut rt) = s.chaos.take() else { return };
                rt.oracle
                    .check(&s.cluster, &s.naming, s.identities.values().copied());
                s.chaos = Some(rt);
            });
        }
        toto_trace::emit(toto_trace::EventKind::Phase, || {
            toto_trace::EventBody::Phase {
                label: "run".to_string(),
            }
        });
        sim.run_until(end);

        // --- Score ---------------------------------------------------------
        toto_trace::emit(toto_trace::EventKind::Phase, || {
            toto_trace::EventBody::Phase {
                label: "score".to_string(),
            }
        });
        let dispatched_events = sim.dispatched();
        let state = sim.into_state();
        let chaos = state.chaos.map(|rt| {
            let mut report = rt.report;
            report.oracle_checks = rt.oracle.checks;
            report.oracle_violations = rt.oracle.violations;
            report
        });
        let params = overrides.revenue.unwrap_or_else(|| RevenueParams {
            // Credits are assessed against the experiment's billing window
            // (the paper subtracts "service credits based on the SLA" from
            // the revenue modeled over the run).
            credit_window_hours: state.scenario.duration_hours as f64,
            ..RevenueParams::default()
        });
        let records: Vec<BillingRecord> = state
            .billing
            .iter()
            .map(|(svc, b)| b.to_record(*svc))
            .collect();
        let revenue = params.score_all(&records, end);
        let first_redirect_hour = state
            .admission
            .redirects()
            .first()
            .map(|r| r.time.saturating_since(start).as_secs() / 3600);
        ExperimentResult {
            final_reserved_cores: state.cluster.total_load(state.cpu),
            final_disk_gb: state.cluster.total_load(state.disk),
            redirect_count: state.admission.redirects().len(),
            redirects: state.admission.redirects().to_vec(),
            first_redirect_hour,
            created_during_run: state.popmgr.created_count() + state.directed_created,
            scenario: state.scenario,
            telemetry: state.telemetry,
            revenue,
            billing: records,
            bootstrap,
            chaos,
            dispatched_events,
        }
    }
}

// ---------------------------------------------------------------------------
// Event handlers
// ---------------------------------------------------------------------------

fn edition_of(tag: u64) -> EditionKind {
    decode_tag(tag).0
}

/// Every report period each replica consults its node's RgManager for the
/// disk and memory metrics and reports the modeled loads to the PLB.
fn report_metrics(state: &mut ExperimentState, sched: &mut Scheduler<ExperimentState>) {
    let now = sched.now();
    // Take/put-back: the rows are collected up front (reporting mutates
    // the cluster) into a buffer reused across report periods. A
    // service's replicas have consecutive ids and replicas iterate in id
    // order, so the service lookup is cached across the run of rows that
    // share it — one map probe per service instead of per replica.
    let mut rows = std::mem::take(&mut state.report_rows);
    rows.clear();
    let mut last_service: Option<(toto_fabric::ids::ServiceId, EditionKind, SimTime)> = None;
    for r in state.cluster.replicas() {
        let (edition, created_at) = match last_service {
            Some((sid, edition, created_at)) if sid == r.service => (edition, created_at),
            _ => {
                let svc = state.cluster.service(r.service).expect("replica's service");
                let cached = (edition_of(svc.tag), svc.created_at);
                last_service = Some((r.service, cached.0, cached.1));
                cached
            }
        };
        rows.push((
            r.id,
            r.service.raw(),
            r.node.raw(),
            r.role,
            edition,
            created_at,
            r.load[state.disk],
            r.load[state.memory],
        ));
    }
    let mut last_identity: Option<(u64, u64)> = None;
    for &(rid, service, node, role, edition, created_at, disk_load, mem_load) in &rows {
        let identity = match last_identity {
            Some((s, identity)) if s == service => identity,
            _ => {
                let identity = state.identities.get(&service).copied().unwrap_or(service);
                last_identity = Some((service, identity));
                identity
            }
        };
        let role_kind = match role {
            ReplicaRole::Primary => ReplicaRoleKind::Primary,
            ReplicaRole::Secondary => ReplicaRoleKind::Secondary,
        };
        for (resource, metric, actual) in [
            (ResourceKind::Disk, state.disk, disk_load),
            (ResourceKind::Memory, state.memory, mem_load),
        ] {
            // Chaos report loss: during a lossy window the report never
            // reaches the RgManager, so the PLB keeps acting on the stale
            // previous value — losing a report is equivalent to delaying
            // it by one report period.
            if let Some(rt) = state.chaos.as_mut() {
                if let Some(p) = rt.drop_probability {
                    if rt.rng.bernoulli(p) {
                        toto_trace::emit(toto_trace::EventKind::ChaosReportDropped, || {
                            toto_trace::EventBody::ChaosReportDropped {
                                service,
                                replica: rid.raw(),
                                node: u64::from(node),
                                resource: resource.to_string(),
                            }
                        });
                        continue;
                    }
                }
            }
            let req = ReportRequest {
                replica: rid.raw(),
                service: identity,
                role: role_kind,
                edition,
                resource,
                created_at,
                now,
                actual_load: actual,
            };
            let value = state.rgmanagers[node as usize].compute_report(&mut state.naming, &req);
            state.cluster.report_load(rid, metric, value);
            if resource == ResourceKind::Disk && role == ReplicaRole::Primary {
                if let Some(b) = state.billing.get_mut(&service) {
                    b.disk_sum += value;
                    b.disk_samples += 1;
                }
            }
        }
    }
    state.report_rows = rows;
    let next = now + state.report_period;
    if next <= state.end {
        sched.schedule_at(next, report_metrics);
    }
}

/// Every 15 minutes each node's RgManager re-reads the model XML.
fn refresh_models(state: &mut ExperimentState, sched: &mut Scheduler<ExperimentState>) {
    for rg in &mut state.rgmanagers {
        rg.refresh_models(&mut state.naming);
    }
    let next = sched.now() + SimDuration::from_secs(state.scenario.model_refresh_secs);
    if next <= state.end {
        sched.schedule_at(next, refresh_models);
    }
}

/// Sample the customer-visible downtime of one failover.
fn sample_downtime(state: &mut ExperimentState, edition: EditionKind, was_primary: bool) -> f64 {
    if !was_primary {
        return 0.0;
    }
    match edition {
        // GP: detach/reattach remote storage (§3.1) plus connection drops
        // and failed logins while the replica restarts elsewhere.
        EditionKind::StandardGp => 45.0 + state.qos_rng.next_f64() * 135.0,
        // BC: a secondary is promoted quickly, but the paper counts the
        // full customer impact (failed queries, dropped connections,
        // failed login attempts) while the new primary warms up.
        EditionKind::PremiumBc => 20.0 + state.qos_rng.next_f64() * 100.0,
    }
}

/// Convert PLB movement events into telemetry and billing effects.
///
/// Capacity-violation moves are *failovers* in the paper's sense (§3.1:
/// "A failover means that the replicas' aggregate resource demands on
/// the node have exceeded the node's predefined logical capacity"), and
/// chaos-injected crashes count too — the replica restarts elsewhere
/// with full customer impact. Routine balancing moves and graceful
/// drains reset non-persisted metric state but are not counted against
/// QoS.
fn process_failovers(state: &mut ExperimentState, events: Vec<FailoverEvent>) {
    for ev in events {
        // The replica restarted on another node either way: the source
        // RgManager forgets its non-persisted metric state.
        state.rgmanagers[ev.from.raw() as usize].forget_replica(ev.replica.raw());
        if !matches!(
            ev.reason,
            toto_fabric::plb::FailoverReason::CapacityViolation(_)
                | toto_fabric::plb::FailoverReason::NodeCrash
        ) {
            continue;
        }
        let Some(svc) = state.cluster.service(ev.service) else {
            continue;
        };
        let (edition, slo_index) = decode_tag(svc.tag);
        let cores = state
            .catalog
            .get(slo_index)
            .map(|s| s.vcores as f64)
            .unwrap_or(0.0);
        let disk_gb = state
            .cluster
            .replica(ev.replica)
            .map(|r| r.load[state.disk])
            .unwrap_or(0.0);
        let was_primary = ev.role == ReplicaRole::Primary;
        let downtime = sample_downtime(state, edition, was_primary);
        if let Some(b) = state.billing.get_mut(&ev.service.raw()) {
            b.downtime_secs += downtime;
        }
        state.telemetry.failovers.push(FailoverRecord {
            time: ev.time,
            service: ev.service.raw(),
            edition,
            cores_moved: cores,
            disk_gb,
            was_primary,
            downtime_secs: downtime,
        });
    }
}

/// PLB pass: fix capacity violations (and optionally balance).
fn plb_tick(state: &mut ExperimentState, sched: &mut Scheduler<ExperimentState>) {
    let now = sched.now();
    let tick = SimDuration::from_secs(300);
    let mut plb = state.plb.clone();
    let events = plb.fix_violations(&mut state.cluster, now);
    let mut all_events = events;
    if state.balance_during_run {
        all_events.extend(plb.balance(&mut state.cluster, now));
    }
    state.plb = plb;
    process_failovers(state, all_events);
    // Unresolved *disk* violations are customer-visible: a database on a
    // node whose disk capacity is breached is "temporarily needing to
    // wait for resources it has requested" (§1) — failed writes, dropped
    // connections, failed logins (§3.1). The service is degraded rather
    // than fully down, so each PLB tick spent in violation charges 25 %
    // of the interval as effective unavailability to the primaries on
    // the breached node; sustained violations are what make over-dense
    // clusters expensive in SLA credits (§5.3.5).
    let violating_nodes: Vec<u32> = state
        .cluster
        .violations()
        .iter()
        .filter(|(_, m)| *m == state.disk)
        .map(|(n, _)| n.raw())
        .collect();
    if !violating_nodes.is_empty() {
        // Any replica on a breached node hurts its database: a primary
        // fails writes directly, and a local-store secondary that cannot
        // persist stalls the primary's quorum commits.
        let mut hit_services: Vec<u64> = state
            .cluster
            .replicas()
            .filter(|r| violating_nodes.contains(&r.node.raw()))
            .map(|r| r.service.raw())
            .collect();
        hit_services.sort_unstable();
        hit_services.dedup();
        for svc in hit_services {
            if let Some(b) = state.billing.get_mut(&svc) {
                b.downtime_secs += tick.as_secs() as f64 * 0.25;
            }
        }
    }
    let next = now + tick;
    if next <= state.end {
        sched.schedule_at(next, plb_tick);
    }
}

/// Top-of-hour: plan the hour's creates/drops and take the hourly KPI
/// snapshot.
fn population_tick(state: &mut ExperimentState, sched: &mut Scheduler<ExperimentState>) {
    let now = sched.now();
    // Hourly KPI snapshot (Figures 10 and 11).
    state
        .telemetry
        .reserved_cores
        .push(now, state.cluster.total_load(state.cpu));
    state
        .telemetry
        .disk_usage
        .push(now, state.cluster.total_load(state.disk));
    state
        .telemetry
        .creation_redirects
        .push(now, state.admission.redirects().len() as f64);

    // In directed mode the create/drop stream was decided externally and
    // scheduled up front; consulting the Population Manager here would
    // draw RNG the directed run must not consume.
    if !state.directed_mode {
        for planned in state.popmgr.plan_hour(now) {
            let at = now + SimDuration::from_secs(planned.offset_secs);
            if at > state.end {
                continue;
            }
            match planned.action {
                PlannedAction::Create(edition) => {
                    sched.schedule_at(at, move |s: &mut ExperimentState, sc| {
                        create_database(s, edition, sc.now());
                    });
                }
                PlannedAction::Drop(edition) => {
                    sched.schedule_at(at, move |s: &mut ExperimentState, sc| {
                        drop_database(s, edition, sc.now());
                    });
                }
            }
        }
    }
    let next = now + SimDuration::from_hours(1);
    if next <= state.end {
        sched.schedule_at(next, population_tick);
    }
}

/// Execute one create request through the control plane.
fn create_database(state: &mut ExperimentState, edition: EditionKind, now: SimTime) {
    let (slo_index, req) = state.popmgr.make_create_request(edition, &state.catalog);
    admit_request(state, slo_index, edition, req, now);
}

/// Execute one externally decided directive (directed mode).
fn directed_action(state: &mut ExperimentState, action: &DirectedAction, now: SimTime) {
    match action {
        DirectedAction::Create {
            name,
            slo_index,
            edition,
            initial_disk_gb,
            initial_memory_gb,
        } => {
            state.directed_created += 1;
            let req = toto_controlplane::admission::CreateRequest {
                name: name.clone(),
                slo_index: *slo_index,
                initial_disk_gb: *initial_disk_gb,
                initial_memory_gb: *initial_memory_gb,
            };
            admit_request(state, *slo_index, *edition, req, now);
        }
        DirectedAction::Drop { name } => {
            // A name that never materialized (its create was redirected
            // away) or was already dropped is a deterministic no-op.
            let Some(victim) = state.by_name.get(name).copied() else {
                return;
            };
            let edition = state
                .cluster
                .service(victim)
                .map(|s| edition_of(s.tag))
                .unwrap_or(EditionKind::StandardGp);
            remove_service(state, victim, edition, now);
        }
    }
}

/// Push a resolved create request through admission and, if admitted, do
/// the shared bookkeeping (trace, identity, persisted state, billing).
fn admit_request(
    state: &mut ExperimentState,
    slo_index: usize,
    edition: EditionKind,
    req: toto_controlplane::admission::CreateRequest,
    now: SimTime,
) {
    let slo = state.catalog.get(slo_index).expect("resolved SLO").clone();
    match state
        .admission
        .try_admit(&mut state.cluster, &mut state.plb, &slo, &req, now)
    {
        AdmissionOutcome::Admitted(id) => {
            toto_trace::emit(toto_trace::EventKind::DbCreate, || {
                toto_trace::EventBody::DbCreate {
                    service: id.raw(),
                    edition: edition.index() as u64,
                    slo: slo_index as u64,
                }
            });
            let identity = toto_simcore::rng::stable_id(&req.name);
            state.identities.insert(id.raw(), identity);
            state.by_name.insert(req.name.clone(), id);
            if edition.disk_is_persisted() {
                state.naming.write(
                    &persisted_state_key(ResourceKind::Disk, identity),
                    format!("{:?}", req.initial_disk_gb),
                );
            }
            state.billing.insert(
                id.raw(),
                BillingState {
                    edition,
                    compute_price_per_hour: slo.compute_price_per_hour,
                    storage_price_per_gb_hour: slo.storage_price_per_gb_hour,
                    created_at: now,
                    dropped_at: None,
                    disk_sum: 0.0,
                    disk_samples: 0,
                    initial_disk: req.initial_disk_gb,
                    downtime_secs: 0.0,
                },
            );
        }
        AdmissionOutcome::Redirected(_) => {
            // Recorded inside the admission controller.
        }
    }
}

/// Execute one drop request.
fn drop_database(state: &mut ExperimentState, edition: EditionKind, now: SimTime) {
    let Some(victim) = state
        .popmgr
        .pick_drop_victim(&state.cluster, edition, state.disk)
    else {
        return;
    };
    remove_service(state, victim, edition, now);
}

/// Tear down one live service: shared bookkeeping for population-driven
/// and directed drops (trace, replica cleanup, persisted state, billing).
fn remove_service(
    state: &mut ExperimentState,
    victim: toto_fabric::ids::ServiceId,
    edition: EditionKind,
    now: SimTime,
) {
    if let Some(name) = state.cluster.service(victim).map(|s| s.name.clone()) {
        state.by_name.remove(&name);
    }
    let nodes: Vec<u32> = state
        .cluster
        .service(victim)
        .map(|s| {
            s.replicas
                .iter()
                .filter_map(|r| state.cluster.replica(*r))
                .map(|r| r.node.raw())
                .collect()
        })
        .unwrap_or_default();
    let replica_ids: Vec<u64> = state
        .cluster
        .service(victim)
        .map(|s| s.replicas.iter().map(|r| r.raw()).collect())
        .unwrap_or_default();
    if state.cluster.remove_service(victim).is_some() {
        toto_trace::emit(toto_trace::EventKind::DbDrop, || {
            toto_trace::EventBody::DbDrop {
                service: victim.raw(),
                edition: edition.index() as u64,
            }
        });
        for (node, rid) in nodes.into_iter().zip(replica_ids) {
            state.rgmanagers[node as usize].forget_replica(rid);
        }
        let identity = state
            .identities
            .remove(&victim.raw())
            .unwrap_or(victim.raw());
        RgManager::clear_persisted_state(&mut state.naming, identity);
        if let Some(b) = state.billing.get_mut(&victim.raw()) {
            b.dropped_at = Some(now);
        }
    }
}

/// Node-level reading every snapshot period (Figure 13).
fn node_snapshot(state: &mut ExperimentState, sched: &mut Scheduler<ExperimentState>) {
    let now = sched.now();
    for node in state.cluster.nodes() {
        state.telemetry.node_snapshots.push(NodeSnapshot {
            time: now,
            node: node.id.raw(),
            disk_gb: node.load[state.disk],
            cores: node.load[state.cpu],
        });
    }
    let next = now + state.node_snapshot_period;
    if next <= state.end {
        sched.schedule_at(next, node_snapshot);
    }
}

// ---------------------------------------------------------------------------
// Chaos fault handlers
// ---------------------------------------------------------------------------

/// Seconds from experiment start (the clock chaos records use).
fn chaos_at_secs(state: &ExperimentState, now: SimTime) -> u64 {
    now.saturating_since(state.start).as_secs()
}

fn metric_for(state: &ExperimentState, resource: ResourceKind) -> MetricId {
    match resource {
        ResourceKind::Cpu => state.cpu,
        ResourceKind::Memory => state.memory,
        ResourceKind::Disk => state.disk,
    }
}

/// Resolve a plan's optional explicit node to a live victim. An explicit
/// node that is out of range or already down makes the fault a no-op
/// (the plan said "kill node 7" and node 7 is already dead); an
/// unspecified node draws uniformly from the chaos RNG stream.
fn chaos_pick_victim(state: &mut ExperimentState, requested: Option<u32>) -> Option<NodeId> {
    match requested {
        Some(n) => {
            if (n as usize) < state.cluster.node_count() && state.cluster.node(NodeId(n)).up {
                Some(NodeId(n))
            } else {
                None
            }
        }
        None => state
            .chaos
            .as_mut()
            .expect("chaos handler without runtime")
            .pick_up_node(&state.cluster),
    }
}

/// Crash one node through the PLB and return (failovers, cores moved),
/// measured from the telemetry the crash appended.
fn chaos_crash_one(state: &mut ExperimentState, node: NodeId, now: SimTime) -> (u64, f64) {
    let before = state.telemetry.failovers.len();
    let events = {
        let mut plb = state.plb.clone();
        let ev = plb.crash_node(&mut state.cluster, node, now);
        state.plb = plb;
        ev
    };
    process_failovers(state, events);
    let moved = &state.telemetry.failovers[before..];
    (
        moved.len() as u64,
        moved.iter().map(|f| f.cores_moved).sum(),
    )
}

/// Reserved cores of the services whose replicas a graceful drain moved.
/// Drain moves are not telemetry failovers, so the cores are summed from
/// the catalog directly.
fn drained_cores(state: &ExperimentState, events: &[FailoverEvent]) -> f64 {
    events
        .iter()
        .filter_map(|e| state.cluster.service(e.service))
        .map(|svc| {
            let (_, slo_index) = decode_tag(svc.tag);
            state
                .catalog
                .get(slo_index)
                .map(|s| s.vcores as f64)
                .unwrap_or(0.0)
        })
        .sum()
}

/// `nodeCrash`: hard-kill a node, fail over what fits, restart it after
/// `downtime_secs`.
fn chaos_crash(
    state: &mut ExperimentState,
    sched: &mut Scheduler<ExperimentState>,
    requested: Option<u32>,
    downtime_secs: u64,
) {
    let now = sched.now();
    let Some(node) = chaos_pick_victim(state, requested) else {
        return;
    };
    toto_trace::emit(toto_trace::EventKind::ChaosNodeCrash, || {
        toto_trace::EventBody::ChaosNodeCrash {
            node: u64::from(node.raw()),
            downtime_secs,
        }
    });
    let (failovers, failed_over_cores) = chaos_crash_one(state, node, now);
    let redirects_at_fault = state.admission.redirects().len() as u64;
    let at_secs = chaos_at_secs(state, now);
    let rt = state.chaos.as_mut().expect("chaos handler without runtime");
    rt.report.faults.push(ChaosFaultRecord {
        at_secs,
        kind: "node_crash".into(),
        node: Some(node.raw()),
        failovers,
        failed_over_cores,
        redirects_delta: 0,
        recovery_secs: None,
    });
    let idx = rt.report.faults.len() - 1;
    let t_up = now + SimDuration::from_secs(downtime_secs);
    if t_up <= state.end {
        sched.schedule_at(t_up, move |s: &mut ExperimentState, sc| {
            chaos_restart_node(s, sc, node, idx, redirects_at_fault, now);
        });
    }
}

/// Bring a crashed/drained node back and close its fault record.
fn chaos_restart_node(
    state: &mut ExperimentState,
    sched: &mut Scheduler<ExperimentState>,
    node: NodeId,
    record_idx: usize,
    redirects_at_fault: u64,
    fault_time: SimTime,
) {
    state.cluster.set_node_up(node, true);
    toto_trace::emit(toto_trace::EventKind::ChaosNodeRestart, || {
        toto_trace::EventBody::ChaosNodeRestart {
            node: u64::from(node.raw()),
        }
    });
    let redirects_now = state.admission.redirects().len() as u64;
    let recovery = sched.now().saturating_since(fault_time).as_secs();
    if let Some(rec) = state
        .chaos
        .as_mut()
        .and_then(|rt| rt.report.faults.get_mut(record_idx))
    {
        rec.redirects_delta = redirects_now.saturating_sub(redirects_at_fault);
        rec.recovery_secs = Some(recovery);
    }
}

/// `rollingRestart` slot: gracefully drain one node (all replicas moved
/// before it goes down) and restart it after `downtime_secs`. A drain the
/// PLB refuses — moving out would kill a service's last live replica —
/// records `drain_blocked` and leaves the node up.
fn chaos_drain(
    state: &mut ExperimentState,
    sched: &mut Scheduler<ExperimentState>,
    node_raw: u32,
    downtime_secs: u64,
) {
    let now = sched.now();
    if (node_raw as usize) >= state.cluster.node_count() || !state.cluster.node(NodeId(node_raw)).up
    {
        return;
    }
    let node = NodeId(node_raw);
    let result = {
        let mut plb = state.plb.clone();
        let r = plb.drain_node(&mut state.cluster, node, now);
        state.plb = plb;
        r
    };
    let at_secs = chaos_at_secs(state, now);
    match result {
        Ok(events) => {
            toto_trace::emit(toto_trace::EventKind::ChaosNodeDrain, || {
                toto_trace::EventBody::ChaosNodeDrain {
                    node: u64::from(node.raw()),
                    downtime_secs,
                }
            });
            let failovers = events.len() as u64;
            let failed_over_cores = drained_cores(state, &events);
            process_failovers(state, events);
            let redirects_at_fault = state.admission.redirects().len() as u64;
            let rt = state.chaos.as_mut().expect("chaos handler without runtime");
            rt.report.faults.push(ChaosFaultRecord {
                at_secs,
                kind: "drain".into(),
                node: Some(node.raw()),
                failovers,
                failed_over_cores,
                redirects_delta: 0,
                recovery_secs: None,
            });
            let idx = rt.report.faults.len() - 1;
            let t_up = now + SimDuration::from_secs(downtime_secs);
            if t_up <= state.end {
                sched.schedule_at(t_up, move |s: &mut ExperimentState, sc| {
                    chaos_restart_node(s, sc, node, idx, redirects_at_fault, now);
                });
            }
        }
        Err(_) => {
            let rt = state.chaos.as_mut().expect("chaos handler without runtime");
            rt.report.faults.push(ChaosFaultRecord {
                at_secs,
                kind: "drain_blocked".into(),
                node: Some(node.raw()),
                failovers: 0,
                failed_over_cores: 0.0,
                redirects_delta: 0,
                recovery_secs: Some(0),
            });
        }
    }
}

/// `decommission`: drain a node and never bring it back. Like an
/// operator pulling hardware, it refuses (records `decommission_blocked`)
/// rather than killing a service's last live replica.
fn chaos_decommission(
    state: &mut ExperimentState,
    sched: &mut Scheduler<ExperimentState>,
    requested: Option<u32>,
) {
    let now = sched.now();
    let Some(node) = chaos_pick_victim(state, requested) else {
        return;
    };
    let result = {
        let mut plb = state.plb.clone();
        let r = plb.drain_node(&mut state.cluster, node, now);
        state.plb = plb;
        r
    };
    let at_secs = chaos_at_secs(state, now);
    match result {
        Ok(events) => {
            toto_trace::emit(toto_trace::EventKind::ChaosNodeDecommission, || {
                toto_trace::EventBody::ChaosNodeDecommission {
                    node: u64::from(node.raw()),
                }
            });
            let failovers = events.len() as u64;
            let failed_over_cores = drained_cores(state, &events);
            process_failovers(state, events);
            let rt = state.chaos.as_mut().expect("chaos handler without runtime");
            rt.report.faults.push(ChaosFaultRecord {
                at_secs,
                kind: "decommission".into(),
                node: Some(node.raw()),
                failovers,
                failed_over_cores,
                redirects_delta: 0,
                recovery_secs: None, // permanent
            });
        }
        Err(_) => {
            let rt = state.chaos.as_mut().expect("chaos handler without runtime");
            rt.report.faults.push(ChaosFaultRecord {
                at_secs,
                kind: "decommission_blocked".into(),
                node: Some(node.raw()),
                failovers: 0,
                failed_over_cores: 0.0,
                redirects_delta: 0,
                recovery_secs: Some(0),
            });
        }
    }
}

/// `capacityDegrade`: shrink one resource's logical per-node capacity to
/// `factor` of its current value (firmware throttling, a noisy
/// neighbour, a sector of bad disks). The original capacity is saved
/// once so a later restore is exact even under repeated degrades.
fn chaos_degrade(
    state: &mut ExperimentState,
    sched: &mut Scheduler<ExperimentState>,
    resource: ResourceKind,
    factor: f64,
) {
    let now = sched.now();
    let metric = metric_for(state, resource);
    let current = state.cluster.metrics().def(metric).node_capacity;
    let new_cap = current * factor;
    let prev = state.cluster.set_metric_capacity(metric, new_cap);
    toto_trace::emit(toto_trace::EventKind::ChaosCapacityDegrade, || {
        toto_trace::EventBody::ChaosCapacityDegrade {
            resource: resource.to_string(),
            node_capacity: new_cap,
        }
    });
    let at_secs = chaos_at_secs(state, now);
    let rt = state.chaos.as_mut().expect("chaos handler without runtime");
    let saved = &mut rt.saved_capacity[resource.index()];
    if saved.is_none() {
        *saved = Some(prev);
    }
    rt.report.faults.push(ChaosFaultRecord {
        at_secs,
        kind: format!("capacity_degrade:{resource}"),
        node: None,
        failovers: 0,
        failed_over_cores: 0.0,
        redirects_delta: 0,
        recovery_secs: None,
    });
}

/// Undo a `capacityDegrade` at its `restoreHour`.
fn chaos_restore_capacity(
    state: &mut ExperimentState,
    sched: &mut Scheduler<ExperimentState>,
    resource: ResourceKind,
) {
    let Some(original) = state
        .chaos
        .as_mut()
        .and_then(|rt| rt.saved_capacity[resource.index()].take())
    else {
        return;
    };
    let now = sched.now();
    let metric = metric_for(state, resource);
    state.cluster.set_metric_capacity(metric, original);
    toto_trace::emit(toto_trace::EventKind::ChaosCapacityDegrade, || {
        toto_trace::EventBody::ChaosCapacityDegrade {
            resource: resource.to_string(),
            node_capacity: original,
        }
    });
    let now_secs = chaos_at_secs(state, now);
    let kind = format!("capacity_degrade:{resource}");
    if let Some(rec) = state.chaos.as_mut().and_then(|rt| {
        rt.report
            .faults
            .iter_mut()
            .rev()
            .find(|f| f.kind == kind && f.recovery_secs.is_none())
    }) {
        rec.recovery_secs = Some(now_secs.saturating_sub(rec.at_secs));
    }
}

/// `reportLoss` window opens: every metric report is independently
/// dropped with probability `p` until the window closes.
fn chaos_report_loss_start(
    state: &mut ExperimentState,
    sched: &mut Scheduler<ExperimentState>,
    drop_probability: f64,
) {
    let at_secs = chaos_at_secs(state, sched.now());
    let rt = state.chaos.as_mut().expect("chaos handler without runtime");
    rt.drop_probability = Some(drop_probability);
    rt.report.faults.push(ChaosFaultRecord {
        at_secs,
        kind: "report_loss".into(),
        node: None,
        failovers: 0,
        failed_over_cores: 0.0,
        redirects_delta: 0,
        recovery_secs: None,
    });
}

/// `reportLoss` window closes.
fn chaos_report_loss_end(state: &mut ExperimentState, sched: &mut Scheduler<ExperimentState>) {
    let now_secs = chaos_at_secs(state, sched.now());
    let rt = state.chaos.as_mut().expect("chaos handler without runtime");
    rt.drop_probability = None;
    if let Some(rec) = rt
        .report
        .faults
        .iter_mut()
        .rev()
        .find(|f| f.kind == "report_loss" && f.recovery_secs.is_none())
    {
        rec.recovery_secs = Some(now_secs.saturating_sub(rec.at_secs));
    }
}

/// `failoverStorm`: crash several nodes at once (a rack power event).
/// All victims are marked down *before* any replica moves so the PLB
/// never fails a replica over onto a node that is about to die in the
/// same event — which would also (correctly) trip oracle 1.
fn chaos_storm(
    state: &mut ExperimentState,
    sched: &mut Scheduler<ExperimentState>,
    node_count: u32,
    downtime_secs: u64,
) {
    let now = sched.now();
    let nodes = state
        .chaos
        .as_mut()
        .expect("chaos handler without runtime")
        .pick_up_nodes(&state.cluster, node_count);
    if nodes.is_empty() {
        return;
    }
    toto_trace::emit(toto_trace::EventKind::ChaosStorm, || {
        toto_trace::EventBody::ChaosStorm {
            nodes: nodes.len() as u64,
            downtime_secs,
        }
    });
    for &node in &nodes {
        state.cluster.set_node_up(node, false);
    }
    let mut failovers = 0u64;
    let mut failed_over_cores = 0.0f64;
    for &node in &nodes {
        toto_trace::emit(toto_trace::EventKind::ChaosNodeCrash, || {
            toto_trace::EventBody::ChaosNodeCrash {
                node: u64::from(node.raw()),
                downtime_secs,
            }
        });
        let (f, c) = chaos_crash_one(state, node, now);
        failovers += f;
        failed_over_cores += c;
    }
    let redirects_at_fault = state.admission.redirects().len() as u64;
    let at_secs = chaos_at_secs(state, now);
    let rt = state.chaos.as_mut().expect("chaos handler without runtime");
    rt.report.faults.push(ChaosFaultRecord {
        at_secs,
        kind: "storm".into(),
        node: None,
        failovers,
        failed_over_cores,
        redirects_delta: 0,
        recovery_secs: None,
    });
    let idx = rt.report.faults.len() - 1;
    let t_up = now + SimDuration::from_secs(downtime_secs);
    if t_up <= state.end {
        sched.schedule_at(t_up, move |s: &mut ExperimentState, sc| {
            for (i, &node) in nodes.iter().enumerate() {
                s.cluster.set_node_up(node, true);
                toto_trace::emit(toto_trace::EventKind::ChaosNodeRestart, || {
                    toto_trace::EventBody::ChaosNodeRestart {
                        node: u64::from(node.raw()),
                    }
                });
                // Close the storm record once, from the shared end time.
                if i == 0 {
                    let redirects_now = s.admission.redirects().len() as u64;
                    let recovery = sc.now().saturating_since(now).as_secs();
                    if let Some(rec) = s
                        .chaos
                        .as_mut()
                        .and_then(|rt| rt.report.faults.get_mut(idx))
                    {
                        rec.redirects_delta = redirects_now.saturating_sub(redirects_at_fault);
                        rec.recovery_secs = Some(recovery);
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_scenario(density: u32, hours: u64) -> ScenarioSpec {
        let mut s = ScenarioSpec::gen5_stage_cluster(density);
        s.duration_hours = hours;
        s
    }

    #[test]
    fn short_run_produces_consistent_result() {
        let result =
            DensityExperiment::new(short_scenario(110, 4), ExperimentOverrides::default()).run();
        assert_eq!(result.bootstrap.services.len(), 220);
        assert!(result.final_reserved_cores > 1000.0);
        assert!(result.final_disk_gb > 10_000.0);
        // Hourly snapshots at h = 0..=4 inclusive of the end instant.
        assert_eq!(result.telemetry.reserved_cores.len(), 5);
        assert!(result.revenue.adjusted() > 0.0);
        // Billing covers at least the bootstrap population.
        assert!(result.billing.len() >= 220);
    }

    #[test]
    fn runs_are_reproducible_with_fixed_seeds() {
        let a =
            DensityExperiment::new(short_scenario(100, 3), ExperimentOverrides::default()).run();
        let b =
            DensityExperiment::new(short_scenario(100, 3), ExperimentOverrides::default()).run();
        assert_eq!(a.final_reserved_cores, b.final_reserved_cores);
        assert_eq!(a.final_disk_gb, b.final_disk_gb);
        assert_eq!(a.redirect_count, b.redirect_count);
        assert_eq!(
            a.telemetry.failover_count(None),
            b.telemetry.failover_count(None)
        );
        assert_eq!(a.revenue, b.revenue);
    }

    #[test]
    fn plb_seed_changes_do_not_change_population() {
        let mut s1 = short_scenario(100, 3);
        s1.plb_seed = 1;
        let mut s2 = short_scenario(100, 3);
        s2.plb_seed = 999;
        let a = DensityExperiment::new(s1, ExperimentOverrides::default()).run();
        let b = DensityExperiment::new(s2, ExperimentOverrides::default()).run();
        // Same population stream: same number of databases created.
        assert_eq!(a.created_during_run, b.created_during_run);
    }

    #[test]
    fn higher_density_reserves_more_cores() {
        let lo =
            DensityExperiment::new(short_scenario(100, 8), ExperimentOverrides::default()).run();
        let hi =
            DensityExperiment::new(short_scenario(140, 8), ExperimentOverrides::default()).run();
        assert!(
            hi.final_reserved_cores >= lo.final_reserved_cores,
            "140% reserved {} < 100% reserved {}",
            hi.final_reserved_cores,
            lo.final_reserved_cores
        );
    }

    #[test]
    fn node_snapshots_cover_all_nodes() {
        let overrides = ExperimentOverrides {
            node_snapshot_secs: Some(1800),
            ..Default::default()
        };
        let r = DensityExperiment::new(short_scenario(100, 2), overrides).run();
        // Snapshots at 1800s, 3600s, 5400s, 7200s = 4 rounds x 14 nodes.
        assert_eq!(r.telemetry.node_snapshots.len(), 4 * 14);
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;

    fn scenario(density: u32, hours: u64) -> ScenarioSpec {
        let mut s = ScenarioSpec::gen5_stage_cluster(density);
        s.duration_hours = hours;
        s
    }

    fn with_plan(plan: &str) -> ExperimentOverrides {
        ExperimentOverrides {
            chaos: ChaosPlan::named(plan).expect("named plan"),
            ..ExperimentOverrides::default()
        }
    }

    #[test]
    fn node_crash_plan_fails_over_cores_with_quiet_oracles() {
        let r = DensityExperiment::new(scenario(110, 6), with_plan("node-crash")).run();
        let chaos = r.chaos.expect("chaos report present");
        assert_eq!(
            chaos.oracle_violations, 0,
            "healthy engine must not trip its own oracles"
        );
        assert!(chaos.oracle_checks > 0, "post-dispatch oracle must run");
        let crash = chaos
            .faults
            .iter()
            .find(|f| f.kind == "node_crash")
            .expect("crash fault recorded");
        assert!(
            crash.failed_over_cores > 0.0,
            "crashing a loaded node must fail over cores"
        );
        assert!(crash.failovers > 0);
        assert_eq!(crash.recovery_secs, Some(1800), "restart closes the fault");
        // Crash failovers count toward the run's QoS KPIs.
        assert!(r.telemetry.failover_count(None) >= crash.failovers as usize);
    }

    #[test]
    fn chaos_runs_are_reproducible() {
        let a = DensityExperiment::new(scenario(100, 5), with_plan("storm")).run();
        let b = DensityExperiment::new(scenario(100, 5), with_plan("storm")).run();
        assert_eq!(
            a.chaos, b.chaos,
            "identical (spec, seed) → identical faults"
        );
        assert_eq!(a.final_reserved_cores, b.final_reserved_cores);
        assert_eq!(a.final_disk_gb, b.final_disk_gb);
        assert_eq!(a.redirect_count, b.redirect_count);
        assert_eq!(a.revenue, b.revenue);
        let chaos = a.chaos.expect("chaos report present");
        assert_eq!(chaos.oracle_violations, 0);
        let storm = chaos
            .faults
            .iter()
            .find(|f| f.kind == "storm")
            .expect("storm fault recorded");
        assert!(storm.failovers > 0, "a 3-node storm must move replicas");
    }

    #[test]
    fn degrade_and_report_loss_plans_complete_cleanly() {
        for plan in ["degrade", "report-loss", "rolling", "decommission"] {
            let r = DensityExperiment::new(scenario(100, 5), with_plan(plan)).run();
            let chaos = r.chaos.unwrap_or_else(|| panic!("{plan}: report present"));
            assert_eq!(chaos.oracle_violations, 0, "{plan}: oracles stay quiet");
            assert!(!chaos.faults.is_empty(), "{plan}: faults recorded");
        }
    }

    #[test]
    fn degrade_restores_original_capacity() {
        let r = DensityExperiment::new(scenario(100, 6), with_plan("degrade")).run();
        let chaos = r.chaos.expect("chaos report present");
        let rec = chaos
            .faults
            .iter()
            .find(|f| f.kind == "capacity_degrade:Disk")
            .expect("degrade fault recorded");
        // Degrade at hour 1, restore at hour 4 → 3 hours to recover.
        assert_eq!(rec.recovery_secs, Some(3 * 3600));
    }

    #[test]
    fn empty_plan_is_byte_inert() {
        let plain = DensityExperiment::new(scenario(100, 3), ExperimentOverrides::default()).run();
        assert!(plain.chaos.is_none(), "no plan → no chaos report");
        let explicit_empty = DensityExperiment::new(
            scenario(100, 3),
            ExperimentOverrides {
                chaos: ChaosPlan::default(),
                ..ExperimentOverrides::default()
            },
        )
        .run();
        assert_eq!(
            plain.final_reserved_cores,
            explicit_empty.final_reserved_cores
        );
        assert_eq!(plain.revenue, explicit_empty.revenue);
        assert_eq!(
            plain.telemetry.failover_count(None),
            explicit_empty.telemetry.failover_count(None)
        );
    }
}

#[cfg(test)]
mod upgrade_tests {
    use super::*;

    #[test]
    fn rolling_upgrade_drains_and_restores_nodes() {
        let mut scenario = ScenarioSpec::gen5_stage_cluster(110);
        scenario.duration_hours = 8;
        let overrides = ExperimentOverrides {
            rolling_upgrade: Some(RollingUpgrade {
                start_hour: 1,
                downtime_hours: 1,
            }),
            ..ExperimentOverrides::default()
        };
        let with_upgrade = DensityExperiment::new(scenario.clone(), overrides).run();
        let baseline = DensityExperiment::new(scenario, ExperimentOverrides::default()).run();
        // The upgraded run completes with consistent accounting and moved
        // replicas around (node snapshots show empty nodes mid-run).
        assert_eq!(with_upgrade.bootstrap.services.len(), 220);
        let min_node_cores = with_upgrade
            .telemetry
            .node_snapshots
            .iter()
            .map(|s| s.cores)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min_node_cores, 0.0, "a drained node should appear empty");
        let baseline_min = baseline
            .telemetry
            .node_snapshots
            .iter()
            .map(|s| s.cores)
            .fold(f64::INFINITY, f64::min);
        assert!(baseline_min > 0.0, "without upgrades no node empties");
        // Drain moves are not failovers.
        assert_eq!(with_upgrade.telemetry.failover_count(None), 0);
    }
}

/// Node-governance pass (§5.5's RgManager-effectiveness measurement):
/// every replica's CPU *demand* is its reservation times a modeled
/// utilization fraction; each node's governor allocates physical cores
/// and the throttled residue is the density study's hidden performance
/// tax. Nothing here is reported to the PLB — the orchestrator's Cpu
/// metric remains the admission-time reservation.
fn governance_tick(state: &mut ExperimentState, sched: &mut Scheduler<ExperimentState>) {
    let now = sched.now();
    let replicas: Vec<(u64, u64, u32, ReplicaRole, EditionKind, SimTime, f64)> = state
        .cluster
        .replicas()
        .map(|r| {
            let svc = state.cluster.service(r.service).expect("replica's service");
            (
                r.id.raw(),
                r.service.raw(),
                r.node.raw(),
                r.role,
                edition_of(svc.tag),
                svc.created_at,
                r.load[state.cpu],
            )
        })
        .collect();
    let mut demands: Vec<std::collections::BTreeMap<u64, toto_rgmanager::governance::CpuDemand>> =
        vec![std::collections::BTreeMap::new(); state.governors.len()];
    for (rid, service, node, role, edition, created_at, reserved) in replicas {
        let identity = state.identities.get(&service).copied().unwrap_or(service);
        let role_kind = match role {
            ReplicaRole::Primary => ReplicaRoleKind::Primary,
            ReplicaRole::Secondary => ReplicaRoleKind::Secondary,
        };
        let req = ReportRequest {
            replica: rid,
            service: identity,
            role: role_kind,
            edition,
            resource: ResourceKind::Cpu,
            created_at,
            now,
            actual_load: 0.05,
        };
        let utilization = state.rgmanagers[node as usize]
            .compute_report(&mut state.naming, &req)
            .clamp(0.0, 4.0);
        demands[node as usize].insert(
            rid,
            toto_rgmanager::governance::CpuDemand {
                reserved,
                demanded: reserved * utilization,
            },
        );
    }
    let mut throttled_total = 0.0;
    let mut contended = 0u64;
    for (node, demand) in demands.iter().enumerate() {
        if demand.is_empty() {
            continue;
        }
        let before = state.governors[node].stats();
        state.governors[node].govern(demand);
        let after = state.governors[node].stats();
        throttled_total += after.throttled_core_intervals - before.throttled_core_intervals;
        contended += after.contended_passes - before.contended_passes;
    }
    let cumulative = state.telemetry.cpu_throttling.last_value().unwrap_or(0.0) + throttled_total;
    state.telemetry.cpu_throttling.push(now, cumulative);
    state.telemetry.contended_governance_passes += contended;
    let next = now + state.report_period;
    if next <= state.end {
        sched.schedule_at(next, governance_tick);
    }
}
