//! The density-study experiment runner (§5).
//!
//! One experiment = one density level run for a configured duration on a
//! simulated gen5 stage ring:
//!
//! 1. **Bootstrap** (§5.2): create the Table-2 population with growth
//!    frozen, let the PLB place and balance.
//! 2. **Start**: write the model XML into the Naming Service and start
//!    the Population Manager — "each experiment officially began by
//!    modifying the model XML … and instructing the Population Manager to
//!    begin creating and dropping databases".
//! 3. **Run**: replicas report modeled metric loads every report period;
//!    RgManagers refresh models every 15 minutes; the PLB fixes capacity
//!    violations (failovers); the control plane redirects creations the
//!    ring cannot take; telemetry samples everything.
//! 4. **Score**: modeled adjusted revenue per §5.1.

use crate::bootstrap::{bootstrap_population, BootstrapReport};
use crate::defaults;
use crate::population::{PlannedAction, PopulationManager};
use std::collections::BTreeMap;
use toto_controlplane::admission::{AdmissionController, AdmissionOutcome};
use toto_controlplane::slo::{decode_tag, SloCatalog};
use toto_fabric::cluster::{Cluster, ClusterConfig, ReplicaRole};
use toto_fabric::ids::{MetricId, NodeId, ReplicaId};
use toto_fabric::metrics::{MetricDef, MetricRegistry};
use toto_fabric::naming::NamingService;
use toto_fabric::plb::{FailoverEvent, Plb, PlbConfig};
use toto_models::compiled::ReplicaRoleKind;
use toto_rgmanager::{persisted_state_key, ReportRequest, RgManager, MODEL_KEY};
use toto_simcore::event::{Scheduler, Simulation};
use toto_simcore::rng::DetRng;
use toto_simcore::time::{SimDuration, SimTime};
use toto_spec::model::ModelSetSpec;
use toto_spec::population::PopulationModelSpec;
use toto_spec::{EditionKind, ResourceKind, ScenarioSpec};
use toto_telemetry::kpi::{FailoverRecord, NodeSnapshot, Telemetry};
use toto_telemetry::revenue::{BillingRecord, RevenueBreakdown, RevenueParams};

/// Optional deviations from the scenario defaults.
#[derive(Clone, Debug)]
pub struct ExperimentOverrides {
    /// Replace the default population model.
    pub population: Option<PopulationModelSpec>,
    /// Replace the default metric model set.
    pub models: Option<ModelSetSpec>,
    /// Replace the default PLB configuration.
    pub plb: Option<PlbConfig>,
    /// Run proactive balancing during the experiment (on by default —
    /// SF's PLB balances continuously; balancing moves are not failovers).
    pub balance_during_run: bool,
    /// Interval between node-level snapshots, seconds (default 600 — the
    /// paper's Figure 13 uses 10-minute node readings).
    pub node_snapshot_secs: Option<u64>,
    /// Replace the SLA/revenue parameters.
    pub revenue: Option<RevenueParams>,
    /// Optional rolling maintenance upgrade: nodes are drained one at a
    /// time and brought back, as production clusters do mid-experiment
    /// ("the outliers at each density level are when a cluster
    /// maintenance upgrade was occurring", §5.3.2).
    pub rolling_upgrade: Option<RollingUpgrade>,
}

/// A rolling cluster upgrade: starting at `start_hour`, each node in
/// turn is drained, stays down for `downtime_hours`, and comes back
/// before the next node begins.
#[derive(Clone, Copy, Debug)]
pub struct RollingUpgrade {
    /// Hour (from experiment start) the upgrade begins.
    pub start_hour: u64,
    /// How long each node stays drained.
    pub downtime_hours: u64,
}

impl Default for ExperimentOverrides {
    fn default() -> Self {
        ExperimentOverrides {
            population: None,
            models: None,
            plb: None,
            balance_during_run: true,
            node_snapshot_secs: None,
            revenue: None,
            rolling_upgrade: None,
        }
    }
}

/// Billing bookkeeping per live database.
#[derive(Clone, Debug)]
struct BillingState {
    edition: EditionKind,
    compute_price_per_hour: f64,
    storage_price_per_gb_hour: f64,
    created_at: SimTime,
    dropped_at: Option<SimTime>,
    disk_sum: f64,
    disk_samples: u64,
    initial_disk: f64,
    downtime_secs: f64,
}

impl BillingState {
    fn to_record(&self, service: u64) -> BillingRecord {
        let avg = if self.disk_samples > 0 {
            self.disk_sum / self.disk_samples as f64
        } else {
            self.initial_disk
        };
        BillingRecord {
            service,
            edition: self.edition,
            compute_price_per_hour: self.compute_price_per_hour,
            storage_price_per_gb_hour: self.storage_price_per_gb_hour,
            created_at: self.created_at,
            dropped_at: self.dropped_at,
            avg_data_gb: avg,
            downtime_secs: self.downtime_secs,
        }
    }
}

/// The mutable state threaded through the event loop.
pub struct ExperimentState {
    scenario: ScenarioSpec,
    cluster: Cluster,
    plb: Plb,
    naming: NamingService,
    rgmanagers: Vec<RgManager>,
    governors: Vec<toto_rgmanager::governance::NodeGovernor>,
    admission: AdmissionController,
    catalog: SloCatalog,
    popmgr: PopulationManager,
    telemetry: Telemetry,
    billing: BTreeMap<u64, BillingState>,
    qos_rng: DetRng,
    /// Stable per-database identities (hash of the creation name), keyed
    /// by fabric service id. The identity — not the infrastructure id —
    /// drives model pattern membership and persisted-state keys, so the
    /// same Population Manager stream produces the same database
    /// behaviours in every experiment regardless of admission history,
    /// exactly as the paper's fixed-seed design intends (§5.2).
    identities: std::collections::BTreeMap<u64, u64>,
    cpu: MetricId,
    memory: MetricId,
    disk: MetricId,
    end: SimTime,
    report_period: SimDuration,
    node_snapshot_period: SimDuration,
    balance_during_run: bool,
}

/// Everything an experiment run produces.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// The scenario that was run.
    pub scenario: ScenarioSpec,
    /// All collected telemetry.
    pub telemetry: Telemetry,
    /// Aggregate modeled adjusted revenue (§5.1).
    pub revenue: RevenueBreakdown,
    /// Per-database billing records.
    pub billing: Vec<BillingRecord>,
    /// Reserved cores at the end of the run.
    pub final_reserved_cores: f64,
    /// Cluster disk usage at the end of the run, GB.
    pub final_disk_gb: f64,
    /// Total creation redirects.
    pub redirect_count: usize,
    /// Every creation redirect, in time order.
    pub redirects: Vec<toto_controlplane::admission::RedirectEvent>,
    /// Hour (simulated) of the first creation redirect, if any.
    pub first_redirect_hour: Option<u64>,
    /// What bootstrap produced (Tables 2–3).
    pub bootstrap: BootstrapReport,
    /// Databases created by the Population Manager during the run.
    pub created_during_run: u64,
}

/// The experiment runner.
pub struct DensityExperiment {
    scenario: ScenarioSpec,
    overrides: ExperimentOverrides,
}

impl DensityExperiment {
    /// Configure an experiment.
    pub fn new(scenario: ScenarioSpec, overrides: ExperimentOverrides) -> Self {
        DensityExperiment {
            scenario,
            overrides,
        }
    }

    /// Run to completion and score.
    pub fn run(self) -> ExperimentResult {
        let DensityExperiment {
            scenario,
            overrides,
        } = self;

        // --- Cluster and metrics -----------------------------------------
        let mut metrics = MetricRegistry::new();
        let cpu = metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: scenario.cpu_capacity_per_node(),
            balancing_weight: 1.0,
        });
        let memory = metrics.register(MetricDef {
            name: "Memory".into(),
            node_capacity: scenario.memory_per_node_gb * 0.9,
            balancing_weight: 0.3,
        });
        let disk = metrics.register(MetricDef {
            name: "Disk".into(),
            node_capacity: scenario.disk_capacity_per_node(),
            balancing_weight: 1.0,
        });
        let mut cluster = Cluster::new(ClusterConfig {
            node_count: scenario.node_count,
            metrics,
            fault_domains: scenario.fault_domains,
        });
        let mut plb = Plb::new(overrides.plb.clone().unwrap_or_default(), scenario.plb_seed);
        let catalog = SloCatalog::gen5();

        // --- Bootstrap ----------------------------------------------------
        // The built-in mix and the gen5 catalog are compiled together, so
        // a failure here is a programming error, not a runtime condition.
        toto_trace::emit(toto_trace::EventKind::Phase, || {
            toto_trace::EventBody::Phase {
                label: "bootstrap".to_string(),
            }
        });
        let bootstrap = bootstrap_population(
            &mut cluster,
            &mut plb,
            &catalog,
            &scenario,
            cpu,
            memory,
            disk,
        )
        .expect("bootstrap mix resolves against the gen5 catalog");

        // The experiment clock starts one week after the bootstrap epoch:
        // the initial population is pre-aged (its databases must not
        // re-trigger initial-creation growth — the paper freezes growth
        // during bootstrap for exactly this reason), and a whole number of
        // weeks keeps the epoch-is-Monday calendar alignment.
        let start = SimTime::ZERO + SimDuration::from_days(7);

        // --- Toto orchestrator: write models, seed persisted state --------
        let mut naming = NamingService::new();
        let model_set = overrides.models.clone().unwrap_or_else(|| {
            defaults::gen5_model_set(scenario.model_seed, scenario.report_period_secs)
        });
        naming.write(MODEL_KEY, model_set.to_xml_string());
        let mut billing: BTreeMap<u64, BillingState> = BTreeMap::new();
        let mut identities: std::collections::BTreeMap<u64, u64> =
            std::collections::BTreeMap::new();
        for (id, edition, slo_index, initial_disk) in &bootstrap.services {
            let identity = toto_simcore::rng::stable_id(
                &cluster.service(*id).expect("bootstrap service").name,
            );
            identities.insert(id.raw(), identity);
            if edition.disk_is_persisted() {
                naming.write(
                    &persisted_state_key(ResourceKind::Disk, identity),
                    format!("{initial_disk:?}"),
                );
            }
            let slo = catalog.get(*slo_index).expect("bootstrap SLO");
            billing.insert(
                id.raw(),
                BillingState {
                    edition: *edition,
                    compute_price_per_hour: slo.compute_price_per_hour,
                    storage_price_per_gb_hour: slo.storage_price_per_gb_hour,
                    created_at: start,
                    dropped_at: None,
                    disk_sum: 0.0,
                    disk_samples: 0,
                    initial_disk: *initial_disk,
                    downtime_secs: 0.0,
                },
            );
        }

        let mut rgmanagers: Vec<RgManager> = (0..scenario.node_count).map(RgManager::new).collect();
        for rg in &mut rgmanagers {
            rg.refresh_models(&mut naming);
        }
        let governors: Vec<toto_rgmanager::governance::NodeGovernor> = (0..scenario.node_count)
            .map(|_| toto_rgmanager::governance::NodeGovernor::new(scenario.cores_per_node))
            .collect();

        let population_spec = overrides
            .population
            .clone()
            .unwrap_or_else(|| defaults::gen5_population_model(scenario.population_seed));
        let popmgr = PopulationManager::new(&population_spec, &catalog);

        let mut telemetry = Telemetry::new();
        telemetry.bootstrap_placement_failures = u64::from(bootstrap.placement_failures);

        let end = start + SimDuration::from_hours(scenario.duration_hours);
        let state = ExperimentState {
            report_period: SimDuration::from_secs(scenario.report_period_secs),
            node_snapshot_period: SimDuration::from_secs(
                overrides.node_snapshot_secs.unwrap_or(600),
            ),
            balance_during_run: overrides.balance_during_run,
            // QoS downtime draws share the PLB seed lineage: they are part
            // of the run-to-run non-determinism the paper attributes to SF.
            qos_rng: DetRng::seed_from_u64(scenario.plb_seed ^ 0x00D0_3713),
            identities,
            scenario,
            cluster,
            plb,
            naming,
            rgmanagers,
            governors,
            admission: AdmissionController::new(cpu, memory, disk),
            catalog,
            popmgr,
            telemetry,
            billing,
            cpu,
            memory,
            disk,
            end,
        };

        let mut sim = Simulation::new(state);
        let refresh = SimDuration::from_secs(sim.state().scenario.model_refresh_secs);
        let report = sim.state().report_period;
        let snapshot = sim.state().node_snapshot_period;
        sim.scheduler().schedule_at(start, population_tick);
        sim.scheduler().schedule_at(start + report, report_metrics);
        sim.scheduler().schedule_at(start + refresh, refresh_models);
        sim.scheduler()
            .schedule_at(start + SimDuration::from_secs(300), plb_tick);
        sim.scheduler().schedule_at(start + report, governance_tick);
        sim.scheduler().schedule_at(start + snapshot, node_snapshot);
        if let Some(upgrade) = overrides.rolling_upgrade {
            let nodes = sim.state().cluster.node_count() as u64;
            for i in 0..nodes {
                let t_drain = start
                    + SimDuration::from_hours(upgrade.start_hour + i * upgrade.downtime_hours);
                if t_drain >= end {
                    break;
                }
                let node = NodeId(i as u32);
                sim.scheduler()
                    .schedule_at(t_drain, move |s: &mut ExperimentState, sc| {
                        let events = {
                            let mut plb = s.plb.clone();
                            let ev = plb.drain_node(&mut s.cluster, node, sc.now());
                            s.plb = plb;
                            ev
                        };
                        // Drain moves reset non-persisted state but are not
                        // capacity-violation failovers.
                        process_failovers(s, events);
                    });
                let t_up = t_drain + SimDuration::from_hours(upgrade.downtime_hours);
                if t_up <= end {
                    sim.scheduler()
                        .schedule_at(t_up, move |s: &mut ExperimentState, _| {
                            s.cluster.set_node_up(node, true);
                        });
                }
            }
        }
        toto_trace::emit(toto_trace::EventKind::Phase, || {
            toto_trace::EventBody::Phase {
                label: "run".to_string(),
            }
        });
        sim.run_until(end);

        // --- Score ---------------------------------------------------------
        toto_trace::emit(toto_trace::EventKind::Phase, || {
            toto_trace::EventBody::Phase {
                label: "score".to_string(),
            }
        });
        let state = sim.into_state();
        let params = overrides.revenue.unwrap_or_else(|| RevenueParams {
            // Credits are assessed against the experiment's billing window
            // (the paper subtracts "service credits based on the SLA" from
            // the revenue modeled over the run).
            credit_window_hours: state.scenario.duration_hours as f64,
            ..RevenueParams::default()
        });
        let records: Vec<BillingRecord> = state
            .billing
            .iter()
            .map(|(svc, b)| b.to_record(*svc))
            .collect();
        let revenue = params.score_all(&records, end);
        let first_redirect_hour = state
            .admission
            .redirects()
            .first()
            .map(|r| r.time.saturating_since(start).as_secs() / 3600);
        ExperimentResult {
            final_reserved_cores: state.cluster.total_load(state.cpu),
            final_disk_gb: state.cluster.total_load(state.disk),
            redirect_count: state.admission.redirects().len(),
            redirects: state.admission.redirects().to_vec(),
            first_redirect_hour,
            created_during_run: state.popmgr.created_count(),
            scenario: state.scenario,
            telemetry: state.telemetry,
            revenue,
            billing: records,
            bootstrap,
        }
    }
}

// ---------------------------------------------------------------------------
// Event handlers
// ---------------------------------------------------------------------------

fn edition_of(tag: u64) -> EditionKind {
    decode_tag(tag).0
}

/// Every report period each replica consults its node's RgManager for the
/// disk and memory metrics and reports the modeled loads to the PLB.
fn report_metrics(state: &mut ExperimentState, sched: &mut Scheduler<ExperimentState>) {
    let now = sched.now();
    // One row per replica: (id, service, node, role, edition, created_at,
    // disk_load, mem_load). Collect first: reporting mutates the cluster.
    type ReplicaRow = (
        ReplicaId,
        u64,
        u32,
        ReplicaRole,
        EditionKind,
        SimTime,
        f64,
        f64,
    );
    let replicas: Vec<ReplicaRow> = state
        .cluster
        .replicas()
        .map(|r| {
            let svc = state.cluster.service(r.service).expect("replica's service");
            (
                r.id,
                r.service.raw(),
                r.node.raw(),
                r.role,
                edition_of(svc.tag),
                svc.created_at,
                r.load[state.disk],
                r.load[state.memory],
            )
        })
        .collect();
    for (rid, service, node, role, edition, created_at, disk_load, mem_load) in replicas {
        let identity = state.identities.get(&service).copied().unwrap_or(service);
        let role_kind = match role {
            ReplicaRole::Primary => ReplicaRoleKind::Primary,
            ReplicaRole::Secondary => ReplicaRoleKind::Secondary,
        };
        for (resource, metric, actual) in [
            (ResourceKind::Disk, state.disk, disk_load),
            (ResourceKind::Memory, state.memory, mem_load),
        ] {
            let req = ReportRequest {
                replica: rid.raw(),
                service: identity,
                role: role_kind,
                edition,
                resource,
                created_at,
                now,
                actual_load: actual,
            };
            let value = state.rgmanagers[node as usize].compute_report(&mut state.naming, &req);
            state.cluster.report_load(rid, metric, value);
            if resource == ResourceKind::Disk && role == ReplicaRole::Primary {
                if let Some(b) = state.billing.get_mut(&service) {
                    b.disk_sum += value;
                    b.disk_samples += 1;
                }
            }
        }
    }
    let next = now + state.report_period;
    if next <= state.end {
        sched.schedule_at(next, report_metrics);
    }
}

/// Every 15 minutes each node's RgManager re-reads the model XML.
fn refresh_models(state: &mut ExperimentState, sched: &mut Scheduler<ExperimentState>) {
    for rg in &mut state.rgmanagers {
        rg.refresh_models(&mut state.naming);
    }
    let next = sched.now() + SimDuration::from_secs(state.scenario.model_refresh_secs);
    if next <= state.end {
        sched.schedule_at(next, refresh_models);
    }
}

/// Sample the customer-visible downtime of one failover.
fn sample_downtime(state: &mut ExperimentState, edition: EditionKind, was_primary: bool) -> f64 {
    if !was_primary {
        return 0.0;
    }
    match edition {
        // GP: detach/reattach remote storage (§3.1) plus connection drops
        // and failed logins while the replica restarts elsewhere.
        EditionKind::StandardGp => 45.0 + state.qos_rng.next_f64() * 135.0,
        // BC: a secondary is promoted quickly, but the paper counts the
        // full customer impact (failed queries, dropped connections,
        // failed login attempts) while the new primary warms up.
        EditionKind::PremiumBc => 20.0 + state.qos_rng.next_f64() * 100.0,
    }
}

/// Convert PLB movement events into telemetry and billing effects.
///
/// Only capacity-violation moves are *failovers* in the paper's sense
/// (§3.1: "A failover means that the replicas' aggregate resource demands
/// on the node have exceeded the node's predefined logical capacity") —
/// routine balancing moves reset non-persisted metric state but are not
/// counted against QoS.
fn process_failovers(state: &mut ExperimentState, events: Vec<FailoverEvent>) {
    for ev in events {
        // The replica restarted on another node either way: the source
        // RgManager forgets its non-persisted metric state.
        state.rgmanagers[ev.from.raw() as usize].forget_replica(ev.replica.raw());
        if !matches!(
            ev.reason,
            toto_fabric::plb::FailoverReason::CapacityViolation(_)
        ) {
            continue;
        }
        let Some(svc) = state.cluster.service(ev.service) else {
            continue;
        };
        let (edition, slo_index) = decode_tag(svc.tag);
        let cores = state
            .catalog
            .get(slo_index)
            .map(|s| s.vcores as f64)
            .unwrap_or(0.0);
        let disk_gb = state
            .cluster
            .replica(ev.replica)
            .map(|r| r.load[state.disk])
            .unwrap_or(0.0);
        let was_primary = ev.role == ReplicaRole::Primary;
        let downtime = sample_downtime(state, edition, was_primary);
        if let Some(b) = state.billing.get_mut(&ev.service.raw()) {
            b.downtime_secs += downtime;
        }
        state.telemetry.failovers.push(FailoverRecord {
            time: ev.time,
            service: ev.service.raw(),
            edition,
            cores_moved: cores,
            disk_gb,
            was_primary,
            downtime_secs: downtime,
        });
    }
}

/// PLB pass: fix capacity violations (and optionally balance).
fn plb_tick(state: &mut ExperimentState, sched: &mut Scheduler<ExperimentState>) {
    let now = sched.now();
    let tick = SimDuration::from_secs(300);
    let mut plb = state.plb.clone();
    let events = plb.fix_violations(&mut state.cluster, now);
    let mut all_events = events;
    if state.balance_during_run {
        all_events.extend(plb.balance(&mut state.cluster, now));
    }
    state.plb = plb;
    process_failovers(state, all_events);
    // Unresolved *disk* violations are customer-visible: a database on a
    // node whose disk capacity is breached is "temporarily needing to
    // wait for resources it has requested" (§1) — failed writes, dropped
    // connections, failed logins (§3.1). The service is degraded rather
    // than fully down, so each PLB tick spent in violation charges 25 %
    // of the interval as effective unavailability to the primaries on
    // the breached node; sustained violations are what make over-dense
    // clusters expensive in SLA credits (§5.3.5).
    let violating_nodes: Vec<u32> = state
        .cluster
        .violations()
        .iter()
        .filter(|(_, m)| *m == state.disk)
        .map(|(n, _)| n.raw())
        .collect();
    if !violating_nodes.is_empty() {
        // Any replica on a breached node hurts its database: a primary
        // fails writes directly, and a local-store secondary that cannot
        // persist stalls the primary's quorum commits.
        let mut hit_services: Vec<u64> = state
            .cluster
            .replicas()
            .filter(|r| violating_nodes.contains(&r.node.raw()))
            .map(|r| r.service.raw())
            .collect();
        hit_services.sort_unstable();
        hit_services.dedup();
        for svc in hit_services {
            if let Some(b) = state.billing.get_mut(&svc) {
                b.downtime_secs += tick.as_secs() as f64 * 0.25;
            }
        }
    }
    let next = now + tick;
    if next <= state.end {
        sched.schedule_at(next, plb_tick);
    }
}

/// Top-of-hour: plan the hour's creates/drops and take the hourly KPI
/// snapshot.
fn population_tick(state: &mut ExperimentState, sched: &mut Scheduler<ExperimentState>) {
    let now = sched.now();
    // Hourly KPI snapshot (Figures 10 and 11).
    state
        .telemetry
        .reserved_cores
        .push(now, state.cluster.total_load(state.cpu));
    state
        .telemetry
        .disk_usage
        .push(now, state.cluster.total_load(state.disk));
    state
        .telemetry
        .creation_redirects
        .push(now, state.admission.redirects().len() as f64);

    for planned in state.popmgr.plan_hour(now) {
        let at = now + SimDuration::from_secs(planned.offset_secs);
        if at > state.end {
            continue;
        }
        match planned.action {
            PlannedAction::Create(edition) => {
                sched.schedule_at(at, move |s: &mut ExperimentState, sc| {
                    create_database(s, edition, sc.now());
                });
            }
            PlannedAction::Drop(edition) => {
                sched.schedule_at(at, move |s: &mut ExperimentState, sc| {
                    drop_database(s, edition, sc.now());
                });
            }
        }
    }
    let next = now + SimDuration::from_hours(1);
    if next <= state.end {
        sched.schedule_at(next, population_tick);
    }
}

/// Execute one create request through the control plane.
fn create_database(state: &mut ExperimentState, edition: EditionKind, now: SimTime) {
    let (slo_index, req) = state.popmgr.make_create_request(edition, &state.catalog);
    let slo = state.catalog.get(slo_index).expect("resolved SLO").clone();
    match state
        .admission
        .try_admit(&mut state.cluster, &mut state.plb, &slo, &req, now)
    {
        AdmissionOutcome::Admitted(id) => {
            toto_trace::emit(toto_trace::EventKind::DbCreate, || {
                toto_trace::EventBody::DbCreate {
                    service: id.raw(),
                    edition: edition.index() as u64,
                    slo: slo_index as u64,
                }
            });
            let identity = toto_simcore::rng::stable_id(&req.name);
            state.identities.insert(id.raw(), identity);
            if edition.disk_is_persisted() {
                state.naming.write(
                    &persisted_state_key(ResourceKind::Disk, identity),
                    format!("{:?}", req.initial_disk_gb),
                );
            }
            state.billing.insert(
                id.raw(),
                BillingState {
                    edition,
                    compute_price_per_hour: slo.compute_price_per_hour,
                    storage_price_per_gb_hour: slo.storage_price_per_gb_hour,
                    created_at: now,
                    dropped_at: None,
                    disk_sum: 0.0,
                    disk_samples: 0,
                    initial_disk: req.initial_disk_gb,
                    downtime_secs: 0.0,
                },
            );
        }
        AdmissionOutcome::Redirected(_) => {
            // Recorded inside the admission controller.
        }
    }
}

/// Execute one drop request.
fn drop_database(state: &mut ExperimentState, edition: EditionKind, now: SimTime) {
    let Some(victim) = state
        .popmgr
        .pick_drop_victim(&state.cluster, edition, state.disk)
    else {
        return;
    };
    let nodes: Vec<u32> = state
        .cluster
        .service(victim)
        .map(|s| {
            s.replicas
                .iter()
                .filter_map(|r| state.cluster.replica(*r))
                .map(|r| r.node.raw())
                .collect()
        })
        .unwrap_or_default();
    let replica_ids: Vec<u64> = state
        .cluster
        .service(victim)
        .map(|s| s.replicas.iter().map(|r| r.raw()).collect())
        .unwrap_or_default();
    if state.cluster.remove_service(victim).is_some() {
        toto_trace::emit(toto_trace::EventKind::DbDrop, || {
            toto_trace::EventBody::DbDrop {
                service: victim.raw(),
                edition: edition.index() as u64,
            }
        });
        for (node, rid) in nodes.into_iter().zip(replica_ids) {
            state.rgmanagers[node as usize].forget_replica(rid);
        }
        let identity = state
            .identities
            .remove(&victim.raw())
            .unwrap_or(victim.raw());
        RgManager::clear_persisted_state(&mut state.naming, identity);
        if let Some(b) = state.billing.get_mut(&victim.raw()) {
            b.dropped_at = Some(now);
        }
    }
}

/// Node-level reading every snapshot period (Figure 13).
fn node_snapshot(state: &mut ExperimentState, sched: &mut Scheduler<ExperimentState>) {
    let now = sched.now();
    for node in state.cluster.nodes() {
        state.telemetry.node_snapshots.push(NodeSnapshot {
            time: now,
            node: node.id.raw(),
            disk_gb: node.load[state.disk],
            cores: node.load[state.cpu],
        });
    }
    let next = now + state.node_snapshot_period;
    if next <= state.end {
        sched.schedule_at(next, node_snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_scenario(density: u32, hours: u64) -> ScenarioSpec {
        let mut s = ScenarioSpec::gen5_stage_cluster(density);
        s.duration_hours = hours;
        s
    }

    #[test]
    fn short_run_produces_consistent_result() {
        let result =
            DensityExperiment::new(short_scenario(110, 4), ExperimentOverrides::default()).run();
        assert_eq!(result.bootstrap.services.len(), 220);
        assert!(result.final_reserved_cores > 1000.0);
        assert!(result.final_disk_gb > 10_000.0);
        // Hourly snapshots at h = 0..=4 inclusive of the end instant.
        assert_eq!(result.telemetry.reserved_cores.len(), 5);
        assert!(result.revenue.adjusted() > 0.0);
        // Billing covers at least the bootstrap population.
        assert!(result.billing.len() >= 220);
    }

    #[test]
    fn runs_are_reproducible_with_fixed_seeds() {
        let a =
            DensityExperiment::new(short_scenario(100, 3), ExperimentOverrides::default()).run();
        let b =
            DensityExperiment::new(short_scenario(100, 3), ExperimentOverrides::default()).run();
        assert_eq!(a.final_reserved_cores, b.final_reserved_cores);
        assert_eq!(a.final_disk_gb, b.final_disk_gb);
        assert_eq!(a.redirect_count, b.redirect_count);
        assert_eq!(
            a.telemetry.failover_count(None),
            b.telemetry.failover_count(None)
        );
        assert_eq!(a.revenue, b.revenue);
    }

    #[test]
    fn plb_seed_changes_do_not_change_population() {
        let mut s1 = short_scenario(100, 3);
        s1.plb_seed = 1;
        let mut s2 = short_scenario(100, 3);
        s2.plb_seed = 999;
        let a = DensityExperiment::new(s1, ExperimentOverrides::default()).run();
        let b = DensityExperiment::new(s2, ExperimentOverrides::default()).run();
        // Same population stream: same number of databases created.
        assert_eq!(a.created_during_run, b.created_during_run);
    }

    #[test]
    fn higher_density_reserves_more_cores() {
        let lo =
            DensityExperiment::new(short_scenario(100, 8), ExperimentOverrides::default()).run();
        let hi =
            DensityExperiment::new(short_scenario(140, 8), ExperimentOverrides::default()).run();
        assert!(
            hi.final_reserved_cores >= lo.final_reserved_cores,
            "140% reserved {} < 100% reserved {}",
            hi.final_reserved_cores,
            lo.final_reserved_cores
        );
    }

    #[test]
    fn node_snapshots_cover_all_nodes() {
        let overrides = ExperimentOverrides {
            node_snapshot_secs: Some(1800),
            ..Default::default()
        };
        let r = DensityExperiment::new(short_scenario(100, 2), overrides).run();
        // Snapshots at 1800s, 3600s, 5400s, 7200s = 4 rounds x 14 nodes.
        assert_eq!(r.telemetry.node_snapshots.len(), 4 * 14);
    }
}

#[cfg(test)]
mod upgrade_tests {
    use super::*;

    #[test]
    fn rolling_upgrade_drains_and_restores_nodes() {
        let mut scenario = ScenarioSpec::gen5_stage_cluster(110);
        scenario.duration_hours = 8;
        let overrides = ExperimentOverrides {
            rolling_upgrade: Some(RollingUpgrade {
                start_hour: 1,
                downtime_hours: 1,
            }),
            ..ExperimentOverrides::default()
        };
        let with_upgrade = DensityExperiment::new(scenario.clone(), overrides).run();
        let baseline = DensityExperiment::new(scenario, ExperimentOverrides::default()).run();
        // The upgraded run completes with consistent accounting and moved
        // replicas around (node snapshots show empty nodes mid-run).
        assert_eq!(with_upgrade.bootstrap.services.len(), 220);
        let min_node_cores = with_upgrade
            .telemetry
            .node_snapshots
            .iter()
            .map(|s| s.cores)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min_node_cores, 0.0, "a drained node should appear empty");
        let baseline_min = baseline
            .telemetry
            .node_snapshots
            .iter()
            .map(|s| s.cores)
            .fold(f64::INFINITY, f64::min);
        assert!(baseline_min > 0.0, "without upgrades no node empties");
        // Drain moves are not failovers.
        assert_eq!(with_upgrade.telemetry.failover_count(None), 0);
    }
}

/// Node-governance pass (§5.5's RgManager-effectiveness measurement):
/// every replica's CPU *demand* is its reservation times a modeled
/// utilization fraction; each node's governor allocates physical cores
/// and the throttled residue is the density study's hidden performance
/// tax. Nothing here is reported to the PLB — the orchestrator's Cpu
/// metric remains the admission-time reservation.
fn governance_tick(state: &mut ExperimentState, sched: &mut Scheduler<ExperimentState>) {
    let now = sched.now();
    let replicas: Vec<(u64, u64, u32, ReplicaRole, EditionKind, SimTime, f64)> = state
        .cluster
        .replicas()
        .map(|r| {
            let svc = state.cluster.service(r.service).expect("replica's service");
            (
                r.id.raw(),
                r.service.raw(),
                r.node.raw(),
                r.role,
                edition_of(svc.tag),
                svc.created_at,
                r.load[state.cpu],
            )
        })
        .collect();
    let mut demands: Vec<std::collections::BTreeMap<u64, toto_rgmanager::governance::CpuDemand>> =
        vec![std::collections::BTreeMap::new(); state.governors.len()];
    for (rid, service, node, role, edition, created_at, reserved) in replicas {
        let identity = state.identities.get(&service).copied().unwrap_or(service);
        let role_kind = match role {
            ReplicaRole::Primary => ReplicaRoleKind::Primary,
            ReplicaRole::Secondary => ReplicaRoleKind::Secondary,
        };
        let req = ReportRequest {
            replica: rid,
            service: identity,
            role: role_kind,
            edition,
            resource: ResourceKind::Cpu,
            created_at,
            now,
            actual_load: 0.05,
        };
        let utilization = state.rgmanagers[node as usize]
            .compute_report(&mut state.naming, &req)
            .clamp(0.0, 4.0);
        demands[node as usize].insert(
            rid,
            toto_rgmanager::governance::CpuDemand {
                reserved,
                demanded: reserved * utilization,
            },
        );
    }
    let mut throttled_total = 0.0;
    let mut contended = 0u64;
    for (node, demand) in demands.iter().enumerate() {
        if demand.is_empty() {
            continue;
        }
        let before = state.governors[node].stats();
        state.governors[node].govern(demand);
        let after = state.governors[node].stats();
        throttled_total += after.throttled_core_intervals - before.throttled_core_intervals;
        contended += after.contended_passes - before.contended_passes;
    }
    let cumulative = state.telemetry.cpu_throttling.last_value().unwrap_or(0.0) + throttled_total;
    state.telemetry.cpu_throttling.push(now, cumulative);
    state.telemetry.contended_governance_passes += contended;
    let next = now + state.report_period;
    if next <= state.end {
        sched.schedule_at(next, governance_tick);
    }
}
