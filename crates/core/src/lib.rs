//! # Toto — benchmarking the efficiency of an orchestrated cloud service
//!
//! A from-scratch reproduction of *Toto — Benchmarking the Efficiency of a
//! Cloud Service* (Moeller, Ye, Lin, Lang — SIGMOD 2021). Toto measures
//! how efficiently a cloud database service co-locates customers by
//! **hijacking the resource-metric reporting path**: instead of running
//! SQL workloads, per-node resource governors ([`toto_rgmanager`]) answer
//! metric RPCs by sampling statistical models of production behaviour, and
//! a [`population::PopulationManager`] drives database create/drop churn.
//! The cluster orchestrator ([`toto_fabric`]) reacts exactly as it would
//! in production — placing, balancing and failing over replicas — so the
//! efficiency/QoS trade-off of any configuration can be measured reliably
//! and repeatably.
//!
//! ## Quick start
//!
//! ```
//! use toto::experiment::{DensityExperiment, ExperimentOverrides};
//! use toto_spec::ScenarioSpec;
//!
//! // A shortened run of the paper's gen5 stage-cluster scenario.
//! let mut scenario = ScenarioSpec::gen5_stage_cluster(110);
//! scenario.duration_hours = 6;
//! let result = DensityExperiment::new(scenario, ExperimentOverrides::default()).run();
//! assert!(result.final_reserved_cores > 0.0);
//! println!(
//!     "reserved {:.0} cores, {} failovers, ${:.0} adjusted revenue",
//!     result.final_reserved_cores,
//!     result.telemetry.failover_count(None),
//!     result.revenue.adjusted(),
//! );
//! ```
//!
//! ## Layout
//!
//! * [`defaults`] — the gen5 model parameters ("trained" on the synthetic
//!   production traces of [`toto_telemetry::synth`]).
//! * [`bootstrap`] — the Table-2 initial population builder.
//! * [`population`] — the Population Manager (§3.3.3).
//! * [`experiment`] — the density-study experiment runner (§5).

pub mod bootstrap;
pub mod defaults;
pub mod directed;
pub mod experiment;
pub mod pools;
pub mod population;

pub use directed::{DirectedAction, DirectedEvent, DirectedSchedule};
pub use experiment::{DensityExperiment, ExperimentOverrides, ExperimentResult};
pub use population::PopulationManager;
