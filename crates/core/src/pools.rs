//! Elastic pools (§5.5 future work).
//!
//! "For our experiments the population of databases was restricted to SQL
//! DB singletons, but other offerings such as Elastic Pools (which allow
//! for multi-tenancy inside a single SQL DB instance) will add to
//! environment accuracy." An elastic pool is one orchestrated service —
//! one replica set, one CPU reservation — hosting many member databases
//! whose resource usage aggregates into the pool's reported metrics. The
//! efficiency pitch: members share the pool's reservation, so a pool of
//! bursty databases reserves far fewer cores than the same databases as
//! singletons.

use toto_fabric::cluster::Cluster;
use toto_fabric::ids::{MetricId, ServiceId};
use toto_models::compiled::{CompiledModelSet, ReplicaRoleKind, SampleContext};
use toto_simcore::time::SimTime;
use toto_spec::{EditionKind, ResourceKind};

/// One member database inside a pool.
#[derive(Clone, Debug)]
pub struct PoolMember {
    /// Stable identity (drives the member's model pattern membership).
    pub identity: u64,
    /// When the member was created.
    pub created_at: SimTime,
    /// Last modeled disk usage, GB.
    pub disk_gb: f64,
}

/// An elastic pool: a single fabric service hosting many databases.
#[derive(Clone, Debug)]
pub struct ElasticPool {
    /// The backing fabric service.
    pub service: ServiceId,
    /// Edition of the pool (governs replication and disk persistence).
    pub edition: EditionKind,
    /// Pool-level reserved vcores (shared by all members).
    pub pool_vcores: u32,
    /// Member databases.
    members: Vec<PoolMember>,
}

impl ElasticPool {
    /// Create an empty pool backed by `service`.
    pub fn new(service: ServiceId, edition: EditionKind, pool_vcores: u32) -> Self {
        ElasticPool {
            service,
            edition,
            pool_vcores,
            members: Vec::new(),
        }
    }

    /// Members currently in the pool.
    pub fn members(&self) -> &[PoolMember] {
        &self.members
    }

    /// Number of member databases.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True iff the pool hosts no databases.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Add a member database. Pool membership churn does not touch the
    /// orchestrator at all — that is the pools' second efficiency win:
    /// create/drop inside a pool is invisible to the PLB.
    pub fn add_member(&mut self, identity: u64, created_at: SimTime, initial_disk_gb: f64) {
        self.members.push(PoolMember {
            identity,
            created_at,
            disk_gb: initial_disk_gb.max(0.0),
        });
    }

    /// Remove a member by identity; returns true if it existed.
    pub fn remove_member(&mut self, identity: u64) -> bool {
        let before = self.members.len();
        self.members.retain(|m| m.identity != identity);
        self.members.len() != before
    }

    /// Advance every member's disk through the model set and return the
    /// pool's aggregate disk usage — the value the pool's replicas report
    /// to the PLB in place of per-database metrics.
    pub fn step_disk(&mut self, models: &CompiledModelSet, node: u32, now: SimTime) -> f64 {
        let model = models.model_for(ResourceKind::Disk, self.edition);
        let mut total = 0.0;
        for m in &mut self.members {
            if let Some(model) = model {
                let ctx = SampleContext {
                    service: m.identity,
                    node,
                    role: ReplicaRoleKind::Primary,
                    created_at: m.created_at,
                    now,
                    prev: Some(m.disk_gb),
                };
                m.disk_gb = model.next_value(&ctx);
            }
            total += m.disk_gb;
        }
        total
    }

    /// Report the pool's aggregate disk into the cluster (all replicas of
    /// the backing service carry the aggregate, as local-store pools
    /// replicate every member).
    pub fn report_to_cluster(&self, cluster: &mut Cluster, disk: MetricId, aggregate_gb: f64) {
        let replica_ids: Vec<_> = cluster
            .service(self.service)
            .map(|s| s.replicas.clone())
            .unwrap_or_default();
        for rid in replica_ids {
            cluster.report_load(rid, disk, aggregate_gb);
        }
    }
}

/// Compare the CPU reservation cost of hosting `databases` databases of
/// `per_db_vcores` each as singletons vs in pools of `pool_size` members
/// sharing `pool_vcores`. Returns `(singleton_cores, pooled_cores)` —
/// the §5.5 "environment accuracy" motivation quantified.
pub fn reservation_comparison(
    databases: u32,
    per_db_vcores: u32,
    pool_size: u32,
    pool_vcores: u32,
    edition: EditionKind,
) -> (f64, f64) {
    let replicas = edition.replica_count() as f64;
    let singleton = databases as f64 * per_db_vcores as f64 * replicas;
    let pools = (databases as f64 / pool_size as f64).ceil();
    let pooled = pools * pool_vcores as f64 * replicas;
    (singleton, pooled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defaults::gen5_model_set;
    use toto_fabric::cluster::{ClusterConfig, ServiceSpec};
    use toto_fabric::ids::NodeId;
    use toto_fabric::metrics::{MetricDef, MetricRegistry};

    fn pool_cluster() -> (Cluster, MetricId, ServiceId) {
        let mut metrics = MetricRegistry::new();
        let _cpu = metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: 96.0,
            balancing_weight: 1.0,
        });
        let disk = metrics.register(MetricDef {
            name: "Disk".into(),
            node_capacity: 7000.0,
            balancing_weight: 1.0,
        });
        let mut cluster = Cluster::new(ClusterConfig::uniform(5, metrics));
        let mut load = cluster.metrics().zero_load();
        load[MetricId(0)] = 16.0;
        let spec = ServiceSpec {
            name: "pool-1".into(),
            tag: 0,
            replica_count: 4,
            default_load: load,
        };
        let id = cluster.add_service(
            &spec,
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            SimTime::ZERO,
        );
        (cluster, disk, id)
    }

    #[test]
    fn membership_churn_is_invisible_to_the_orchestrator() {
        let (cluster, _, id) = pool_cluster();
        let mut pool = ElasticPool::new(id, EditionKind::PremiumBc, 16);
        let services_before = cluster.service_count();
        for i in 0..20 {
            pool.add_member(i, SimTime::ZERO, 10.0);
        }
        assert!(pool.remove_member(7));
        assert!(!pool.remove_member(7));
        assert_eq!(pool.len(), 19);
        // No new services, no new replicas.
        assert_eq!(cluster.service_count(), services_before);
    }

    #[test]
    fn pool_reports_aggregate_disk() {
        let (mut cluster, disk, id) = pool_cluster();
        let models = CompiledModelSet::compile(&gen5_model_set(7, 1200));
        let mut pool = ElasticPool::new(id, EditionKind::PremiumBc, 16);
        for i in 0..10 {
            pool.add_member(1000 + i, SimTime::ZERO, 50.0);
        }
        let aggregate = pool.step_disk(&models, 0, SimTime::from_secs(604_800 + 1200));
        assert!(aggregate > 400.0, "10 members x ~50GB, got {aggregate}");
        pool.report_to_cluster(&mut cluster, disk, aggregate);
        // Every replica of the pool carries the aggregate.
        let svc = cluster.service(id).unwrap();
        for rid in &svc.replicas {
            assert_eq!(cluster.replica(*rid).unwrap().load[disk], aggregate);
        }
        cluster.check_invariants();
    }

    #[test]
    fn member_growth_follows_the_models() {
        let (_, _, id) = pool_cluster();
        let models = CompiledModelSet::compile(&gen5_model_set(7, 1200));
        let mut pool = ElasticPool::new(id, EditionKind::PremiumBc, 16);
        pool.add_member(42, SimTime::ZERO, 100.0);
        let a = pool.step_disk(&models, 0, SimTime::from_secs(604_800 + 1200));
        let b = pool.step_disk(&models, 0, SimTime::from_secs(604_800 + 2400));
        // Disk evolves (steady growth is non-degenerate) and stays
        // non-negative.
        assert!(a >= 0.0 && b >= 0.0);
        assert_ne!(a, b);
    }

    #[test]
    fn pooling_reserves_fewer_cores_for_bursty_fleets() {
        // 100 bursty 2-vcore databases as singletons: 100 x 2 x 4 = 800
        // reserved cores (BC). Pools of 20 sharing 8 vcores: 5 x 8 x 4 =
        // 160 cores — a 5x densification.
        let (singleton, pooled) = reservation_comparison(100, 2, 20, 8, EditionKind::PremiumBc);
        assert_eq!(singleton, 800.0);
        assert_eq!(pooled, 160.0);
        // GP singletons are single-replica.
        let (s, p) = reservation_comparison(10, 4, 5, 10, EditionKind::StandardGp);
        assert_eq!(s, 40.0);
        assert_eq!(p, 20.0);
    }
}
