//! The Population Manager.
//!
//! §3.3.3: "The Population Manager runs as a stateless daemon — it wakes
//! up at the top of each hour to execute, samples from the provided
//! models, then schedules create or drop requests for the next hour. Each
//! create and drop request will then call the corresponding control plane
//! API with the provided metadata (e.g., Create a 4-core local store
//! database at 5:37pm)."

use toto_controlplane::admission::CreateRequest;
use toto_controlplane::slo::SloCatalog;
use toto_fabric::cluster::Cluster;
use toto_fabric::ids::ServiceId;
use toto_models::createdrop::CreateDropModel;
use toto_simcore::rng::DetRng;
use toto_simcore::time::SimTime;
use toto_spec::population::PopulationModelSpec;
use toto_spec::EditionKind;
use toto_stats::binning::EqualProbabilityBins;

/// One action scheduled for the coming hour.
#[derive(Clone, Debug, PartialEq)]
pub enum PlannedAction {
    /// Create a database of this edition.
    Create(EditionKind),
    /// Drop one database of this edition.
    Drop(EditionKind),
}

/// A planned action with its offset into the hour.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannedEvent {
    /// Seconds after the top of the hour.
    pub offset_secs: u64,
    /// What to do.
    pub action: PlannedAction,
}

/// The Population Manager.
#[derive(Clone, Debug)]
pub struct PopulationManager {
    model: CreateDropModel,
    slo_mix: [Vec<(usize, f64)>; 2],
    initial_disk: [EqualProbabilityBins; 2],
    rng: DetRng,
    created: u64,
}

impl PopulationManager {
    /// Build from a population spec, resolving SLO names against the
    /// catalog. Panics on unknown SLO names or empty mixes — a
    /// misconfigured benchmark should fail loudly at startup.
    pub fn new(spec: &PopulationModelSpec, catalog: &SloCatalog) -> Self {
        let resolve = |entries: &[toto_spec::population::SloMixEntry]| -> Vec<(usize, f64)> {
            assert!(!entries.is_empty(), "SLO mix must not be empty");
            entries
                .iter()
                .map(|e| {
                    let (idx, _) = catalog
                        .by_name(&e.slo_name)
                        .unwrap_or_else(|| panic!("unknown SLO '{}'", e.slo_name));
                    assert!(e.weight > 0.0, "SLO weight must be positive");
                    (idx, e.weight)
                })
                .collect()
        };
        let bins = |edges: &[f64]| EqualProbabilityBins::from_edges(edges.to_vec());
        PopulationManager {
            model: CreateDropModel::new(spec.create.clone(), spec.drop.clone()),
            slo_mix: [resolve(&spec.slo_mix[0]), resolve(&spec.slo_mix[1])],
            initial_disk: [
                bins(&spec.initial_disk_bins[0]),
                bins(&spec.initial_disk_bins[1]),
            ],
            rng: DetRng::seed_from_u64(spec.seed),
            created: 0,
        }
    }

    /// The underlying create/drop model.
    pub fn model(&self) -> &CreateDropModel {
        &self.model
    }

    /// Wake up at the top of the hour containing `at` and plan the next
    /// hour's creates and drops, each at a sampled minute offset.
    pub fn plan_hour(&mut self, at: SimTime) -> Vec<PlannedEvent> {
        let hour_start = at.truncate_to_hour();
        let mut events = Vec::new();
        for edition in EditionKind::ALL {
            let creates = self
                .model
                .sample_creates(edition, hour_start, &mut self.rng);
            for _ in 0..creates {
                events.push(PlannedEvent {
                    offset_secs: self.rng.next_below(3600),
                    action: PlannedAction::Create(edition),
                });
            }
            let drops = self.model.sample_drops(edition, hour_start, &mut self.rng);
            for _ in 0..drops {
                events.push(PlannedEvent {
                    offset_secs: self.rng.next_below(3600),
                    action: PlannedAction::Drop(edition),
                });
            }
        }
        // Execute in time order; ties keep planning order (deterministic).
        events.sort_by_key(|e| e.offset_secs);
        events
    }

    /// Materialise a create request: sample the SLO from the mix and the
    /// initial disk from the bins.
    pub fn make_create_request(
        &mut self,
        edition: EditionKind,
        catalog: &SloCatalog,
    ) -> (usize, CreateRequest) {
        let mix = &self.slo_mix[edition.index()];
        let total: f64 = mix.iter().map(|(_, w)| w).sum();
        let mut pick = self.rng.next_f64() * total;
        let mut slo_index = mix[mix.len() - 1].0;
        for (idx, w) in mix {
            if pick < *w {
                slo_index = *idx;
                break;
            }
            pick -= w;
        }
        let slo = catalog.get(slo_index).expect("resolved at construction");
        // Bigger SLOs carry proportionally more data (and never more than
        // the SLO allows, nor more than a node can realistically absorb).
        let size_scale = (slo.vcores as f64 / 4.0).max(0.7);
        let initial_disk = (self.initial_disk[edition.index()].sample(&mut self.rng) * size_scale)
            .clamp(0.0, slo.max_data_gb.min(1200.0));
        self.created += 1;
        let req = CreateRequest {
            name: format!("{}-{}", slo.name.to_lowercase(), self.created),
            slo_index,
            initial_disk_gb: initial_disk,
            initial_memory_gb: 0.5,
        };
        (slo_index, req)
    }

    /// Pick a live database of `edition` to drop; `None` when the ring
    /// has none. Drops skew heavily toward *young* databases: most
    /// dropped cloud databases are short-lived dev/test instances (the
    /// paper defers per-database lifetime modeling to future work, §5.5 —
    /// this is that refinement; without it, random drops of the large
    /// bootstrap databases swamp the density signal with churn noise).
    pub fn pick_drop_victim(
        &mut self,
        cluster: &Cluster,
        edition: EditionKind,
        disk: toto_fabric::ids::MetricId,
    ) -> Option<ServiceId> {
        let (young, old): (Vec<ServiceId>, Vec<ServiceId>) = cluster
            .services()
            .filter(|s| toto_controlplane::slo::decode_tag(s.tag).0 == edition)
            .map(|s| (s.id, s.created_at))
            .fold((Vec::new(), Vec::new()), |(mut y, mut o), (id, created)| {
                if created > toto_simcore::time::SimTime::ZERO {
                    y.push(id);
                } else {
                    o.push(id);
                }
                (y, o)
            });
        if young.is_empty() && old.is_empty() {
            return None;
        }
        let pick_young = !young.is_empty() && (old.is_empty() || self.rng.bernoulli(0.85));
        let pool = if pick_young { &young } else { &old };
        // Weight victims inversely by their disk footprint: the databases
        // customers delete are overwhelmingly small, short-lived ones,
        // while terabyte-scale production databases persist.
        let weights: Vec<f64> = pool
            .iter()
            .map(|id| {
                let held: f64 = cluster
                    .service(*id)
                    .map(|s| {
                        s.replicas
                            .iter()
                            .filter_map(|r| cluster.replica(*r))
                            .map(|r| r.load[disk])
                            .sum()
                    })
                    .unwrap_or(0.0);
                1.0 / (20.0 + held)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = self.rng.next_f64() * total;
        for (id, w) in pool.iter().zip(&weights) {
            if pick < *w {
                return Some(*id);
            }
            pick -= w;
        }
        pool.last().copied()
    }

    /// Databases created so far (naming counter).
    pub fn created_count(&self) -> u64 {
        self.created
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defaults::gen5_population_model;
    use toto_fabric::cluster::{ClusterConfig, ServiceSpec};
    use toto_fabric::metrics::{MetricDef, MetricRegistry};

    fn manager(seed: u64) -> (PopulationManager, SloCatalog) {
        let catalog = SloCatalog::gen5();
        let spec = gen5_population_model(seed);
        (PopulationManager::new(&spec, &catalog), catalog)
    }

    #[test]
    fn plan_hour_is_sorted_and_within_hour() {
        let (mut pm, _) = manager(1);
        let t = SimTime::from_secs(14 * 3600 + 123);
        let plan = pm.plan_hour(t);
        assert!(!plan.is_empty(), "weekday peak hour should plan something");
        assert!(plan
            .windows(2)
            .all(|w| w[0].offset_secs <= w[1].offset_secs));
        assert!(plan.iter().all(|e| e.offset_secs < 3600));
    }

    #[test]
    fn planning_is_seed_deterministic() {
        let (mut a, _) = manager(5);
        let (mut b, _) = manager(5);
        let t = SimTime::from_secs(10 * 3600);
        assert_eq!(a.plan_hour(t), b.plan_hour(t));
        let (mut c, _) = manager(6);
        // A different seed should (essentially always) differ.
        assert_ne!(a.plan_hour(t), c.plan_hour(t));
    }

    #[test]
    fn create_requests_respect_edition_mix() {
        let (mut pm, catalog) = manager(2);
        for _ in 0..50 {
            let (idx, req) = pm.make_create_request(EditionKind::PremiumBc, &catalog);
            let slo = catalog.get(idx).unwrap();
            assert_eq!(slo.edition, EditionKind::PremiumBc);
            assert!(req.initial_disk_gb >= 5.0, "BC initial disk from BC bins");
            assert_eq!(req.slo_index, idx);
        }
        let (_, req) = pm.make_create_request(EditionKind::StandardGp, &catalog);
        assert!(req.initial_disk_gb <= 8.0, "GP tempDB stays small");
    }

    #[test]
    fn request_names_are_unique() {
        let (mut pm, catalog) = manager(3);
        let (_, a) = pm.make_create_request(EditionKind::StandardGp, &catalog);
        let (_, b) = pm.make_create_request(EditionKind::StandardGp, &catalog);
        assert_ne!(a.name, b.name);
        assert_eq!(pm.created_count(), 2);
    }

    #[test]
    fn drop_victims_match_edition() {
        let (mut pm, _catalog) = manager(4);
        let mut metrics = MetricRegistry::new();
        metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: 96.0,
            balancing_weight: 1.0,
        });
        let mut cluster = Cluster::new(ClusterConfig::uniform(3, metrics));
        // One GP service (tag encodes edition), no BC.
        let spec = ServiceSpec {
            name: "gp".into(),
            tag: toto_controlplane::slo::encode_tag(EditionKind::StandardGp, 0),
            replica_count: 1,
            default_load: cluster.metrics().zero_load(),
        };
        let id = cluster.add_service(&spec, &[toto_fabric::ids::NodeId(0)], SimTime::ZERO);
        let disk = toto_fabric::ids::MetricId(0);
        assert_eq!(
            pm.pick_drop_victim(&cluster, EditionKind::StandardGp, disk),
            Some(id)
        );
        assert_eq!(
            pm.pick_drop_victim(&cluster, EditionKind::PremiumBc, disk),
            None
        );
    }

    #[test]
    #[should_panic(expected = "unknown SLO")]
    fn unknown_slo_name_panics_at_startup() {
        let catalog = SloCatalog::gen5();
        let mut spec = gen5_population_model(1);
        spec.slo_mix[0][0].slo_name = "HS_2".into();
        let _ = PopulationManager::new(&spec, &catalog);
    }
}
