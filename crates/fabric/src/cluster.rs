//! Cluster state: nodes, services, replicas and load accounting.
//!
//! The cluster is pure state plus invariant-preserving mutations; *policy*
//! (where to place, what to move) lives in [`crate::plb`]. All collections
//! iterate in deterministic order so that experiment runs are reproducible
//! given fixed seeds.

use crate::ids::{MetricId, NodeId, ReplicaId, ServiceId};
use crate::metrics::{LoadVec, MetricRegistry};
use std::collections::{BTreeMap, BTreeSet};
use toto_simcore::time::SimTime;

/// Map an `f64` cost to a `u64` whose unsigned order matches
/// [`f64::total_cmp`]. Used as the ordering key of the candidate-node
/// index so membership updates are integer comparisons and the stored
/// key is exactly reconstructible from the cached cost bits (which
/// [`Cluster::invariants_ok`] verifies bitwise).
#[inline]
fn cost_key(cost: f64) -> u64 {
    let bits = cost.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Role of a replica. Single-replica services have a primary only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaRole {
    /// Serves writes; its unavailability is customer-visible.
    Primary,
    /// Standby copy (local-store editions run three of these).
    Secondary,
}

/// One replica of a service, pinned to a node.
#[derive(Clone, Debug)]
pub struct Replica {
    /// Unique id.
    pub id: ReplicaId,
    /// Owning service.
    pub service: ServiceId,
    /// Node currently hosting the replica.
    pub node: NodeId,
    /// Current role.
    pub role: ReplicaRole,
    /// Last reported load per metric ("it is the responsibility of each
    /// individual database to report their own load to the PLB", §3.2).
    pub load: LoadVec,
}

/// A deployed service (a database, from the upper layers' view).
#[derive(Clone, Debug)]
pub struct Service {
    /// Unique id.
    pub id: ServiceId,
    /// Human-readable name.
    pub name: String,
    /// Opaque tag interpreted by upper layers (edition/SLO encoding).
    pub tag: u64,
    /// Replica ids, primary first by construction (order maintained on
    /// promotion).
    pub replicas: Vec<ReplicaId>,
    /// Creation time.
    pub created_at: SimTime,
}

/// Everything needed to create a service (placement is decided by the PLB
/// and passed separately).
#[derive(Clone, Debug)]
pub struct ServiceSpec {
    /// Human-readable name.
    pub name: String,
    /// Opaque tag for upper layers.
    pub tag: u64,
    /// Number of replicas to place on distinct nodes.
    pub replica_count: u32,
    /// Initial load each replica reports upon placement.
    pub default_load: LoadVec,
}

/// A cluster node with its aggregate load view.
#[derive(Clone, Debug)]
pub struct Node {
    /// Node id.
    pub id: NodeId,
    /// Fault domain this node belongs to.
    pub fault_domain: u32,
    /// Aggregate reported load per metric (the PLB's "centralized view of
    /// the load on each node", §3.1).
    pub load: LoadVec,
    /// Replicas hosted here, in deterministic order.
    pub replicas: Vec<ReplicaId>,
    /// Owning service of each hosted replica, parallel to `replicas`.
    /// Denormalized so the PLB's "does this node already host a sibling?"
    /// check — run per candidate node per failover decision — is a linear
    /// scan of this vector instead of a replica-map lookup per replica.
    pub replica_services: Vec<ServiceId>,
    /// False while the node is drained for maintenance.
    pub up: bool,
}

impl Node {
    /// True iff this node hosts a replica of `service`.
    pub fn hosts_service(&self, service: ServiceId) -> bool {
        self.replica_services.contains(&service)
    }
}

/// Static cluster configuration: homogeneous nodes (SQL DB rings "can also
/// be considered homogeneous in their hardware SKU", §2) and the governed
/// metrics with their logical capacities.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of data-plane nodes.
    pub node_count: u32,
    /// Metric definitions including per-node logical capacities.
    pub metrics: MetricRegistry,
    /// Number of fault domains. Node `i` lives in domain `i % fault_domains`
    /// (Service Fabric spreads replicas across fault domains so a rack or
    /// power failure cannot take out a whole replica set). `1` disables
    /// the constraint.
    pub fault_domains: u32,
}

impl ClusterConfig {
    /// A configuration with a single fault domain (no spread constraint).
    pub fn uniform(node_count: u32, metrics: MetricRegistry) -> Self {
        ClusterConfig {
            node_count,
            metrics,
            fault_domains: 1,
        }
    }
}

/// The simulated Service Fabric cluster.
#[derive(Clone, Debug)]
pub struct Cluster {
    metrics: MetricRegistry,
    nodes: Vec<Node>,
    services: BTreeMap<ServiceId, Service>,
    /// Slot map indexed by raw replica id: ids are allocated sequentially
    /// and never reused, so lookups are O(1) and iteration (skipping the
    /// `None` slots of dropped replicas) visits replicas in id order —
    /// exactly the order the previous `BTreeMap` storage produced.
    replicas: Vec<Option<Replica>>,
    next_service: u64,
    next_replica: u64,
    /// Cached [`MetricRegistry::cost_of`] of each node's aggregate load,
    /// indexed by raw node id. Refreshed by every load-mutating method, so
    /// reads are O(1) and always bit-identical to a from-scratch recompute
    /// (verified by [`Cluster::invariants_ok`]). This is the PLB's
    /// hot-path base cost: placement evaluates it once per candidate node
    /// per decision instead of once per comparator call.
    node_costs: Vec<f64>,
    /// Violating `(node, metric)` pairs, maintained incrementally by
    /// [`Cluster::refresh_node_cost`] — the same refresh-on-mutate hook
    /// that keeps `node_costs` exact. `BTreeSet` iteration order (node
    /// id, then metric id) is exactly the order the full scan produced,
    /// so [`Cluster::violations`] is O(violations) without changing a
    /// single PLB decision. Down nodes stay tracked: a violation does
    /// not vanish because its host was drained.
    violation_set: BTreeSet<(NodeId, MetricId)>,
    /// Per-node bitmask of currently violated metrics (bit = raw metric
    /// id), indexed by raw node id. Lets the refresh hook detect
    /// membership changes without probing `violation_set` when nothing
    /// changed — the overwhelmingly common case.
    violation_bits: Vec<u64>,
    /// All **up** nodes ordered by `(cost_key(node_cost), id)`: the
    /// PLB's candidate-node index. Walking it ascending visits the
    /// cheapest-by-cached-cost failover targets first, so target
    /// selection can stop after a bounded prefix instead of scanning
    /// every node. Maintained by `refresh_node_cost` / `set_node_up`
    /// in O(log n) per mutation.
    cost_index: BTreeSet<(u64, NodeId)>,
    /// The same index partitioned by fault domain, so spread
    /// constraints (sibling-domain avoidance) prune whole partitions
    /// before any candidate is costed.
    domain_cost_index: Vec<BTreeSet<(u64, NodeId)>>,
}

impl Cluster {
    /// Build an empty cluster from its configuration.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.node_count > 0, "cluster needs at least one node");
        assert!(
            !config.metrics.is_empty(),
            "cluster needs at least one metric"
        );
        assert!(
            config.fault_domains > 0,
            "cluster needs at least one fault domain"
        );
        assert!(
            config.metrics.len() <= 64,
            "violation tracking supports at most 64 metrics"
        );
        let nodes = (0..config.node_count)
            .map(|i| Node {
                id: NodeId(i),
                fault_domain: i % config.fault_domains,
                load: config.metrics.zero_load(),
                replicas: Vec::new(),
                replica_services: Vec::new(),
                up: true,
            })
            .collect();
        let node_costs = vec![0.0; config.node_count as usize];
        let domain_count = config.fault_domains.min(config.node_count) as usize;
        let mut domain_cost_index = vec![BTreeSet::new(); domain_count];
        let mut cost_index = BTreeSet::new();
        for i in 0..config.node_count {
            let key = (cost_key(0.0), NodeId(i));
            cost_index.insert(key);
            domain_cost_index[(i % config.fault_domains) as usize].insert(key);
        }
        Cluster {
            metrics: config.metrics,
            nodes,
            services: BTreeMap::new(),
            replicas: Vec::new(),
            next_service: 0,
            next_replica: 0,
            node_costs,
            violation_set: BTreeSet::new(),
            violation_bits: vec![0; config.node_count as usize],
            cost_index,
            domain_cost_index,
        }
    }

    /// Recompute one node's cached cost from its current aggregate load.
    /// Called by every mutation that touches the node's load, keeping the
    /// cache exact (not incrementally drifted): the stored value is always
    /// `cost_of` applied to the present load bits. The same hook keeps
    /// the candidate-node index and the violation dirty-set exact, so
    /// every derived structure refreshes from one place.
    fn refresh_node_cost(&mut self, node: NodeId) {
        let i = node.0 as usize;
        let old_cost = self.node_costs[i];
        let new_cost = self.metrics.cost_of(&self.nodes[i].load);
        self.node_costs[i] = new_cost;
        if self.nodes[i].up && old_cost.to_bits() != new_cost.to_bits() {
            let domain = self.nodes[i].fault_domain as usize;
            self.cost_index.remove(&(cost_key(old_cost), node));
            self.cost_index.insert((cost_key(new_cost), node));
            self.domain_cost_index[domain].remove(&(cost_key(old_cost), node));
            self.domain_cost_index[domain].insert((cost_key(new_cost), node));
        }
        let mut bits = 0u64;
        for (mid, def) in self.metrics.iter() {
            if self.nodes[i].load[mid] > def.node_capacity {
                bits |= 1 << mid.0;
            }
        }
        let mut changed = bits ^ self.violation_bits[i];
        while changed != 0 {
            let m = changed.trailing_zeros();
            if bits >> m & 1 == 1 {
                self.violation_set.insert((node, MetricId(m)));
            } else {
                self.violation_set.remove(&(node, MetricId(m)));
            }
            changed &= changed - 1;
        }
        self.violation_bits[i] = bits;
    }

    /// The metric registry.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// One node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Cached balancing cost ([`MetricRegistry::cost_of`]) of a node's
    /// current aggregate load. O(1); bit-identical to recomputing from the
    /// node's load vector.
    pub fn node_cost(&self, id: NodeId) -> f64 {
        self.node_costs[id.0 as usize]
    }

    /// All services in id order.
    pub fn services(&self) -> impl Iterator<Item = &Service> {
        self.services.values()
    }

    /// Number of live services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// One service.
    pub fn service(&self, id: ServiceId) -> Option<&Service> {
        self.services.get(&id)
    }

    /// One replica.
    pub fn replica(&self, id: ReplicaId) -> Option<&Replica> {
        self.replicas.get(id.0 as usize)?.as_ref()
    }

    fn replica_mut(&mut self, id: ReplicaId) -> Option<&mut Replica> {
        self.replicas.get_mut(id.0 as usize)?.as_mut()
    }

    /// All replicas in id order.
    pub fn replicas(&self) -> impl Iterator<Item = &Replica> {
        self.replicas.iter().filter_map(|r| r.as_ref())
    }

    /// The primary replica of a service.
    pub fn primary_of(&self, service: ServiceId) -> Option<&Replica> {
        let svc = self.services.get(&service)?;
        svc.replicas
            .iter()
            .filter_map(|r| self.replica(*r))
            .find(|r| r.role == ReplicaRole::Primary)
    }

    /// Cluster-wide aggregate load for a metric.
    pub fn total_load(&self, metric: MetricId) -> f64 {
        self.nodes.iter().map(|n| n.load[metric]).sum()
    }

    /// Cluster-wide logical capacity for a metric (capacity × up nodes).
    pub fn total_capacity(&self, metric: MetricId) -> f64 {
        let per_node = self.metrics.def(metric).node_capacity;
        per_node * self.nodes.iter().filter(|n| n.up).count() as f64
    }

    /// Create a service with replicas on the given nodes (first node hosts
    /// the primary). Panics on duplicate or out-of-range nodes — the PLB
    /// is responsible for passing a legal placement.
    pub fn add_service(
        &mut self,
        spec: &ServiceSpec,
        placement: &[NodeId],
        now: SimTime,
    ) -> ServiceId {
        assert_eq!(
            placement.len(),
            spec.replica_count as usize,
            "placement arity mismatch"
        );
        assert_eq!(
            spec.default_load.len(),
            self.metrics.len(),
            "default load arity mismatch"
        );
        for (i, n) in placement.iter().enumerate() {
            assert!((n.0 as usize) < self.nodes.len(), "unknown node {n}");
            assert!(
                !placement[..i].contains(n),
                "replicas of one service must land on distinct nodes"
            );
        }
        let service_id = ServiceId(self.next_service);
        self.next_service += 1;
        let mut replica_ids = Vec::with_capacity(placement.len());
        for (i, &node) in placement.iter().enumerate() {
            let replica_id = ReplicaId(self.next_replica);
            self.next_replica += 1;
            debug_assert_eq!(replica_id.0 as usize, self.replicas.len());
            let role = if i == 0 {
                ReplicaRole::Primary
            } else {
                ReplicaRole::Secondary
            };
            let replica = Replica {
                id: replica_id,
                service: service_id,
                node,
                role,
                load: spec.default_load.clone(),
            };
            self.nodes[node.0 as usize].load.add(&replica.load);
            self.nodes[node.0 as usize].replicas.push(replica_id);
            self.nodes[node.0 as usize]
                .replica_services
                .push(service_id);
            self.replicas.push(Some(replica));
            self.refresh_node_cost(node);
            replica_ids.push(replica_id);
        }
        self.services.insert(
            service_id,
            Service {
                id: service_id,
                name: spec.name.clone(),
                tag: spec.tag,
                replicas: replica_ids,
                created_at: now,
            },
        );
        service_id
    }

    /// Delete a service, releasing all replica load. Returns the service
    /// record, or `None` if the id is unknown.
    pub fn remove_service(&mut self, id: ServiceId) -> Option<Service> {
        let svc = self.services.remove(&id)?;
        for rid in &svc.replicas {
            if let Some(rep) = self.replicas.get_mut(rid.0 as usize).and_then(Option::take) {
                let node = &mut self.nodes[rep.node.0 as usize];
                node.load.sub_clamped(&rep.load);
                if let Some(pos) = node.replicas.iter().position(|r| r == rid) {
                    node.replicas.remove(pos);
                    node.replica_services.remove(pos);
                }
                self.refresh_node_cost(rep.node);
            }
        }
        Some(svc)
    }

    /// Update one metric of one replica's reported load; node aggregates
    /// follow. Returns the previous value. Panics on unknown replica.
    pub fn report_load(&mut self, replica: ReplicaId, metric: MetricId, value: f64) -> f64 {
        let rep = self
            .replica_mut(replica)
            .unwrap_or_else(|| panic!("report_load: unknown replica {replica}"));
        let prev = rep.load[metric];
        rep.load[metric] = value;
        let node_id = rep.node;
        let node = &mut self.nodes[node_id.0 as usize];
        node.load[metric] = (node.load[metric] - prev + value).max(0.0);
        self.refresh_node_cost(node_id);
        prev
    }

    /// Move a replica to another node, carrying its reported load.
    /// Panics if the destination already hosts a replica of the service.
    pub fn move_replica(&mut self, replica: ReplicaId, to: NodeId) {
        let rep = self
            .replica(replica)
            .unwrap_or_else(|| panic!("move_replica: unknown replica {replica}"));
        let service = rep.service;
        let from = rep.node;
        assert_ne!(from, to, "move_replica to the same node");
        assert!(
            !self.nodes[to.0 as usize].hosts_service(service),
            "destination {to} already hosts a replica of {service}"
        );
        let rep = self.replica_mut(replica).expect("checked above");
        rep.node = to;
        let load = rep.load.clone();
        let from_node = &mut self.nodes[from.0 as usize];
        from_node.load.sub_clamped(&load);
        if let Some(pos) = from_node.replicas.iter().position(|r| *r == replica) {
            from_node.replicas.remove(pos);
            from_node.replica_services.remove(pos);
        }
        let to_node = &mut self.nodes[to.0 as usize];
        to_node.load.add(&load);
        to_node.replicas.push(replica);
        to_node.replica_services.push(service);
        self.refresh_node_cost(from);
        self.refresh_node_cost(to);
    }

    /// Promote a secondary to primary, demoting the current primary.
    /// Panics if the replica is unknown; a no-op if it is already primary.
    pub fn promote(&mut self, replica: ReplicaId) {
        let service = self
            .replica(replica)
            .unwrap_or_else(|| panic!("promote: unknown replica {replica}"))
            .service;
        let svc = self
            .services
            .get(&service)
            .expect("replica's service exists");
        let replica_ids = svc.replicas.clone();
        for rid in replica_ids {
            let rep = self.replica_mut(rid).expect("service replica exists");
            rep.role = if rid == replica {
                ReplicaRole::Primary
            } else {
                ReplicaRole::Secondary
            };
        }
    }

    /// Nodes whose aggregate load exceeds logical capacity, with the
    /// violated metric. A node can appear once per violated metric.
    /// Deterministic order: by node id, then metric id.
    ///
    /// O(violations): reads the dirty-set maintained by the
    /// refresh-on-mutate hook instead of scanning every (node, metric)
    /// pair. The set's iteration order is exactly the order the full
    /// scan produced, so callers see identical vectors.
    pub fn violations(&self) -> Vec<(NodeId, MetricId)> {
        self.violation_set.iter().copied().collect()
    }

    /// True iff no node violates any metric's capacity. O(1).
    pub fn has_violations(&self) -> bool {
        !self.violation_set.is_empty()
    }

    /// All up nodes in ascending order of cached node cost (ties broken
    /// by node id): the PLB's pruned candidate walk. Down nodes are
    /// excluded — they are never feasible targets.
    pub fn candidate_nodes_by_cost(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.cost_index.iter().map(|&(_, n)| n)
    }

    /// Up nodes of one fault domain in ascending order of cached cost.
    /// Domains `>= fault_domain_count()` are empty.
    pub fn domain_nodes_by_cost(&self, domain: u32) -> impl Iterator<Item = NodeId> + '_ {
        self.domain_cost_index
            .get(domain as usize)
            .into_iter()
            .flat_map(|set| set.iter().map(|&(_, n)| n))
    }

    /// Number of distinct fault domains nodes can occupy.
    pub fn fault_domain_count(&self) -> usize {
        self.domain_cost_index.len()
    }

    /// Mark a node as draining (excluded as a placement/failover target).
    /// Down nodes leave the candidate index; their violations stay
    /// tracked (the load is still there).
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        let i = node.0 as usize;
        if self.nodes[i].up == up {
            return;
        }
        self.nodes[i].up = up;
        let key = (cost_key(self.node_costs[i]), node);
        let domain = self.nodes[i].fault_domain as usize;
        if up {
            self.cost_index.insert(key);
            self.domain_cost_index[domain].insert(key);
        } else {
            self.cost_index.remove(&key);
            self.domain_cost_index[domain].remove(&key);
        }
    }

    /// Change one metric's node-level logical capacity mid-run (chaos
    /// capacity degradation / restoration). Every node's cached cost
    /// depends on the capacity, so the whole cache is refreshed here.
    /// Returns the previous capacity.
    pub fn set_metric_capacity(&mut self, metric: MetricId, node_capacity: f64) -> f64 {
        let prev = self.metrics.set_node_capacity(metric, node_capacity);
        for i in 0..self.nodes.len() {
            self.refresh_node_cost(NodeId(i as u32));
        }
        debug_assert!(
            self.invariants_ok(),
            "set_metric_capacity broke cluster invariants"
        );
        prev
    }

    /// Deliberately corrupt one node's cached cost. Exists solely so tests
    /// can prove the cost-cache oracle fires; never call from sim code.
    #[doc(hidden)]
    pub fn corrupt_node_cost_for_test(&mut self, node: NodeId, value: f64) {
        self.node_costs[node.0 as usize] = value;
    }

    /// Deliberately desync the violation dirty-set. Exists solely so
    /// tests can prove the dirty-set oracle fires; never call from sim
    /// code.
    #[doc(hidden)]
    pub fn corrupt_violation_set_for_test(&mut self, node: NodeId, metric: MetricId) {
        if !self.violation_set.remove(&(node, metric)) {
            self.violation_set.insert((node, metric));
        }
    }

    /// Deliberately desync the candidate index. Exists solely so tests
    /// can prove the candidate-index oracle fires; never call from sim
    /// code.
    #[doc(hidden)]
    pub fn corrupt_cost_index_for_test(&mut self, node: NodeId) {
        let key = (cost_key(self.node_costs[node.0 as usize]), node);
        if !self.cost_index.remove(&key) {
            self.cost_index.insert(key);
        }
    }

    /// Rebuild the violation dirty-set, its per-node bitmask, and the
    /// candidate-node index from scratch. The maintained copies must
    /// equal these *exactly* (set equality over bit-derived keys — no
    /// tolerance), which is what the invariant checks verify.
    #[allow(clippy::type_complexity)]
    fn recompute_derived(
        &self,
    ) -> (
        BTreeSet<(NodeId, MetricId)>,
        Vec<u64>,
        BTreeSet<(u64, NodeId)>,
        Vec<BTreeSet<(u64, NodeId)>>,
    ) {
        let mut violations = BTreeSet::new();
        let mut bits = vec![0u64; self.nodes.len()];
        let mut index = BTreeSet::new();
        let mut domains = vec![BTreeSet::new(); self.domain_cost_index.len()];
        for node in &self.nodes {
            for (mid, def) in self.metrics.iter() {
                if node.load[mid] > def.node_capacity {
                    violations.insert((node.id, mid));
                    bits[node.id.0 as usize] |= 1 << mid.0;
                }
            }
            if node.up {
                let key = (cost_key(self.node_costs[node.id.0 as usize]), node.id);
                index.insert(key);
                domains[node.fault_domain as usize].insert(key);
            }
        }
        (violations, bits, index, domains)
    }

    /// Non-panicking consistency check: node aggregates match the sum of
    /// hosted replica loads, every service has exactly one primary, and no
    /// service co-locates replicas. The incrementally maintained derived
    /// structures — cost cache, violation dirty-set, candidate index —
    /// must match a full recompute bitwise. Intended for `debug_assert!`
    /// guards on mutating entry points (lint rule R002); see
    /// [`Cluster::check_invariants`] for the panicking variant with
    /// diagnostics.
    pub fn invariants_ok(&self) -> bool {
        for node in &self.nodes {
            let mut expect = self.metrics.zero_load();
            if node.replica_services.len() != node.replicas.len() {
                return false;
            }
            for (rid, svc) in node.replicas.iter().zip(&node.replica_services) {
                let Some(rep) = self.replica(*rid) else {
                    return false;
                };
                if rep.node != node.id || rep.service != *svc {
                    return false;
                }
                expect.add(&rep.load);
            }
            for (mid, _) in self.metrics.iter() {
                if (expect[mid] - node.load[mid]).abs() >= 1e-6 {
                    return false;
                }
            }
            // The cost cache must match a full recompute *bitwise*: the
            // cache is refreshed (not incrementally adjusted) on every
            // load mutation, so even float dust counts as corruption.
            // Bit comparison also treats NaN == NaN, so a NaN load report
            // is diagnosed as the aggregate mismatch it is, not as a
            // spurious cache failure.
            let recomputed = self.metrics.cost_of(&node.load);
            if self.node_costs[node.id.0 as usize].to_bits() != recomputed.to_bits() {
                return false;
            }
        }
        for svc in self.services.values() {
            let primaries = svc
                .replicas
                .iter()
                .filter_map(|r| self.replica(*r))
                .filter(|r| r.role == ReplicaRole::Primary)
                .count();
            if primaries != 1 {
                return false;
            }
            let mut nodes: Vec<NodeId> = svc
                .replicas
                .iter()
                .filter_map(|r| self.replica(*r))
                .map(|r| r.node)
                .collect();
            nodes.sort_unstable();
            nodes.dedup();
            if nodes.len() != svc.replicas.len() {
                return false;
            }
        }
        let (violations, bits, index, domains) = self.recompute_derived();
        violations == self.violation_set
            && bits == self.violation_bits
            && index == self.cost_index
            && domains == self.domain_cost_index
    }

    /// Verify internal consistency; used by tests and property checks.
    /// Panics with a description on the first violated invariant.
    pub fn check_invariants(&self) {
        for node in &self.nodes {
            let mut expect = self.metrics.zero_load();
            assert_eq!(
                node.replica_services.len(),
                node.replicas.len(),
                "{}: replica_services out of sync",
                node.id
            );
            for (rid, svc) in node.replicas.iter().zip(&node.replica_services) {
                let rep = self.replica(*rid).expect("node lists a live replica");
                assert_eq!(rep.node, node.id, "{rid} host mismatch");
                assert_eq!(rep.service, *svc, "{rid} service mismatch on {}", node.id);
                expect.add(&rep.load);
            }
            for (mid, _) in self.metrics.iter() {
                let diff = (expect[mid] - node.load[mid]).abs();
                assert!(
                    diff < 1e-6,
                    "{}: aggregate {} != sum {} for {mid}",
                    node.id,
                    node.load[mid],
                    expect[mid]
                );
            }
            let recomputed = self.metrics.cost_of(&node.load);
            assert!(
                self.node_costs[node.id.0 as usize].to_bits() == recomputed.to_bits(),
                "{}: cached cost {} != recomputed {recomputed}",
                node.id,
                self.node_costs[node.id.0 as usize]
            );
        }
        for svc in self.services.values() {
            let primaries = svc
                .replicas
                .iter()
                .filter(|r| {
                    self.replica(**r).expect("service replica exists").role == ReplicaRole::Primary
                })
                .count();
            assert_eq!(primaries, 1, "{} must have exactly one primary", svc.id);
            let mut nodes: Vec<NodeId> = svc
                .replicas
                .iter()
                .map(|r| self.replica(*r).expect("service replica exists").node)
                .collect();
            nodes.sort_unstable();
            nodes.dedup();
            assert_eq!(
                nodes.len(),
                svc.replicas.len(),
                "{} has co-located replicas",
                svc.id
            );
        }
        let (violations, bits, index, domains) = self.recompute_derived();
        assert!(
            violations == self.violation_set,
            "violation dirty-set diverged from full scan: maintained {:?}, recomputed {:?}",
            self.violation_set,
            violations
        );
        assert_eq!(
            bits, self.violation_bits,
            "violation bitmask diverged from full scan"
        );
        assert!(
            index == self.cost_index,
            "candidate index diverged from full recompute: maintained {:?}, recomputed {:?}",
            self.cost_index,
            index
        );
        assert!(
            domains == self.domain_cost_index,
            "per-domain candidate index diverged from full recompute"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricDef;

    fn two_metric_cluster(nodes: u32) -> (Cluster, MetricId, MetricId) {
        let mut metrics = MetricRegistry::new();
        let cpu = metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: 96.0,
            balancing_weight: 1.0,
        });
        let disk = metrics.register(MetricDef {
            name: "Disk".into(),
            node_capacity: 1000.0,
            balancing_weight: 1.0,
        });
        let cluster = Cluster::new(ClusterConfig {
            node_count: nodes,
            metrics,
            fault_domains: 1,
        });
        (cluster, cpu, disk)
    }

    fn spec(cluster: &Cluster, cpu_load: f64, disk_load: f64, replicas: u32) -> ServiceSpec {
        let mut load = cluster.metrics().zero_load();
        load[MetricId(0)] = cpu_load;
        load[MetricId(1)] = disk_load;
        ServiceSpec {
            name: "db".into(),
            tag: 0,
            replica_count: replicas,
            default_load: load,
        }
    }

    #[test]
    fn add_service_places_primary_first() {
        let (mut c, cpu, _) = two_metric_cluster(4);
        let s = spec(&c, 4.0, 50.0, 3);
        let id = c.add_service(&s, &[NodeId(2), NodeId(0), NodeId(1)], SimTime::ZERO);
        let svc = c.service(id).unwrap();
        assert_eq!(svc.replicas.len(), 3);
        let primary = c.primary_of(id).unwrap();
        assert_eq!(primary.node, NodeId(2));
        assert_eq!(c.node(NodeId(2)).load[cpu], 4.0);
        c.check_invariants();
    }

    #[test]
    fn remove_service_releases_load() {
        let (mut c, cpu, disk) = two_metric_cluster(3);
        let s = spec(&c, 8.0, 100.0, 2);
        let id = c.add_service(&s, &[NodeId(0), NodeId(1)], SimTime::ZERO);
        assert_eq!(c.total_load(cpu), 16.0);
        let svc = c.remove_service(id).unwrap();
        assert_eq!(svc.id, id);
        assert_eq!(c.total_load(cpu), 0.0);
        assert_eq!(c.total_load(disk), 0.0);
        assert_eq!(c.service_count(), 0);
        assert!(c.remove_service(id).is_none());
        c.check_invariants();
    }

    #[test]
    fn report_load_updates_node_aggregate() {
        let (mut c, _, disk) = two_metric_cluster(2);
        let s = spec(&c, 2.0, 10.0, 1);
        let id = c.add_service(&s, &[NodeId(1)], SimTime::ZERO);
        let rid = c.service(id).unwrap().replicas[0];
        let prev = c.report_load(rid, disk, 25.0);
        assert_eq!(prev, 10.0);
        assert_eq!(c.node(NodeId(1)).load[disk], 25.0);
        c.check_invariants();
    }

    #[test]
    fn move_replica_transfers_load() {
        let (mut c, cpu, _) = two_metric_cluster(3);
        let s = spec(&c, 6.0, 30.0, 1);
        let id = c.add_service(&s, &[NodeId(0)], SimTime::ZERO);
        let rid = c.service(id).unwrap().replicas[0];
        c.move_replica(rid, NodeId(2));
        assert_eq!(c.node(NodeId(0)).load[cpu], 0.0);
        assert_eq!(c.node(NodeId(2)).load[cpu], 6.0);
        assert_eq!(c.replica(rid).unwrap().node, NodeId(2));
        c.check_invariants();
    }

    #[test]
    fn node_cost_cache_tracks_every_mutation() {
        let (mut c, _, disk) = two_metric_cluster(3);
        let verify = |c: &Cluster| {
            for n in c.nodes() {
                assert_eq!(
                    c.node_cost(n.id).to_bits(),
                    c.metrics().cost_of(&n.load).to_bits(),
                    "stale cost cache on {}",
                    n.id
                );
            }
        };
        verify(&c);
        let s = spec(&c, 6.0, 120.0, 2);
        let id = c.add_service(&s, &[NodeId(0), NodeId(2)], SimTime::ZERO);
        verify(&c);
        let rid = c.service(id).unwrap().replicas[0];
        c.report_load(rid, disk, 480.0);
        verify(&c);
        c.move_replica(rid, NodeId(1));
        verify(&c);
        c.remove_service(id);
        verify(&c);
        assert_eq!(c.node_cost(NodeId(1)), 0.0);
    }

    #[test]
    #[should_panic(expected = "already hosts a replica")]
    fn move_onto_sibling_panics() {
        let (mut c, _, _) = two_metric_cluster(3);
        let s = spec(&c, 1.0, 1.0, 2);
        let id = c.add_service(&s, &[NodeId(0), NodeId(1)], SimTime::ZERO);
        let rid = c.service(id).unwrap().replicas[0];
        c.move_replica(rid, NodeId(1));
    }

    #[test]
    #[should_panic(expected = "distinct nodes")]
    fn duplicate_placement_panics() {
        let (mut c, _, _) = two_metric_cluster(3);
        let s = spec(&c, 1.0, 1.0, 2);
        c.add_service(&s, &[NodeId(0), NodeId(0)], SimTime::ZERO);
    }

    #[test]
    fn promote_swaps_roles() {
        let (mut c, _, _) = two_metric_cluster(4);
        let s = spec(&c, 1.0, 1.0, 3);
        let id = c.add_service(&s, &[NodeId(0), NodeId(1), NodeId(2)], SimTime::ZERO);
        let secondary = c.service(id).unwrap().replicas[1];
        c.promote(secondary);
        assert_eq!(c.primary_of(id).unwrap().id, secondary);
        c.check_invariants();
        // Promoting the current primary is a no-op that keeps one primary.
        c.promote(secondary);
        c.check_invariants();
    }

    #[test]
    fn violations_detected_per_metric() {
        let (mut c, cpu, disk) = two_metric_cluster(2);
        let s = spec(&c, 50.0, 600.0, 1);
        c.add_service(&s, &[NodeId(0)], SimTime::ZERO);
        c.add_service(&s, &[NodeId(0)], SimTime::ZERO);
        // Node 0: cpu 100 > 96, disk 1200 > 1000 -> two violations.
        let v = c.violations();
        assert_eq!(v, vec![(NodeId(0), cpu), (NodeId(0), disk)]);
    }

    #[test]
    fn violation_dirty_set_tracks_every_mutation() {
        let (mut c, cpu, disk) = two_metric_cluster(3);
        let full_scan = |c: &Cluster| {
            let mut out = Vec::new();
            for node in c.nodes() {
                for (mid, def) in c.metrics().iter() {
                    if node.load[mid] > def.node_capacity {
                        out.push((node.id, mid));
                    }
                }
            }
            out
        };
        let s = spec(&c, 50.0, 600.0, 1);
        let a = c.add_service(&s, &[NodeId(0)], SimTime::ZERO);
        let b = c.add_service(&s, &[NodeId(0)], SimTime::ZERO);
        assert_eq!(c.violations(), vec![(NodeId(0), cpu), (NodeId(0), disk)]);
        assert_eq!(c.violations(), full_scan(&c));
        // Moving one replica clears both violations on node 0.
        let rid = c.service(b).unwrap().replicas[0];
        c.move_replica(rid, NodeId(1));
        assert_eq!(c.violations(), full_scan(&c));
        assert!(!c.has_violations());
        // A load report re-violates just one metric.
        c.report_load(rid, disk, 1200.0);
        assert_eq!(c.violations(), vec![(NodeId(1), disk)]);
        // Draining the host does NOT clear the violation: the load is
        // still there (the old full scan included down nodes too).
        c.set_node_up(NodeId(1), false);
        assert_eq!(c.violations(), vec![(NodeId(1), disk)]);
        c.set_node_up(NodeId(1), true);
        // Capacity change re-derives membership for every node.
        c.set_metric_capacity(cpu, 40.0);
        assert_eq!(c.violations(), full_scan(&c));
        assert!(c.violations().contains(&(NodeId(0), cpu)));
        c.remove_service(a);
        c.remove_service(b);
        assert_eq!(c.violations(), full_scan(&c));
        c.check_invariants();
    }

    #[test]
    fn candidate_index_orders_up_nodes_by_cached_cost() {
        let (mut c, _, _) = two_metric_cluster(4);
        // Distinct loads: node 2 cheapest (empty), then 3, 1, 0.
        c.add_service(&spec(&c, 30.0, 10.0, 1), &[NodeId(0)], SimTime::ZERO);
        c.add_service(&spec(&c, 20.0, 10.0, 1), &[NodeId(1)], SimTime::ZERO);
        c.add_service(&spec(&c, 10.0, 10.0, 1), &[NodeId(3)], SimTime::ZERO);
        let order: Vec<NodeId> = c.candidate_nodes_by_cost().collect();
        assert_eq!(order, vec![NodeId(2), NodeId(3), NodeId(1), NodeId(0)]);
        // A down node leaves the index; restoring it returns it.
        c.set_node_up(NodeId(3), false);
        let order: Vec<NodeId> = c.candidate_nodes_by_cost().collect();
        assert_eq!(order, vec![NodeId(2), NodeId(1), NodeId(0)]);
        c.set_node_up(NodeId(3), true);
        assert_eq!(c.candidate_nodes_by_cost().count(), 4);
        c.check_invariants();
    }

    #[test]
    fn domain_index_partitions_by_fault_domain() {
        let mut metrics = MetricRegistry::new();
        metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: 96.0,
            balancing_weight: 1.0,
        });
        let mut c = Cluster::new(ClusterConfig {
            node_count: 6,
            metrics,
            fault_domains: 3,
        });
        assert_eq!(c.fault_domain_count(), 3);
        // Load node 0 so node 3 becomes domain 0's cheapest.
        let mut load = c.metrics().zero_load();
        load[MetricId(0)] = 12.0;
        let s = ServiceSpec {
            name: "db".into(),
            tag: 0,
            replica_count: 1,
            default_load: load,
        };
        c.add_service(&s, &[NodeId(0)], SimTime::ZERO);
        let d0: Vec<NodeId> = c.domain_nodes_by_cost(0).collect();
        assert_eq!(d0, vec![NodeId(3), NodeId(0)]);
        let d1: Vec<NodeId> = c.domain_nodes_by_cost(1).collect();
        assert_eq!(d1, vec![NodeId(1), NodeId(4)]);
        assert_eq!(c.domain_nodes_by_cost(99).count(), 0);
        c.check_invariants();
    }

    #[test]
    fn derived_state_oracles_fire_on_corruption() {
        let (mut c, cpu, _) = two_metric_cluster(2);
        c.add_service(&spec(&c, 50.0, 10.0, 1), &[NodeId(0)], SimTime::ZERO);
        assert!(c.invariants_ok());
        c.corrupt_violation_set_for_test(NodeId(0), cpu);
        assert!(!c.invariants_ok(), "dirty-set oracle must fire");
        c.corrupt_violation_set_for_test(NodeId(0), cpu);
        assert!(c.invariants_ok());
        c.corrupt_cost_index_for_test(NodeId(1));
        assert!(!c.invariants_ok(), "candidate-index oracle must fire");
        c.corrupt_cost_index_for_test(NodeId(1));
        assert!(c.invariants_ok());
    }

    #[test]
    fn totals_and_capacity() {
        let (mut c, cpu, _) = two_metric_cluster(3);
        let s = spec(&c, 10.0, 5.0, 1);
        c.add_service(&s, &[NodeId(0)], SimTime::ZERO);
        c.add_service(&s, &[NodeId(1)], SimTime::ZERO);
        assert_eq!(c.total_load(cpu), 20.0);
        assert_eq!(c.total_capacity(cpu), 3.0 * 96.0);
        c.set_node_up(NodeId(2), false);
        assert_eq!(c.total_capacity(cpu), 2.0 * 96.0);
    }
}
