//! Strongly typed identifiers for cluster entities.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw numeric value.
            #[inline]
            pub fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

id_type!(
    /// A cluster node.
    NodeId,
    u32,
    "node-"
);
id_type!(
    /// A service (one database, from the upper layers' perspective).
    ServiceId,
    u64,
    "svc-"
);
id_type!(
    /// One replica of a service.
    ReplicaId,
    u64,
    "rep-"
);
id_type!(
    /// A registered dynamic load metric.
    MetricId,
    u32,
    "metric-"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_prefix() {
        assert_eq!(NodeId(3).to_string(), "node-3");
        assert_eq!(ServiceId(12).to_string(), "svc-12");
        assert_eq!(ReplicaId(7).to_string(), "rep-7");
        assert_eq!(MetricId(0).to_string(), "metric-0");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        // DetHashSet (not std HashSet) keeps even test iteration order
        // reproducible, and exercises the Hash derive all the same.
        let mut s = toto_simcore::collections::det_hash_set();
        s.insert(NodeId(1));
        s.insert(NodeId(1));
        s.insert(NodeId(2));
        assert_eq!(s.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }
}
