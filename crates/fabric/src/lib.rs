//! A Service Fabric style cluster orchestrator, simulated.
//!
//! §3.1 describes everything Toto needs from Service Fabric: clusters of
//! nodes hosting service replicas; *dynamic load metrics* reported by every
//! replica and aggregated per node; per-node *logical capacities* per
//! metric; and a Placement and Load Balancer (PLB) that places replicas,
//! balances load, and — when a node's aggregate load exceeds its logical
//! capacity — *fails over* a replica to another node. The PLB "uses the
//! Simulated Annealing algorithm to decide where to place replicas" (§5.2),
//! which is why repeat runs are not bit-identical even with identical
//! inputs.
//!
//! This crate implements those contracts:
//!
//! * [`metrics`] — arbitrary named metrics with per-node logical capacities
//!   ("a metric can be arbitrary and model anything", §3.1).
//! * [`cluster`] — nodes, services, replicas, load aggregation, capacity
//!   violation detection and the replica life-cycle.
//! * [`plb`] — simulated-annealing placement, violation-driven failovers
//!   (move a replica off the hot node, promoting a secondary when the
//!   primary moves) and proactive balancing.
//! * [`naming`] — the Naming Service, Service Fabric's "highly available
//!   metastore database" (§3.3.1) that Toto uses both for the model XML
//!   and for persisted metric state.
//!
//! The crate is deliberately independent of Toto's domain vocabulary: it
//! knows nothing about database editions or SLOs. Services carry an opaque
//! `tag` that upper layers (control plane, telemetry) interpret.

pub mod cluster;
pub mod ids;
pub mod metrics;
pub mod naming;
pub mod plb;

pub use cluster::{Cluster, ClusterConfig, Replica, ReplicaRole, Service, ServiceSpec};
pub use ids::{MetricId, NodeId, ReplicaId, ServiceId};
pub use metrics::{LoadVec, MetricDef, MetricRegistry};
pub use naming::NamingService;
pub use plb::{DrainBlocked, FailoverEvent, FailoverReason, PlacementError, Plb, PlbConfig};
