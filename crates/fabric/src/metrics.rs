//! Dynamic load metrics.
//!
//! §3.1: "Every orchestration framework needs to be informed of application
//! load … The PLB in Service Fabric addresses this with the notion of
//! dynamic load metrics. A metric can be arbitrary and model anything …
//! Each resource metric has a predefined node-level logical capacity,
//! which specifies the load threshold at which PLB will initiate a
//! failover."

use crate::ids::MetricId;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Definition of one dynamic load metric.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDef {
    /// Human-readable name ("Cpu", "Disk", …).
    pub name: String,
    /// Node-level logical capacity; aggregate replica load beyond this
    /// threshold triggers PLB violation fixing.
    pub node_capacity: f64,
    /// Weight of this metric in the PLB's balancing cost function.
    pub balancing_weight: f64,
}

/// The set of metrics a cluster governs. Fixed at cluster construction
/// (matching SF, where capacities are part of cluster configuration).
#[derive(Clone, Debug, Default)]
pub struct MetricRegistry {
    defs: Vec<MetricDef>,
}

impl MetricRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a metric; returns its id.
    pub fn register(&mut self, def: MetricDef) -> MetricId {
        assert!(
            def.node_capacity > 0.0,
            "metric '{}' needs a positive capacity",
            def.name
        );
        assert!(
            self.defs.iter().all(|d| d.name != def.name),
            "duplicate metric name '{}'",
            def.name
        );
        let id = MetricId(self.defs.len() as u32);
        self.defs.push(def);
        id
    }

    /// Change a metric's node-level logical capacity mid-run (chaos
    /// capacity degradation / restoration). Callers owning derived state
    /// (cached node costs) must refresh it afterwards. Returns the
    /// previous capacity. Panics on a non-positive capacity.
    pub fn set_node_capacity(&mut self, id: MetricId, node_capacity: f64) -> f64 {
        assert!(
            node_capacity > 0.0,
            "metric '{}' needs a positive capacity",
            self.defs[id.0 as usize].name
        );
        let prev = self.defs[id.0 as usize].node_capacity;
        self.defs[id.0 as usize].node_capacity = node_capacity;
        prev
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True iff no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Definition lookup.
    pub fn def(&self, id: MetricId) -> &MetricDef {
        &self.defs[id.0 as usize]
    }

    /// Find a metric id by name.
    pub fn by_name(&self, name: &str) -> Option<MetricId> {
        self.defs
            .iter()
            .position(|d| d.name == name)
            .map(|i| MetricId(i as u32))
    }

    /// Iterate `(id, def)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MetricId, &MetricDef)> {
        self.defs
            .iter()
            .enumerate()
            .map(|(i, d)| (MetricId(i as u32), d))
    }

    /// A zeroed load vector of the right arity.
    pub fn zero_load(&self) -> LoadVec {
        LoadVec {
            values: vec![0.0; self.defs.len()],
        }
    }

    /// Weighted squared-utilization cost of a load vector — the PLB's
    /// per-node balancing objective. Summation order is the registration
    /// order, so the result is bit-identical however often it is
    /// recomputed for the same load.
    pub fn cost_of(&self, load: &LoadVec) -> f64 {
        debug_assert_eq!(load.values.len(), self.defs.len());
        let mut cost = 0.0;
        for (def, &value) in self.defs.iter().zip(&load.values) {
            let util = value / def.node_capacity;
            cost += def.balancing_weight * util * util;
        }
        cost
    }

    /// [`cost_of`](Self::cost_of) of `load + extra`, computed without
    /// materialising the sum. Bit-identical to cloning `load`, calling
    /// [`LoadVec::add`] and costing the result.
    pub fn cost_with(&self, load: &LoadVec, extra: &LoadVec) -> f64 {
        debug_assert_eq!(load.values.len(), self.defs.len());
        debug_assert_eq!(extra.values.len(), self.defs.len());
        let mut cost = 0.0;
        for ((def, &a), &b) in self.defs.iter().zip(&load.values).zip(&extra.values) {
            let util = (a + b) / def.node_capacity;
            cost += def.balancing_weight * util * util;
        }
        cost
    }

    /// [`cost_of`](Self::cost_of) of `load - extra`, clamped at zero per
    /// component exactly like [`LoadVec::sub_clamped`], computed without
    /// materialising the difference.
    pub fn cost_without(&self, load: &LoadVec, extra: &LoadVec) -> f64 {
        debug_assert_eq!(load.values.len(), self.defs.len());
        debug_assert_eq!(extra.values.len(), self.defs.len());
        let mut cost = 0.0;
        for ((def, &a), &b) in self.defs.iter().zip(&load.values).zip(&extra.values) {
            let util = (a - b).max(0.0) / def.node_capacity;
            cost += def.balancing_weight * util * util;
        }
        cost
    }
}

/// A per-metric load vector (replica-reported loads or node aggregates).
#[derive(Clone, PartialEq, Default)]
pub struct LoadVec {
    values: Vec<f64>,
}

impl LoadVec {
    /// Construct from raw values (arity must match the registry's).
    pub fn from_values(values: Vec<f64>) -> Self {
        LoadVec { values }
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Component-wise addition of `other`.
    pub fn add(&mut self, other: &LoadVec) {
        debug_assert_eq!(self.values.len(), other.values.len());
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
    }

    /// Component-wise subtraction of `other`, clamped at zero to absorb
    /// floating-point dust when a replica's load is fully removed.
    pub fn sub_clamped(&mut self, other: &LoadVec) {
        debug_assert_eq!(self.values.len(), other.values.len());
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a = (*a - b).max(0.0);
        }
    }

    /// Raw component slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }
}

impl Index<MetricId> for LoadVec {
    type Output = f64;
    fn index(&self, id: MetricId) -> &f64 {
        &self.values[id.0 as usize]
    }
}

impl IndexMut<MetricId> for LoadVec {
    fn index_mut(&mut self, id: MetricId) -> &mut f64 {
        &mut self.values[id.0 as usize]
    }
}

impl fmt::Debug for LoadVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LoadVec{:?}", self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> MetricRegistry {
        let mut r = MetricRegistry::new();
        r.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: 96.0,
            balancing_weight: 1.0,
        });
        r.register(MetricDef {
            name: "Disk".into(),
            node_capacity: 7000.0,
            balancing_weight: 1.0,
        });
        r
    }

    #[test]
    fn register_and_lookup() {
        let r = registry();
        assert_eq!(r.len(), 2);
        let cpu = r.by_name("Cpu").unwrap();
        assert_eq!(r.def(cpu).node_capacity, 96.0);
        assert!(r.by_name("Network").is_none());
        assert_eq!(r.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_names_panic() {
        let mut r = registry();
        r.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: 1.0,
            balancing_weight: 1.0,
        });
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_panics() {
        let mut r = MetricRegistry::new();
        r.register(MetricDef {
            name: "X".into(),
            node_capacity: 0.0,
            balancing_weight: 1.0,
        });
    }

    #[test]
    fn load_vec_arithmetic() {
        let r = registry();
        let cpu = r.by_name("Cpu").unwrap();
        let disk = r.by_name("Disk").unwrap();
        let mut a = r.zero_load();
        a[cpu] = 4.0;
        a[disk] = 100.0;
        let mut b = r.zero_load();
        b[cpu] = 2.0;
        b[disk] = 150.0;
        a.add(&b);
        assert_eq!(a[cpu], 6.0);
        assert_eq!(a[disk], 250.0);
        a.sub_clamped(&b);
        a.sub_clamped(&b);
        assert_eq!(a[cpu], 2.0);
        // Clamped: 250 - 150 - 150 -> 0, not -50.
        assert_eq!(a[disk], 0.0);
    }

    #[test]
    fn cost_with_and_without_match_materialised_vectors_bitwise() {
        let r = registry();
        let cpu = r.by_name("Cpu").unwrap();
        let disk = r.by_name("Disk").unwrap();
        let mut load = r.zero_load();
        load[cpu] = 37.3;
        load[disk] = 4111.25;
        let mut extra = r.zero_load();
        extra[cpu] = 8.1;
        extra[disk] = 350.7;

        let mut sum = load.clone();
        sum.add(&extra);
        assert_eq!(
            r.cost_with(&load, &extra).to_bits(),
            r.cost_of(&sum).to_bits()
        );

        let mut diff = load.clone();
        diff.sub_clamped(&extra);
        assert_eq!(
            r.cost_without(&load, &extra).to_bits(),
            r.cost_of(&diff).to_bits()
        );

        // Clamping also matches when the subtrahend dominates.
        let mut big = r.zero_load();
        big[cpu] = 90.0;
        big[disk] = 9000.0;
        let mut clamped = load.clone();
        clamped.sub_clamped(&big);
        assert_eq!(
            r.cost_without(&load, &big).to_bits(),
            r.cost_of(&clamped).to_bits()
        );
    }

    #[test]
    fn cost_of_zero_load_is_zero() {
        let r = registry();
        assert_eq!(r.cost_of(&r.zero_load()), 0.0);
    }
}
