//! The Naming Service — Service Fabric's highly available metastore.
//!
//! §3.3.1: "Naming Service is a highly available metastore database in
//! Service Fabric. In production today, Azure SQL DB uses it to store
//! metadata about the services that are running in the cluster." Toto uses
//! it twice over: the orchestrator writes the serialized model XML here
//! (re-read by every RgManager every 15 minutes), and §3.3.2 stores the
//! previously reported value of *persisted* metrics here so a newly
//! promoted primary reports the same disk usage as the old one.
//!
//! The simulation keeps it as a versioned key-value store with operation
//! counters (so benches can report naming-service traffic).

use std::collections::BTreeMap;

/// A value plus the version at which it was last written.
#[derive(Clone, Debug, PartialEq)]
struct Entry {
    value: String,
    version: u64,
}

/// Operation counters for observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NamingStats {
    /// Total writes (including overwrites).
    pub writes: u64,
    /// Total reads (hits and misses).
    pub reads: u64,
    /// Total deletes of existing keys.
    pub deletes: u64,
}

/// The simulated Naming Service.
#[derive(Clone, Debug, Default)]
pub struct NamingService {
    entries: BTreeMap<String, Entry>,
    counter: u64,
    stats: NamingStats,
}

impl NamingService {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write (or overwrite) a key. Returns the new version.
    ///
    /// Overwrites update the entry in place, reusing the stored key
    /// allocation — persisted-metric state is rewritten every report
    /// period, so the overwrite path is far hotter than first insert.
    pub fn write(&mut self, key: &str, value: impl Into<String>) -> u64 {
        let version = self.bump_write();
        match self.entries.get_mut(key) {
            Some(e) => {
                e.value = value.into();
                e.version = version;
            }
            None => {
                self.entries.insert(
                    key.to_string(),
                    Entry {
                        value: value.into(),
                        version,
                    },
                );
            }
        }
        self.emit_write(key, version);
        version
    }

    /// Write (or overwrite) a key by formatting straight into the stored
    /// buffer. On overwrite neither the key nor the value allocates: the
    /// existing value `String` is cleared and refilled. Counts, versions,
    /// and trace events are identical to [`NamingService::write`].
    pub fn write_with(&mut self, key: &str, fill: impl FnOnce(&mut String)) -> u64 {
        let version = self.bump_write();
        match self.entries.get_mut(key) {
            Some(e) => {
                e.value.clear();
                fill(&mut e.value);
                e.version = version;
            }
            None => {
                let mut value = String::new();
                fill(&mut value);
                self.entries
                    .insert(key.to_string(), Entry { value, version });
            }
        }
        self.emit_write(key, version);
        version
    }

    fn bump_write(&mut self) -> u64 {
        self.counter += 1;
        self.stats.writes += 1;
        self.counter
    }

    fn emit_write(&self, key: &str, version: u64) {
        toto_trace::emit(toto_trace::EventKind::NamingWrite, || {
            toto_trace::EventBody::NamingWrite {
                key: key.to_string(),
                version,
            }
        });
    }

    /// Read a key's value.
    pub fn read(&mut self, key: &str) -> Option<String> {
        self.stats.reads += 1;
        self.entries.get(key).map(|e| e.value.clone())
    }

    /// Read a key's value without cloning it. Counts as a read, exactly
    /// like [`NamingService::read`] — the RgManager report path calls
    /// this once per persisted-metric report, which at density 140 is
    /// tens of thousands of reads per simulated hour.
    pub fn get(&mut self, key: &str) -> Option<&str> {
        self.stats.reads += 1;
        self.entries.get(key).map(|e| e.value.as_str())
    }

    /// Read a key's value together with its version; useful for callers
    /// that only want to re-parse when the blob changed (RgManager's
    /// 15-minute refresh does exactly this).
    pub fn read_versioned(&mut self, key: &str) -> Option<(String, u64)> {
        self.stats.reads += 1;
        self.entries.get(key).map(|e| (e.value.clone(), e.version))
    }

    /// Borrowing variant of [`NamingService::read_versioned`]: the model
    /// XML blob runs to kilobytes and every node's RgManager re-reads it
    /// every simulated 15 minutes, so the refresh path must not clone it
    /// just to discover the version is unchanged.
    pub fn get_versioned(&mut self, key: &str) -> Option<(&str, u64)> {
        self.stats.reads += 1;
        self.entries.get(key).map(|e| (e.value.as_str(), e.version))
    }

    /// Delete a key. Returns true if it existed.
    pub fn delete(&mut self, key: &str) -> bool {
        let existed = self.entries.remove(key).is_some();
        if existed {
            self.stats.deletes += 1;
        }
        toto_trace::emit(toto_trace::EventKind::NamingDelete, || {
            toto_trace::EventBody::NamingDelete {
                key: key.to_string(),
                existed: u64::from(existed),
            }
        });
        existed
    }

    /// True iff the key exists. Unlike [`NamingService::read`] this does
    /// not count toward [`NamingStats`], so it is safe to call from
    /// `debug_assert!` guards without perturbing reported traffic.
    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keys with a given prefix, in lexicographic order. Borrows from
    /// the store — the chaos oracle walks every persisted-state key
    /// after every dispatched event, so this path must not clone.
    pub fn keys_with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> {
        self.entries
            .range::<str, _>((
                std::ops::Bound::Included(prefix),
                std::ops::Bound::Unbounded,
            ))
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.as_str())
    }

    /// Operation counters.
    pub fn stats(&self) -> NamingStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut ns = NamingService::new();
        ns.write("toto/models", "<xml/>");
        assert_eq!(ns.read("toto/models"), Some("<xml/>".into()));
        assert_eq!(ns.read("missing"), None);
        assert_eq!(ns.len(), 1);
    }

    #[test]
    fn versions_increase_on_overwrite() {
        let mut ns = NamingService::new();
        let v1 = ns.write("k", "a");
        let v2 = ns.write("k", "b");
        assert!(v2 > v1);
        let (val, ver) = ns.read_versioned("k").unwrap();
        assert_eq!(val, "b");
        assert_eq!(ver, v2);
    }

    #[test]
    fn delete_and_stats() {
        let mut ns = NamingService::new();
        ns.write("a", "1");
        ns.read("a");
        ns.read("nope");
        assert!(ns.delete("a"));
        assert!(!ns.delete("a"));
        let st = ns.stats();
        assert_eq!(st.writes, 1);
        assert_eq!(st.reads, 2);
        assert_eq!(st.deletes, 1);
        assert!(ns.is_empty());
    }

    #[test]
    fn prefix_scan_is_sorted() {
        let mut ns = NamingService::new();
        ns.write("toto/state/rep-2", "x");
        ns.write("toto/state/rep-1", "y");
        ns.write("toto/models", "z");
        ns.write("other", "w");
        assert_eq!(
            ns.keys_with_prefix("toto/state/").collect::<Vec<_>>(),
            vec!["toto/state/rep-1", "toto/state/rep-2"]
        );
        assert_eq!(ns.keys_with_prefix("zzz").count(), 0);
    }
}
