//! The Placement and Load Balancer.
//!
//! §3.1: the PLB "decides the placement and movement of databases",
//! aggregates the dynamic load metrics into a per-node view, and, when a
//! node's aggregate load exceeds its logical capacity, "will select a
//! replica on the heavily loaded node and move it to another node in the
//! cluster" — a *failover*. §5.2 notes the PLB "uses the Simulated
//! Annealing algorithm to decide where to place replicas … to prevent
//! getting stuck in locally optimal solutions", and that its seed cannot
//! be fixed across runs, the source of the non-determinism quantified in
//! §5.3.4.
//!
//! The implementation mirrors that structure:
//!
//! * **Placement** starts from a greedy least-cost assignment and runs a
//!   short simulated-annealing refinement over alternative node choices.
//! * **Violation fixing** walks violating `(node, metric)` pairs in
//!   deterministic order, picks the cheapest replica whose departure
//!   clears the violation (preferring secondaries — moving a primary is
//!   customer-visible), and anneal-selects a feasible target node. When a
//!   primary must move, a secondary is promoted first, exactly like SF's
//!   swap-primary behaviour.
//! * **Balancing** proactively moves replicas from the hottest node when
//!   utilization spread exceeds a threshold.

use std::collections::BTreeSet;

use crate::cluster::{Cluster, ReplicaRole, ServiceSpec};
use crate::ids::{MetricId, NodeId, ReplicaId, ServiceId};
use crate::metrics::LoadVec;
use toto_simcore::rng::DetRng;
use toto_simcore::time::SimTime;

/// PLB tuning knobs.
#[derive(Clone, Debug)]
pub struct PlbConfig {
    /// Simulated-annealing iterations per placement decision.
    pub anneal_iterations: u32,
    /// Initial annealing temperature, in cost units.
    pub initial_temperature: f64,
    /// Geometric cooling factor per iteration, in `(0, 1)`.
    pub cooling: f64,
    /// Upper bound on failovers performed per violation-fixing pass; the
    /// next pass (at the next PLB tick) picks up whatever remains.
    pub max_moves_per_pass: u32,
    /// Fraction of logical capacity usable when *placing* new replicas.
    /// 1.0 allows filling nodes to exactly their capacity.
    pub placement_headroom: f64,
    /// Utilization spread (max − min, per metric) beyond which proactive
    /// balancing kicks in.
    pub balancing_threshold: f64,
    /// Node count at and above which failover targeting walks the
    /// cluster's cost-ordered candidate index instead of scanning every
    /// node. Pruning changes which RNG draws the anneal consumes, so
    /// the default sits well above the paper-scale rings (14 gen5
    /// nodes): their pinned seeded traces keep replaying byte-for-byte
    /// while hyperscale rings get the O(k) walk.
    pub candidate_prune_min_nodes: u32,
    /// Number of feasible candidates collected from the pruned index
    /// walk before the anneal runs. The walk visits nodes cheapest
    /// cached cost first, so the greedy best is always in the set; the
    /// limit only bounds how much of the tail the anneal may explore.
    pub candidate_limit: u32,
}

impl Default for PlbConfig {
    fn default() -> Self {
        PlbConfig {
            anneal_iterations: 200,
            initial_temperature: 0.05,
            cooling: 0.96,
            max_moves_per_pass: 16,
            placement_headroom: 1.0,
            balancing_threshold: 0.30,
            candidate_prune_min_nodes: 64,
            candidate_limit: 32,
        }
    }
}

/// Why placement failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// Fewer feasible nodes than requested replicas. The control plane
    /// reacts to this with a *creation redirect* (§5.3.1).
    NotEnoughNodes {
        /// Replicas requested.
        needed: u32,
        /// Feasible nodes found.
        feasible: u32,
    },
}

/// Why a replica was moved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailoverReason {
    /// A node exceeded its logical capacity in this metric.
    CapacityViolation(MetricId),
    /// Proactive load balancing.
    Balancing,
    /// The source node was drained for maintenance.
    NodeDrain,
    /// The source node crashed (chaos-injected abrupt failure).
    NodeCrash,
}

/// Draining a node would leave a service with no live replica and no
/// feasible target anywhere; the drain is refused before any mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainBlocked {
    /// The node whose drain was refused.
    pub node: NodeId,
    /// The service whose last live replica cannot be re-homed.
    pub service: ServiceId,
}

impl std::fmt::Display for DrainBlocked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drain of {} blocked: no feasible target for the last live replica of {}",
            self.node, self.service
        )
    }
}

impl std::error::Error for DrainBlocked {}

/// A replica movement, the paper's primary QoS event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailoverEvent {
    /// When the move happened.
    pub time: SimTime,
    /// The service whose replica moved.
    pub service: ServiceId,
    /// The moved replica.
    pub replica: ReplicaId,
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Role of the moved replica *at the time the move was decided* — a
    /// primary move is customer-visible (§3.1: "the application may
    /// experience a brief moment of unavailability").
    pub role: ReplicaRole,
    /// The trigger.
    pub reason: FailoverReason,
    /// The secondary promoted to primary, when a primary had to move.
    pub promoted: Option<ReplicaId>,
}

/// Reusable scratch buffers for the PLB's decision hot paths. Placement
/// and failover targeting run hundreds of thousands of times per density
/// study; keeping their working vectors here means each decision is
/// allocation-free after the first call (buffers are cleared, never
/// shrunk). Holding them on the `Plb` never aliases cluster state: every
/// decision method rebuilds the buffers it uses from the cluster it is
/// handed before reading them.
#[derive(Clone, Debug, Default)]
struct Scratch {
    /// `(marginal cost, node)` pairs ranked ascending for placement.
    ranked: Vec<(f64, NodeId)>,
    /// Marginal placement cost per node, indexed by raw node id; stale
    /// entries are overwritten before each use.
    marginal: Vec<f64>,
    /// Candidate nodes for the current decision, in evaluation order.
    candidates: Vec<NodeId>,
    /// Memoized per-candidate target costs, parallel to `candidates`.
    costs: Vec<f64>,
    /// Fault-domain working set for collision counting.
    domains: Vec<u32>,
    /// Sibling fault domains of the replica being retargeted.
    sibling_domains: Vec<u32>,
}

/// The Placement and Load Balancer.
#[derive(Clone, Debug)]
pub struct Plb {
    config: PlbConfig,
    rng: DetRng,
    scratch: Scratch,
}

impl Plb {
    /// Create a PLB with the given configuration and annealing seed.
    pub fn new(config: PlbConfig, seed: u64) -> Self {
        assert!(config.cooling > 0.0 && config.cooling < 1.0);
        assert!(config.placement_headroom > 0.0);
        Plb {
            config,
            rng: DetRng::seed_from_u64(seed),
            scratch: Scratch::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PlbConfig {
        &self.config
    }

    /// Cost delta of adding `extra` to node `n`'s current load.
    /// Allocation-free: the hypothetical cost iterates metric pairs
    /// directly and the base cost is the cluster's cached per-node value,
    /// both bit-identical to the clone-and-recompute they replace.
    fn add_cost(cluster: &Cluster, n: NodeId, extra: &LoadVec) -> f64 {
        cluster.metrics().cost_with(&cluster.node(n).load, extra) - cluster.node_cost(n)
    }

    /// Cost penalty per fault-domain collision within one service's
    /// placement. Large relative to utilization costs (which are O(1)),
    /// so the annealer only ever accepts a collision when the domain
    /// count forces one.
    const DOMAIN_COLLISION_PENALTY: f64 = 10.0;

    /// Number of same-domain pairs collapsed to `n - distinct_domains`.
    /// `scratch` is a reusable working buffer (cleared on entry).
    fn domain_collisions(cluster: &Cluster, nodes: &[NodeId], scratch: &mut Vec<u32>) -> f64 {
        scratch.clear();
        scratch.extend(nodes.iter().map(|n| cluster.node(*n).fault_domain));
        scratch.sort_unstable();
        scratch.dedup();
        (nodes.len() - scratch.len()) as f64
    }

    /// True iff `extra` fits on node `n` within `headroom × capacity`.
    fn fits(cluster: &Cluster, n: NodeId, extra: &LoadVec, headroom: f64) -> bool {
        let node = cluster.node(n);
        if !node.up {
            return false;
        }
        cluster
            .metrics()
            .iter()
            .all(|(mid, def)| node.load[mid] + extra[mid] <= def.node_capacity * headroom)
    }

    /// Decide a placement for a new service: `replica_count` distinct
    /// nodes, primary first. Does not mutate the cluster.
    ///
    /// The marginal cost of each feasible node is computed exactly once
    /// per decision, before sorting; the greedy sort, the annealing loop
    /// and the final primary sort all read the precomputed table. With a
    /// cached per-node base cost this makes a placement decision
    /// O(nodes × metrics + n log n + iterations) instead of
    /// O(n log n × metrics) cost evaluations with an allocation each.
    pub fn place_new_service(
        &mut self,
        cluster: &Cluster,
        spec: &ServiceSpec,
    ) -> Result<Vec<NodeId>, PlacementError> {
        let k = spec.replica_count as usize;
        assert!(k >= 1, "services need at least one replica");
        let headroom = self.config.placement_headroom;
        // Rank feasible nodes by marginal cost (computed once per node —
        // the comparator only reads precomputed keys). `total_cmp` gives
        // a total order even for NaN, so the sort cannot panic.
        let ranked = &mut self.scratch.ranked;
        ranked.clear();
        for n in cluster.nodes() {
            if Self::fits(cluster, n.id, &spec.default_load, headroom) {
                ranked.push((Self::add_cost(cluster, n.id, &spec.default_load), n.id));
            }
        }
        if ranked.len() < k {
            let found = ranked.len() as u32;
            toto_trace::emit(toto_trace::EventKind::PlacementRejected, || {
                toto_trace::EventBody::PlacementRejected {
                    needed: u64::from(spec.replica_count),
                    feasible: u64::from(found),
                }
            });
            return Err(PlacementError::NotEnoughNodes {
                needed: spec.replica_count,
                feasible: found,
            });
        }
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        // Marginal-cost lookup table for the anneal, indexed by raw node
        // id, plus the feasible set in rank order.
        let marginal = &mut self.scratch.marginal;
        marginal.clear();
        marginal.resize(cluster.node_count(), f64::INFINITY);
        for &(cost, n) in ranked.iter() {
            marginal[n.0 as usize] = cost;
        }
        let feasible = &mut self.scratch.candidates;
        feasible.clear();
        feasible.extend(ranked.iter().map(|&(_, n)| n));
        // Greedy start: cheapest nodes first, preferring fault domains not
        // already used by this placement.
        let mut chosen: Vec<NodeId> = Vec::with_capacity(k);
        let mut used_domains: Vec<u32> = Vec::with_capacity(k);
        for &n in feasible.iter() {
            if chosen.len() == k {
                break;
            }
            let d = cluster.node(n).fault_domain;
            if !used_domains.contains(&d) {
                chosen.push(n);
                used_domains.push(d);
            }
        }
        // Fewer domains than replicas: fill with the cheapest remaining.
        for &n in feasible.iter() {
            if chosen.len() == k {
                break;
            }
            if !chosen.contains(&n) {
                chosen.push(n);
            }
        }
        if feasible.len() > k {
            // Simulated-annealing refinement: try swapping a chosen node
            // for an unchosen feasible one. The candidate slot is mutated
            // in place and reverted on rejection, so the loop allocates
            // nothing; the collision count is maintained in O(1) per swap
            // from per-domain membership counts (`collisions = k −
            // distinct domains`) instead of re-sorted every iteration.
            let counts = &mut self.scratch.domains;
            counts.clear();
            let max_domain = cluster
                .nodes()
                .iter()
                .map(|n| n.fault_domain)
                .max()
                .unwrap_or(0);
            counts.resize(max_domain as usize + 1, 0);
            let mut distinct: usize = 0;
            for &n in chosen.iter() {
                let d = cluster.node(n).fault_domain as usize;
                if counts[d] == 0 {
                    distinct += 1;
                }
                counts[d] += 1;
            }
            let mut temperature = self.config.initial_temperature;
            let mut cur_collisions = (k - distinct) as f64;
            // The accumulator must start on the same objective the deltas
            // move it along — marginal cost *plus* the collision penalty
            // of the greedy start — or it silently drifts away from the
            // real objective whenever the greedy start has collisions.
            let mut cost: f64 = chosen.iter().map(|&n| marginal[n.0 as usize]).sum::<f64>()
                + Self::DOMAIN_COLLISION_PENALTY * cur_collisions;
            let mut accepted: u64 = 0;
            for _ in 0..self.config.anneal_iterations {
                let slot = self.rng.next_below(k as u64) as usize;
                let alt = feasible[self.rng.next_below(feasible.len() as u64) as usize];
                if chosen.contains(&alt) {
                    temperature *= self.config.cooling;
                    continue;
                }
                let prev = chosen[slot];
                chosen[slot] = alt;
                let dp = cluster.node(prev).fault_domain as usize;
                let da = cluster.node(alt).fault_domain as usize;
                counts[dp] -= 1;
                if counts[dp] == 0 {
                    distinct -= 1;
                }
                if counts[da] == 0 {
                    distinct += 1;
                }
                counts[da] += 1;
                let alt_collisions = (k - distinct) as f64;
                debug_assert_eq!(
                    alt_collisions,
                    Self::domain_collisions(cluster, &chosen, &mut Vec::new()),
                    "incremental collision count diverged from recount"
                );
                let delta = marginal[alt.0 as usize] - marginal[prev.0 as usize]
                    + Self::DOMAIN_COLLISION_PENALTY * (alt_collisions - cur_collisions);
                if delta < 0.0 || self.rng.next_f64() < (-delta / temperature.max(1e-12)).exp() {
                    cost += delta;
                    cur_collisions = alt_collisions;
                    accepted += 1;
                } else {
                    chosen[slot] = prev;
                    counts[da] -= 1;
                    if counts[da] == 0 {
                        distinct -= 1;
                    }
                    if counts[dp] == 0 {
                        distinct += 1;
                    }
                    counts[dp] += 1;
                }
                temperature *= self.config.cooling;
            }
            if cfg!(debug_assertions) {
                // The accumulator must track the real objective through
                // every accepted swap, not merely stay finite.
                let recomputed = chosen.iter().map(|&n| marginal[n.0 as usize]).sum::<f64>()
                    + Self::DOMAIN_COLLISION_PENALTY
                        * Self::domain_collisions(cluster, &chosen, &mut Vec::new());
                debug_assert!(
                    (cost - recomputed).abs() < 1e-6,
                    "anneal cost accumulator drifted: tracked {cost}, recomputed {recomputed}"
                );
            }
            // A per-decision summary, not one event per iteration: the
            // anneal runs hundreds of iterations per placement and the
            // accept count is what diverging seeds actually perturb. The
            // service id does not exist yet at placement time.
            toto_trace::emit(toto_trace::EventKind::AnnealSummary, || {
                toto_trace::EventBody::AnnealSummary {
                    service: u64::MAX,
                    iterations: u64::from(self.config.anneal_iterations),
                    accepted,
                }
            });
        }
        // Primary on the cheapest of the chosen nodes.
        chosen.sort_by(|&a, &b| {
            marginal[a.0 as usize]
                .total_cmp(&marginal[b.0 as usize])
                .then(a.cmp(&b))
        });
        Ok(chosen)
    }

    /// Place and create a service in one step.
    pub fn create_service(
        &mut self,
        cluster: &mut Cluster,
        spec: &ServiceSpec,
        now: SimTime,
    ) -> Result<ServiceId, PlacementError> {
        let placement = self.place_new_service(cluster, spec)?;
        let id = cluster.add_service(spec, &placement, now);
        debug_assert!(
            cluster.invariants_ok(),
            "create_service broke cluster invariants"
        );
        toto_trace::emit(toto_trace::EventKind::Placement, || {
            toto_trace::EventBody::Placement {
                service: id.raw(),
                replicas: placement.len() as u64,
                primary_node: u64::from(placement[0].raw()),
            }
        });
        Ok(id)
    }

    /// Pick the replica to evict from a violating node: the cheapest
    /// replica whose departure clears the violation, preferring
    /// secondaries; if no single replica suffices, the largest one.
    fn pick_eviction(cluster: &Cluster, node: NodeId, metric: MetricId) -> Option<ReplicaId> {
        let n = cluster.node(node);
        let overshoot = n.load[metric] - cluster.metrics().def(metric).node_capacity;
        if overshoot <= 0.0 {
            return None;
        }
        let mut best: Option<(f64, bool, ReplicaId)> = None; // (move_size, is_primary, id)
        let mut largest: Option<(f64, bool, ReplicaId)> = None;
        for &rid in &n.replicas {
            let rep = cluster.replica(rid).expect("node replica exists");
            let contribution = rep.load[metric];
            // The fallback applies the same secondary-then-id tie-break as
            // the clearing path: on equal contributions an equal-size
            // secondary must be preferred over a primary (a primary move
            // is customer-visible).
            let lkey = (contribution, rep.role == ReplicaRole::Primary, rid);
            let lbetter = match &largest {
                None => true,
                Some((l, p, id)) => lkey.0 > *l || (lkey.0 == *l && (lkey.1, lkey.2) < (*p, *id)),
            };
            if lbetter {
                largest = Some(lkey);
            }
            if contribution >= overshoot {
                // Prefer the smallest clearing move (SF minimises the data
                // moved, and the paper stresses avoiding Premium/BC moves —
                // big local-store replicas only move when nothing smaller
                // clears the violation), tie-breaking toward secondaries
                // and then stable id order.
                let key = (contribution, rep.role == ReplicaRole::Primary, rid);
                let better = match &best {
                    None => true,
                    Some((c, p, id)) => (key.0, key.1, key.2) < (*c, *p, *id),
                };
                if better {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, _, id)| id).or(largest.map(|(_, _, id)| id))
    }

    /// Anneal-select a feasible target node for moving `replica` off its
    /// current node. Returns `None` when no node can absorb it.
    ///
    /// Per-candidate target costs are memoized once before the anneal
    /// loop — the cluster cannot change mid-decision, so every iteration
    /// is a table lookup instead of a fresh cost evaluation.
    ///
    /// On rings with at least `candidate_prune_min_nodes` nodes the
    /// candidate set comes from the cluster's cost-ordered index instead
    /// of a full scan: walk up nodes cheapest-first, prune sibling fault
    /// domains *before* costing, and stop after `candidate_limit`
    /// feasible candidates. Sibling-domain partitions are only consulted
    /// (with the collision penalty) when the non-sibling walk comes up
    /// short, so the search stays complete: `None` still means no up
    /// node anywhere can absorb the replica.
    fn pick_target(&mut self, cluster: &Cluster, replica: ReplicaId) -> Option<NodeId> {
        let rep = cluster.replica(replica)?;
        let service = rep.service;
        let load = &rep.load;
        let from = rep.node;
        // Domains already hosting a sibling replica are penalised so the
        // spread survives failovers where possible.
        let sibling_domains = &mut self.scratch.sibling_domains;
        sibling_domains.clear();
        if let Some(svc) = cluster.service(service) {
            sibling_domains.extend(
                svc.replicas
                    .iter()
                    .filter(|r| **r != replica)
                    .filter_map(|r| cluster.replica(*r))
                    .map(|r| cluster.node(r.node).fault_domain),
            );
        }
        let candidates = &mut self.scratch.candidates;
        candidates.clear();
        let costs = &mut self.scratch.costs;
        costs.clear();
        let headroom = self.config.placement_headroom;
        if cluster.node_count() >= self.config.candidate_prune_min_nodes as usize {
            let limit = (self.config.candidate_limit as usize).max(1);
            // Phase 1: cheapest-first over non-sibling domains. Sibling
            // membership is a domain comparison, so pruned nodes are
            // never costed.
            for n in cluster.candidate_nodes_by_cost() {
                if candidates.len() >= limit {
                    break;
                }
                if n == from
                    || sibling_domains.contains(&cluster.node(n).fault_domain)
                    || cluster.node(n).hosts_service(service)
                {
                    continue;
                }
                if Self::fits(cluster, n, load, headroom) {
                    candidates.push(n);
                    costs.push(Self::add_cost(cluster, n, load));
                }
            }
            // Phase 2: too few spread-preserving targets — fall back to
            // the sibling domains' partitions, penalised exactly as the
            // full scan penalised them.
            if candidates.len() < limit {
                let doms = &mut self.scratch.domains;
                doms.clear();
                doms.extend_from_slice(sibling_domains);
                doms.sort_unstable();
                doms.dedup();
                'domains: for &d in doms.iter() {
                    for n in cluster.domain_nodes_by_cost(d) {
                        if candidates.len() >= limit {
                            break 'domains;
                        }
                        if n == from || cluster.node(n).hosts_service(service) {
                            continue;
                        }
                        if Self::fits(cluster, n, load, headroom) {
                            candidates.push(n);
                            costs.push(
                                Self::add_cost(cluster, n, load) + Self::DOMAIN_COLLISION_PENALTY,
                            );
                        }
                    }
                }
            }
        } else {
            // Paper-scale rings: the exhaustive scan, byte-identical to
            // the pre-index behaviour (same candidates, same order, same
            // RNG consumption).
            for n in cluster.nodes() {
                if n.id == from || n.hosts_service(service) {
                    continue;
                }
                if Self::fits(cluster, n.id, load, headroom) {
                    candidates.push(n.id);
                }
            }
            for &c in candidates.iter() {
                let mut cost = Self::add_cost(cluster, c, load);
                if sibling_domains.contains(&cluster.node(c).fault_domain) {
                    cost += Self::DOMAIN_COLLISION_PENALTY;
                }
                costs.push(cost);
            }
        }
        if candidates.is_empty() {
            return None;
        }
        // Greedy best with annealing-style random exploration among the
        // near-best alternatives.
        let mut best = candidates[0];
        let mut best_cost = costs[0];
        for (&c, &cost) in candidates.iter().zip(costs.iter()).skip(1) {
            if cost < best_cost {
                best = c;
                best_cost = cost;
            }
        }
        // The annealing walk may accept uphill moves to keep exploring,
        // but the *returned* target is the best state ever seen — never
        // wherever the walk happens to stop. (Returning the last-accepted
        // state let a late uphill acceptance ship a strictly worse target
        // than the greedy best already in hand.)
        let mut cur_cost = best_cost;
        let mut temperature = self.config.initial_temperature;
        for _ in 0..(self.config.anneal_iterations / 4).max(1) {
            let alt_idx = self.rng.next_below(candidates.len() as u64) as usize;
            let delta = costs[alt_idx] - cur_cost;
            if delta < 0.0 || self.rng.next_f64() < (-delta / temperature.max(1e-12)).exp() {
                cur_cost = costs[alt_idx];
                if cur_cost < best_cost {
                    best = candidates[alt_idx];
                    best_cost = cur_cost;
                }
            }
            temperature *= self.config.cooling;
        }
        Some(best)
    }

    /// Execute one move, handling primary promotion, and build the event.
    fn execute_move(
        &mut self,
        cluster: &mut Cluster,
        replica: ReplicaId,
        to: NodeId,
        reason: FailoverReason,
        now: SimTime,
    ) -> FailoverEvent {
        let rep = cluster.replica(replica).expect("replica exists");
        let (rep_service, rep_node, rep_role) = (rep.service, rep.node, rep.role);
        let mut promoted = None;
        if rep_role == ReplicaRole::Primary {
            let svc = cluster.service(rep_service).expect("service exists");
            // Promote the first secondary in service order (deterministic).
            if let Some(&sec) = svc.replicas.iter().find(|r| {
                **r != replica
                    && cluster.replica(**r).expect("exists").role == ReplicaRole::Secondary
            }) {
                cluster.promote(sec);
                promoted = Some(sec);
            }
        }
        cluster.move_replica(replica, to);
        toto_trace::emit(toto_trace::EventKind::Failover, || {
            toto_trace::EventBody::Failover {
                service: rep_service.raw(),
                replica: replica.raw(),
                from: u64::from(rep_node.raw()),
                to: u64::from(to.raw()),
                primary: rep_role == ReplicaRole::Primary,
                reason: match reason {
                    FailoverReason::CapacityViolation(m) => {
                        format!("capacity_violation:{m}")
                    }
                    FailoverReason::Balancing => "balancing".to_string(),
                    FailoverReason::NodeDrain => "node_drain".to_string(),
                    FailoverReason::NodeCrash => "node_crash".to_string(),
                },
                promoted: promoted.map_or(u64::MAX, |p| p.raw()),
            }
        });
        FailoverEvent {
            time: now,
            service: rep_service,
            replica,
            from: rep_node,
            to,
            role: rep_role,
            reason,
            promoted,
        }
    }

    /// Fix capacity violations by failing over replicas, up to
    /// `max_moves_per_pass` moves. Violations that cannot be fixed (no
    /// feasible target anywhere) are left standing for the next pass.
    pub fn fix_violations(&mut self, cluster: &mut Cluster, now: SimTime) -> Vec<FailoverEvent> {
        let mut events = Vec::new();
        let mut moves = 0u32;
        // One ViolationUnresolved per (node, metric) per call: the outer
        // loop revisits standing violations every pass, and trace
        // summaries must count unresolved violations, not passes.
        let mut reported: BTreeSet<(NodeId, MetricId)> = BTreeSet::new();
        loop {
            if moves >= self.config.max_moves_per_pass {
                break;
            }
            let violations = cluster.violations();
            if violations.is_empty() {
                break;
            }
            let mut progressed = false;
            for (node, metric) in violations {
                if moves >= self.config.max_moves_per_pass {
                    break;
                }
                // Re-check: an earlier move this pass may have resolved it.
                let def = cluster.metrics().def(metric).node_capacity;
                if cluster.node(node).load[metric] <= def {
                    continue;
                }
                let reported = &mut reported;
                let mut unresolved = move || {
                    if reported.insert((node, metric)) {
                        toto_trace::emit(toto_trace::EventKind::ViolationUnresolved, || {
                            toto_trace::EventBody::ViolationUnresolved {
                                node: u64::from(node.raw()),
                                resource: u64::from(metric.raw()),
                            }
                        });
                    }
                };
                let Some(victim) = Self::pick_eviction(cluster, node, metric) else {
                    unresolved();
                    continue;
                };
                let Some(target) = self.pick_target(cluster, victim) else {
                    unresolved();
                    continue;
                };
                events.push(self.execute_move(
                    cluster,
                    victim,
                    target,
                    FailoverReason::CapacityViolation(metric),
                    now,
                ));
                moves += 1;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        debug_assert!(
            cluster.invariants_ok(),
            "fix_violations broke cluster invariants"
        );
        events
    }

    /// Proactive balancing: while some metric's node-utilization spread
    /// exceeds the threshold, move a replica from the hottest node to a
    /// cooler one. Bounded by half the per-pass move budget.
    pub fn balance(&mut self, cluster: &mut Cluster, now: SimTime) -> Vec<FailoverEvent> {
        let mut events = Vec::new();
        let budget = (self.config.max_moves_per_pass / 2).max(1);
        for _ in 0..budget {
            let Some((metric, hot)) = self.most_imbalanced(cluster) else {
                break;
            };
            // Try replicas on the hot node from largest contribution down.
            let mut replicas: Vec<(f64, ReplicaId)> = cluster
                .node(hot)
                .replicas
                .iter()
                .map(|&r| (cluster.replica(r).expect("exists").load[metric], r))
                .collect();
            replicas.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            let before = cluster.node_cost(hot);
            let mut moved = false;
            for (_, rid) in replicas {
                if let Some(target) = self.pick_target(cluster, rid) {
                    let rep = cluster.replica(rid).expect("exists");
                    let load = &rep.load;
                    // Only move if it strictly improves the imbalance.
                    let gain = before
                        - cluster
                            .metrics()
                            .cost_without(&cluster.node(hot).load, load);
                    let mut pay = Self::add_cost(cluster, target, load);
                    // Price the move the way pick_target priced the
                    // target: landing in a fault domain that already
                    // hosts a sibling replica pays the collision
                    // penalty, so balancing never judges a
                    // spread-breaking move an improvement.
                    let target_domain = cluster.node(target).fault_domain;
                    let collides = cluster.service(rep.service).is_some_and(|svc| {
                        svc.replicas
                            .iter()
                            .filter(|r| **r != rid)
                            .filter_map(|r| cluster.replica(*r))
                            .any(|s| cluster.node(s.node).fault_domain == target_domain)
                    });
                    if collides {
                        pay += Self::DOMAIN_COLLISION_PENALTY;
                    }
                    if gain > pay {
                        events.push(self.execute_move(
                            cluster,
                            rid,
                            target,
                            FailoverReason::Balancing,
                            now,
                        ));
                        moved = true;
                        break;
                    }
                }
            }
            if !moved {
                break;
            }
        }
        debug_assert!(cluster.invariants_ok(), "balance broke cluster invariants");
        events
    }

    /// The metric with the largest utilization spread beyond the
    /// threshold, plus its hottest node.
    fn most_imbalanced(&self, cluster: &Cluster) -> Option<(MetricId, NodeId)> {
        let mut worst: Option<(f64, MetricId, NodeId)> = None;
        for (mid, def) in cluster.metrics().iter() {
            let mut max_u = f64::NEG_INFINITY;
            let mut min_u = f64::INFINITY;
            let mut hot = NodeId(0);
            for n in cluster.nodes().iter().filter(|n| n.up) {
                let u = n.load[mid] / def.node_capacity;
                if u > max_u {
                    max_u = u;
                    hot = n.id;
                }
                min_u = min_u.min(u);
            }
            let spread = max_u - min_u;
            if spread > self.config.balancing_threshold
                && worst.as_ref().is_none_or(|(s, _, _)| spread > *s)
            {
                worst = Some((spread, mid, hot));
            }
        }
        worst.map(|(_, m, n)| (m, n))
    }

    /// Drain a node: mark it down and move every replica elsewhere.
    ///
    /// Refused with [`DrainBlocked`] — before any mutation — when the node
    /// hosts a service's last live replica and no feasible target exists:
    /// silently stranding that replica on a down node (the old behavior)
    /// turned a maintenance drain into an availability loss. Replicas
    /// that still have live siblings may strand (the node stays down);
    /// production blocks the upgrade domain in the same situation.
    pub fn drain_node(
        &mut self,
        cluster: &mut Cluster,
        node: NodeId,
        now: SimTime,
    ) -> Result<Vec<FailoverEvent>, DrainBlocked> {
        for &rid in &cluster.node(node).replicas {
            let rep = cluster.replica(rid).expect("node replica exists");
            let svc = cluster
                .service(rep.service)
                .expect("replica's service exists");
            let last_live = svc
                .replicas
                .iter()
                .filter(|r| **r != rid)
                .filter_map(|r| cluster.replica(*r))
                .all(|sib| !cluster.node(sib.node).up);
            if !last_live {
                continue;
            }
            // Existence check only (no annealing, no RNG draws): would
            // *any* node take this replica once its host goes down?
            let movable = cluster.nodes().iter().any(|n| {
                n.id != node
                    && !n.hosts_service(rep.service)
                    && Self::fits(cluster, n.id, &rep.load, self.config.placement_headroom)
            });
            if !movable {
                return Err(DrainBlocked {
                    node,
                    service: rep.service,
                });
            }
        }
        cluster.set_node_up(node, false);
        let mut events = Vec::new();
        let replicas: Vec<ReplicaId> = cluster.node(node).replicas.clone();
        for rid in replicas {
            if let Some(target) = self.pick_target(cluster, rid) {
                events.push(self.execute_move(
                    cluster,
                    rid,
                    target,
                    FailoverReason::NodeDrain,
                    now,
                ));
            }
        }
        debug_assert!(
            cluster.invariants_ok(),
            "drain_node broke cluster invariants"
        );
        Ok(events)
    }

    /// Crash a node: mark it down immediately and fail over every replica
    /// that has a feasible target; the rest stay stranded on the dead node
    /// until it restarts. Unlike [`Plb::drain_node`], a crash cannot be
    /// refused — the node is already gone.
    pub fn crash_node(
        &mut self,
        cluster: &mut Cluster,
        node: NodeId,
        now: SimTime,
    ) -> Vec<FailoverEvent> {
        cluster.set_node_up(node, false);
        let mut events = Vec::new();
        let replicas: Vec<ReplicaId> = cluster.node(node).replicas.clone();
        for rid in replicas {
            if let Some(target) = self.pick_target(cluster, rid) {
                events.push(self.execute_move(
                    cluster,
                    rid,
                    target,
                    FailoverReason::NodeCrash,
                    now,
                ));
            }
        }
        debug_assert!(
            cluster.invariants_ok(),
            "crash_node broke cluster invariants"
        );
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::metrics::{MetricDef, MetricRegistry};

    fn cluster(nodes: u32, cpu_cap: f64, disk_cap: f64) -> (Cluster, MetricId, MetricId) {
        let mut metrics = MetricRegistry::new();
        let cpu = metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: cpu_cap,
            balancing_weight: 1.0,
        });
        let disk = metrics.register(MetricDef {
            name: "Disk".into(),
            node_capacity: disk_cap,
            balancing_weight: 1.0,
        });
        (
            Cluster::new(ClusterConfig {
                node_count: nodes,
                metrics,
                fault_domains: 1,
            }),
            cpu,
            disk,
        )
    }

    fn spec(c: &Cluster, cpu: f64, disk: f64, replicas: u32) -> ServiceSpec {
        let mut load = c.metrics().zero_load();
        load[MetricId(0)] = cpu;
        load[MetricId(1)] = disk;
        ServiceSpec {
            name: "db".into(),
            tag: 0,
            replica_count: replicas,
            default_load: load,
        }
    }

    fn plb(seed: u64) -> Plb {
        Plb::new(PlbConfig::default(), seed)
    }

    #[test]
    fn placement_spreads_replicas() {
        let (mut c, _, _) = cluster(6, 96.0, 1000.0);
        let mut p = plb(1);
        let s = spec(&c, 8.0, 50.0, 4);
        let placement = p.place_new_service(&c, &s).unwrap();
        assert_eq!(placement.len(), 4);
        let mut sorted = placement.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "distinct nodes");
        c.add_service(&s, &placement, SimTime::ZERO);
        c.check_invariants();
    }

    #[test]
    fn placement_prefers_empty_nodes() {
        let (mut c, _, _) = cluster(3, 96.0, 1000.0);
        let mut p = plb(2);
        // Pre-load node 0 heavily.
        let heavy = spec(&c, 80.0, 100.0, 1);
        c.add_service(&heavy, &[NodeId(0)], SimTime::ZERO);
        let s = spec(&c, 8.0, 10.0, 1);
        // With two empty nodes, the PLB should avoid node 0 essentially
        // always (annealing may explore, but the final answer is greedy).
        let placement = p.place_new_service(&c, &s).unwrap();
        assert_ne!(placement[0], NodeId(0));
    }

    #[test]
    fn placement_fails_when_capacity_exhausted() {
        let (mut c, _, _) = cluster(2, 16.0, 100.0);
        let mut p = plb(3);
        let filler = spec(&c, 15.0, 10.0, 1);
        c.add_service(&filler, &[NodeId(0)], SimTime::ZERO);
        c.add_service(&filler, &[NodeId(1)], SimTime::ZERO);
        let s = spec(&c, 4.0, 10.0, 1);
        let err = p.place_new_service(&c, &s).unwrap_err();
        assert_eq!(
            err,
            PlacementError::NotEnoughNodes {
                needed: 1,
                feasible: 0
            }
        );
    }

    #[test]
    fn placement_needs_enough_distinct_nodes() {
        let (c, _, _) = cluster(3, 96.0, 1000.0);
        let mut p = plb(4);
        let s = spec(&c, 1.0, 1.0, 4);
        let err = p.place_new_service(&c, &s).unwrap_err();
        assert_eq!(
            err,
            PlacementError::NotEnoughNodes {
                needed: 4,
                feasible: 3
            }
        );
    }

    #[test]
    fn violation_triggers_failover() {
        let (mut c, _, disk) = cluster(3, 96.0, 100.0);
        let mut p = plb(5);
        let a = spec(&c, 4.0, 60.0, 1);
        let id_a = c.add_service(&a, &[NodeId(0)], SimTime::ZERO);
        let b = spec(&c, 4.0, 30.0, 1);
        c.add_service(&b, &[NodeId(0)], SimTime::ZERO);
        // Grow a's disk beyond node capacity.
        let rid = c.service(id_a).unwrap().replicas[0];
        c.report_load(rid, disk, 80.0); // node 0 disk = 110 > 100
        let events = p.fix_violations(&mut c, SimTime::from_secs(10));
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.reason, FailoverReason::CapacityViolation(disk));
        assert_eq!(ev.from, NodeId(0));
        assert!(c.violations().is_empty());
        c.check_invariants();
    }

    #[test]
    fn smallest_clearing_replica_is_moved() {
        let (mut c, _, disk) = cluster(3, 96.0, 100.0);
        let mut p = plb(6);
        let big = spec(&c, 4.0, 70.0, 1);
        let small = spec(&c, 4.0, 0.0, 1);
        c.add_service(&big, &[NodeId(0)], SimTime::ZERO);
        let id_small = c.add_service(&small, &[NodeId(0)], SimTime::ZERO);
        let rid_small = c.service(id_small).unwrap().replicas[0];
        // Overshoot = 10; the 40 GB replica clears it, the 70 GB one also
        // would, but the smaller clearing replica is preferred.
        c.report_load(rid_small, disk, 40.0);
        let events = p.fix_violations(&mut c, SimTime::ZERO);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].replica, rid_small);
    }

    #[test]
    fn primary_move_promotes_secondary() {
        let (mut c, _, disk) = cluster(5, 96.0, 100.0);
        let mut p = plb(7);
        let bc = spec(&c, 8.0, 30.0, 4);
        let id = c.add_service(
            &bc,
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            SimTime::ZERO,
        );
        let filler = spec(&c, 4.0, 60.0, 1);
        c.add_service(&filler, &[NodeId(0)], SimTime::ZERO);
        let primary = c.primary_of(id).unwrap().id;
        // Grow the primary so node 0 violates disk (105 > 100) with the
        // primary as the smallest clearing replica (45 < 60).
        c.report_load(primary, disk, 45.0);
        let events = p.fix_violations(&mut c, SimTime::ZERO);
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.replica, primary);
        assert_eq!(ev.role, ReplicaRole::Primary);
        let promoted = ev.promoted.expect("a secondary must be promoted");
        assert_eq!(c.primary_of(id).unwrap().id, promoted);
        assert_eq!(c.replica(primary).unwrap().role, ReplicaRole::Secondary);
        c.check_invariants();
    }

    #[test]
    fn unresolvable_violation_is_left_standing() {
        let (mut c, _, disk) = cluster(2, 96.0, 100.0);
        let mut p = plb(8);
        // Both nodes nearly full; the violating replica fits nowhere.
        let filler = spec(&c, 4.0, 90.0, 1);
        c.add_service(&filler, &[NodeId(1)], SimTime::ZERO);
        let a = spec(&c, 4.0, 50.0, 1);
        let id = c.add_service(&a, &[NodeId(0)], SimTime::ZERO);
        let rid = c.service(id).unwrap().replicas[0];
        c.report_load(rid, disk, 120.0);
        let events = p.fix_violations(&mut c, SimTime::ZERO);
        assert!(events.is_empty());
        assert_eq!(c.violations().len(), 1);
    }

    #[test]
    fn move_budget_is_respected() {
        let (mut c, _, disk) = cluster(4, 960.0, 100.0);
        let config = PlbConfig {
            max_moves_per_pass: 2,
            ..Default::default()
        };
        let mut p = Plb::new(config, 9);
        // Many small services on node 0, then blow its disk capacity.
        let mut rids = Vec::new();
        for _ in 0..10 {
            let s = spec(&c, 1.0, 9.0, 1);
            let id = c.add_service(&s, &[NodeId(0)], SimTime::ZERO);
            rids.push(c.service(id).unwrap().replicas[0]);
        }
        for r in &rids {
            c.report_load(*r, disk, 15.0); // 150 total > 100
        }
        let events = p.fix_violations(&mut c, SimTime::ZERO);
        assert!(events.len() <= 2, "budget exceeded: {}", events.len());
    }

    #[test]
    fn balance_reduces_spread() {
        let (mut c, cpu, _) = cluster(4, 96.0, 10_000.0);
        let mut p = plb(10);
        for _ in 0..8 {
            let s = spec(&c, 10.0, 10.0, 1);
            c.add_service(&s, &[NodeId(0)], SimTime::ZERO);
        }
        let spread_before = c.node(NodeId(0)).load[cpu] - c.node(NodeId(3)).load[cpu];
        let events = p.balance(&mut c, SimTime::ZERO);
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.reason == FailoverReason::Balancing));
        let spread_after = c.node(NodeId(0)).load[cpu] - c.node(NodeId(3)).load[cpu];
        assert!(spread_after < spread_before);
        c.check_invariants();
    }

    #[test]
    fn drain_empties_node_and_marks_it_down() {
        let (mut c, _, _) = cluster(4, 96.0, 1000.0);
        let mut p = plb(11);
        for _ in 0..3 {
            let s = spec(&c, 4.0, 20.0, 1);
            c.add_service(&s, &[NodeId(2)], SimTime::ZERO);
        }
        let events = p.drain_node(&mut c, NodeId(2), SimTime::ZERO).unwrap();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.reason == FailoverReason::NodeDrain));
        assert!(c.node(NodeId(2)).replicas.is_empty());
        assert!(!c.node(NodeId(2)).up);
        // A drained node is not a placement target.
        let s = spec(&c, 1.0, 1.0, 4);
        let err = p.place_new_service(&c, &s).unwrap_err();
        assert_eq!(
            err,
            PlacementError::NotEnoughNodes {
                needed: 4,
                feasible: 3
            }
        );
        c.check_invariants();
    }

    #[test]
    fn different_seeds_can_place_differently() {
        let (c, _, _) = cluster(10, 96.0, 1000.0);
        // Equalise: all nodes empty, so every placement is cost-equal and
        // the annealing's random exploration decides.
        let s = spec(&c, 4.0, 10.0, 1);
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..20 {
            let mut p = plb(seed);
            let placement = p.place_new_service(&c, &s).unwrap();
            seen.insert(placement[0]);
        }
        // Note: greedy start always picks node 0 on an empty cluster, but
        // annealing explores; with 20 seeds we expect at least 2 outcomes.
        assert!(
            seen.len() >= 2,
            "placement is fully deterministic across seeds"
        );
        c.check_invariants();
    }

    #[test]
    fn placement_spreads_across_fault_domains() {
        let mut metrics = MetricRegistry::new();
        metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: 96.0,
            balancing_weight: 1.0,
        });
        // 8 nodes over 4 domains: a 4-replica service must land in four
        // distinct domains.
        let c = Cluster::new(ClusterConfig {
            node_count: 8,
            metrics,
            fault_domains: 4,
        });
        let mut load = c.metrics().zero_load();
        load[MetricId(0)] = 4.0;
        let s = ServiceSpec {
            name: "bc".into(),
            tag: 0,
            replica_count: 4,
            default_load: load,
        };
        for seed in 0..10 {
            let mut p = plb(seed);
            let placement = p.place_new_service(&c, &s).unwrap();
            let mut domains: Vec<u32> = placement.iter().map(|n| c.node(*n).fault_domain).collect();
            domains.sort_unstable();
            domains.dedup();
            assert_eq!(domains.len(), 4, "placement {placement:?}");
        }
    }

    #[test]
    fn placement_tolerates_fewer_domains_than_replicas() {
        let mut metrics = MetricRegistry::new();
        metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: 96.0,
            balancing_weight: 1.0,
        });
        // 4 nodes in 2 domains: a 4-replica service still places (on four
        // distinct nodes) even though domain collisions are unavoidable.
        let c = Cluster::new(ClusterConfig {
            node_count: 4,
            metrics,
            fault_domains: 2,
        });
        let mut load = c.metrics().zero_load();
        load[MetricId(0)] = 4.0;
        let s = ServiceSpec {
            name: "bc".into(),
            tag: 0,
            replica_count: 4,
            default_load: load,
        };
        let placement = plb(3).place_new_service(&c, &s).unwrap();
        assert_eq!(placement.len(), 4);
    }

    #[test]
    fn failover_target_avoids_sibling_domains_when_possible() {
        let mut metrics = MetricRegistry::new();
        metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: 96.0,
            balancing_weight: 1.0,
        });
        let disk = MetricDef {
            name: "Disk".into(),
            node_capacity: 100.0,
            balancing_weight: 1.0,
        };
        let mut m2 = MetricRegistry::new();
        m2.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: 96.0,
            balancing_weight: 1.0,
        });
        m2.register(disk);
        // 8 nodes, 4 domains (node i in domain i % 4). Place a 3-replica
        // service on nodes 0,1,2 (domains 0,1,2), then violate node 0 so
        // the replica must move: the chosen target should be in domain 3
        // (nodes 3 or 7) when one fits.
        let mut c = Cluster::new(ClusterConfig {
            node_count: 8,
            metrics: m2,
            fault_domains: 4,
        });
        let mut load = c.metrics().zero_load();
        load[MetricId(0)] = 4.0;
        load[MetricId(1)] = 60.0;
        let s = ServiceSpec {
            name: "db".into(),
            tag: 0,
            replica_count: 3,
            default_load: load,
        };
        let id = c.add_service(&s, &[NodeId(0), NodeId(1), NodeId(2)], SimTime::ZERO);
        let rid = c.service(id).unwrap().replicas[0];
        c.report_load(rid, MetricId(1), 150.0);
        // 150 > 100 violates but also cannot move (too big); shrink to a
        // movable overload by adding a filler instead.
        c.report_load(rid, MetricId(1), 60.0);
        let filler = ServiceSpec {
            name: "filler".into(),
            tag: 0,
            replica_count: 1,
            default_load: {
                let mut l = c.metrics().zero_load();
                l[MetricId(1)] = 50.0;
                l
            },
        };
        c.add_service(&filler, &[NodeId(0)], SimTime::ZERO);
        let mut p = plb(5);
        let events = p.fix_violations(&mut c, SimTime::ZERO);
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        if ev.service == id {
            let d = c.node(ev.to).fault_domain;
            assert!(
                d == 3 || !matches!(d, 0..=2),
                "moved into sibling domain {d}"
            );
        }
        c.check_invariants();
    }

    #[test]
    fn failover_target_is_never_worse_than_greedy_best() {
        // Regression: pick_target used to return the annealing walk's
        // *last-accepted* state, so a late uphill acceptance could ship
        // a strictly worse target than the greedy best already in hand.
        // With memoized per-candidate costs the best-seen state can never
        // beat the greedy minimum, so across seeds the chosen target must
        // always be the least-cost feasible node. The candidate loads are
        // kept close together so uphill steps stay likely even at the
        // final annealing temperature — the last-accepted state is then
        // near-uniform over candidates and the old code fails quickly.
        for seed in 0..32 {
            let (mut c, _, _) = cluster(6, 96.0, 1000.0);
            // Distinct load levels on candidate nodes 1..=5 make the
            // cheapest target unique: node 1.
            for (i, d) in [100.0, 110.0, 120.0, 130.0, 140.0].iter().enumerate() {
                let f = spec(&c, 1.0, *d, 1);
                c.add_service(&f, &[NodeId(i as u32 + 1)], SimTime::ZERO);
            }
            let a = spec(&c, 1.0, 150.0, 1);
            let id = c.add_service(&a, &[NodeId(0)], SimTime::ZERO);
            let big = spec(&c, 1.0, 900.0, 1);
            c.add_service(&big, &[NodeId(0)], SimTime::ZERO);
            let rid = c.service(id).unwrap().replicas[0];
            let mut p = plb(seed);
            let events = p.fix_violations(&mut c, SimTime::ZERO);
            assert_eq!(events.len(), 1, "seed {seed}");
            assert_eq!(events[0].replica, rid, "seed {seed}");
            assert_eq!(
                events[0].to,
                NodeId(1),
                "seed {seed}: target is worse than the greedy best"
            );
        }
    }

    #[test]
    fn anneal_accumulator_includes_greedy_collision_penalty() {
        // Regression: place_new_service's anneal accumulator started
        // penalty-free, so a greedy start with unavoidable fault-domain
        // collisions drifted the tracked objective by
        // DOMAIN_COLLISION_PENALTY per collision. The strengthened
        // debug_assert recomputes the objective from scratch after the
        // loop; with 4 replicas on 2 domains (2 unavoidable collisions)
        // the drifted accumulator trips it for every seed.
        let mut metrics = MetricRegistry::new();
        metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: 96.0,
            balancing_weight: 1.0,
        });
        let c = Cluster::new(ClusterConfig {
            node_count: 8,
            metrics,
            fault_domains: 2,
        });
        let mut load = c.metrics().zero_load();
        load[MetricId(0)] = 4.0;
        let s = ServiceSpec {
            name: "bc".into(),
            tag: 0,
            replica_count: 4,
            default_load: load,
        };
        for seed in 0..16 {
            let placement = plb(seed).place_new_service(&c, &s).unwrap();
            assert_eq!(placement.len(), 4);
        }
    }

    #[test]
    fn failover_respects_placement_headroom() {
        // Regression: pick_target hard-coded fits(…, 1.0) while placement
        // honored config.placement_headroom, so failovers could pack a
        // target node past the headroom placements respect.
        let config = PlbConfig {
            placement_headroom: 0.8,
            ..Default::default()
        };
        let (mut c, _, disk) = cluster(3, 96.0, 100.0);
        // Node 0 violates (110 > 100); nodes 1 and 2 sit at 60: the
        // 30-unit replica still fits their raw capacity (90 ≤ 100) but
        // not the configured headroom (90 > 80), so the violation must
        // be left standing instead of packed past headroom.
        let f = spec(&c, 1.0, 60.0, 1);
        c.add_service(&f, &[NodeId(1)], SimTime::ZERO);
        c.add_service(&f, &[NodeId(2)], SimTime::ZERO);
        let a = spec(&c, 1.0, 30.0, 1);
        c.add_service(&a, &[NodeId(0)], SimTime::ZERO);
        let big = spec(&c, 1.0, 80.0, 1);
        c.add_service(&big, &[NodeId(0)], SimTime::ZERO);
        let mut p = Plb::new(config, 7);
        let events = p.fix_violations(&mut c, SimTime::ZERO);
        assert!(events.is_empty(), "moved past headroom: {events:?}");
        assert_eq!(c.violations().len(), 1);
        for n in c.nodes().iter().filter(|n| n.id != NodeId(0)) {
            assert!(n.load[disk] <= 0.8 * 100.0, "{} beyond headroom", n.id);
        }
    }

    #[test]
    fn drain_respects_placement_headroom() {
        let config = PlbConfig {
            placement_headroom: 0.8,
            ..Default::default()
        };
        let (mut c, _, _) = cluster(3, 96.0, 100.0);
        let f = spec(&c, 1.0, 60.0, 1);
        c.add_service(&f, &[NodeId(1)], SimTime::ZERO);
        c.add_service(&f, &[NodeId(2)], SimTime::ZERO);
        // A 2-replica service with its secondary on node 0: the secondary
        // fits nowhere within headroom (30 onto 60-loaded nodes > 80),
        // but its primary stays live on node 1, so the drain proceeds.
        let b = spec(&c, 1.0, 30.0, 2);
        let id = c.add_service(&b, &[NodeId(1), NodeId(0)], SimTime::ZERO);
        let mut p = Plb::new(config, 8);
        let events = p.drain_node(&mut c, NodeId(0), SimTime::ZERO).unwrap();
        // No survivor may be packed past headroom; the secondary stays on
        // the drained node (production blocks the upgrade domain in the
        // same situation).
        assert!(events.is_empty());
        assert!(!c.node(NodeId(0)).up);
        let rid = c.service(id).unwrap().replicas[1];
        assert_eq!(c.replica(rid).unwrap().node, NodeId(0));
    }

    #[test]
    fn drain_blocked_on_last_replica_without_target() {
        // Regression: drain_node used to mark the node down and silently
        // strand a service's *last* replica when no target fit — an
        // availability loss reported as a successful drain. It must now
        // refuse with DrainBlocked and leave the cluster untouched.
        let config = PlbConfig {
            placement_headroom: 0.8,
            ..Default::default()
        };
        let (mut c, _, _) = cluster(3, 96.0, 100.0);
        let f = spec(&c, 1.0, 60.0, 1);
        c.add_service(&f, &[NodeId(1)], SimTime::ZERO);
        c.add_service(&f, &[NodeId(2)], SimTime::ZERO);
        let a = spec(&c, 1.0, 30.0, 1);
        let id = c.add_service(&a, &[NodeId(0)], SimTime::ZERO);
        let mut p = Plb::new(config, 8);
        let err = p.drain_node(&mut c, NodeId(0), SimTime::ZERO).unwrap_err();
        assert_eq!(
            err,
            DrainBlocked {
                node: NodeId(0),
                service: id,
            }
        );
        // Nothing mutated: the node is still up and the replica in place.
        assert!(c.node(NodeId(0)).up);
        let rid = c.service(id).unwrap().replicas[0];
        assert_eq!(c.replica(rid).unwrap().node, NodeId(0));
        c.check_invariants();
    }

    #[test]
    fn crash_moves_replicas_and_strands_the_unplaceable() {
        let (mut c, _, _) = cluster(4, 96.0, 100.0);
        let mut p = plb(12);
        // A movable single-replica service and an unmovable one (90 fits
        // nowhere next to the 60-loads) both live on node 1.
        let f = spec(&c, 1.0, 60.0, 1);
        c.add_service(&f, &[NodeId(2)], SimTime::ZERO);
        c.add_service(&f, &[NodeId(3)], SimTime::ZERO);
        let movable = spec(&c, 1.0, 20.0, 1);
        let id_m = c.add_service(&movable, &[NodeId(1)], SimTime::ZERO);
        let stuck = spec(&c, 1.0, 90.0, 1);
        let id_s = c.add_service(&stuck, &[NodeId(1)], SimTime::ZERO);
        let events = p.crash_node(&mut c, NodeId(1), SimTime::ZERO);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].reason, FailoverReason::NodeCrash);
        assert_eq!(events[0].service, id_m);
        assert!(!c.node(NodeId(1)).up);
        // The unplaceable replica is stranded on the dead node — a crash,
        // unlike a drain, cannot be refused.
        let rid = c.service(id_s).unwrap().replicas[0];
        assert_eq!(c.replica(rid).unwrap().node, NodeId(1));
        c.check_invariants();
    }

    #[test]
    fn eviction_fallback_prefers_equal_size_secondary() {
        // Regression: when no single replica clears the violation, the
        // largest-replica fallback took whichever replica iterated first,
        // evicting a primary even when an equal-size secondary existed.
        let (mut c, _, _) = cluster(4, 96.0, 100.0);
        // Node 0: primary X (60), secondary Y (60, its primary on node
        // 1), filler (45) → load 165, overshoot 65: nothing clears alone.
        let x = spec(&c, 1.0, 60.0, 1);
        c.add_service(&x, &[NodeId(0)], SimTime::ZERO);
        let b = spec(&c, 1.0, 60.0, 2);
        let id_b = c.add_service(&b, &[NodeId(1), NodeId(0)], SimTime::ZERO);
        let filler = spec(&c, 1.0, 45.0, 1);
        c.add_service(&filler, &[NodeId(0)], SimTime::ZERO);
        let y = c.service(id_b).unwrap().replicas[1];
        assert_eq!(c.replica(y).unwrap().role, ReplicaRole::Secondary);
        let mut p = plb(9);
        let events = p.fix_violations(&mut c, SimTime::ZERO);
        assert!(!events.is_empty());
        assert_eq!(
            events[0].replica, y,
            "evicted a primary over an equal-size secondary"
        );
        assert_eq!(events[0].role, ReplicaRole::Secondary);
        c.check_invariants();
    }

    #[test]
    fn pruned_pick_target_matches_full_scan_best() {
        // 80 nodes — above candidate_prune_min_nodes, so pick_target
        // walks the index. Distinct loads make the cheapest feasible
        // target unique (the untouched node 0); the pruned walk visits
        // cheapest-first, so the greedy best must be in the candidate
        // set and best-seen selection must return it, every seed.
        let (mut c, _, _) = cluster(80, 96.0, 1000.0);
        for i in 1..80u32 {
            let f = spec(&c, 1.0, 10.0 + f64::from(i), 1);
            c.add_service(&f, &[NodeId(i)], SimTime::ZERO);
        }
        let a = spec(&c, 1.0, 50.0, 1);
        let id = c.add_service(&a, &[NodeId(5)], SimTime::ZERO);
        let rid = c.service(id).unwrap().replicas[0];
        for seed in 0..8 {
            let mut p = plb(seed);
            assert!(c.node_count() >= p.config().candidate_prune_min_nodes as usize);
            assert_eq!(p.pick_target(&c, rid), Some(NodeId(0)), "seed {seed}");
        }
    }

    #[test]
    fn pruned_target_avoids_sibling_domains() {
        // 70 nodes over 7 fault domains, all empty: plenty of feasible
        // non-sibling capacity, so phase 1 alone fills the candidate set
        // and the chosen target can never share a domain with a sibling.
        let mut metrics = MetricRegistry::new();
        metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: 96.0,
            balancing_weight: 1.0,
        });
        let mut c = Cluster::new(ClusterConfig {
            node_count: 70,
            metrics,
            fault_domains: 7,
        });
        let mut load = c.metrics().zero_load();
        load[MetricId(0)] = 4.0;
        let s = ServiceSpec {
            name: "db".into(),
            tag: 0,
            replica_count: 3,
            default_load: load,
        };
        let id = c.add_service(&s, &[NodeId(0), NodeId(1), NodeId(2)], SimTime::ZERO);
        let rid = c.service(id).unwrap().replicas[0];
        for seed in 0..8 {
            let mut p = plb(seed);
            let target = p
                .pick_target(&c, rid)
                .unwrap_or_else(|| panic!("seed {seed}: no target"));
            let d = c.node(target).fault_domain;
            assert!(
                d != 1 && d != 2,
                "seed {seed}: target {target} in sibling domain {d}"
            );
        }
    }

    #[test]
    fn pruned_pick_target_is_complete_under_scarcity() {
        // Every node is packed except one — and that one sits in a
        // sibling fault domain. Phase 1 finds nothing; the sibling-
        // partition fallback (phase 2) must still find it rather than
        // report the replica unplaceable.
        let mut metrics = MetricRegistry::new();
        metrics.register(MetricDef {
            name: "Disk".into(),
            node_capacity: 100.0,
            balancing_weight: 1.0,
        });
        let mut c = Cluster::new(ClusterConfig {
            node_count: 70,
            metrics,
            fault_domains: 7,
        });
        let mut load = c.metrics().zero_load();
        load[MetricId(0)] = 10.0;
        let s = ServiceSpec {
            name: "db".into(),
            tag: 0,
            replica_count: 2,
            default_load: load,
        };
        // Replicas on node 0 (domain 0) and node 1 (domain 1).
        let id = c.add_service(&s, &[NodeId(0), NodeId(1)], SimTime::ZERO);
        let rid = c.service(id).unwrap().replicas[0];
        // Pack every other node except node 8 (domain 1 — a sibling
        // domain) past the point where the 10-unit replica fits.
        let filler = ServiceSpec {
            name: "filler".into(),
            tag: 0,
            replica_count: 1,
            default_load: {
                let mut l = c.metrics().zero_load();
                l[MetricId(0)] = 95.0;
                l
            },
        };
        for i in 2..70u32 {
            if i == 8 {
                continue;
            }
            c.add_service(&filler, &[NodeId(i)], SimTime::ZERO);
        }
        let mut p = plb(5);
        assert_eq!(p.pick_target(&c, rid), Some(NodeId(8)));
    }

    #[test]
    fn same_seed_same_decisions() {
        let (c, _, _) = cluster(8, 96.0, 1000.0);
        let s = spec(&c, 4.0, 10.0, 3);
        let a = plb(42).place_new_service(&c, &s).unwrap();
        let b = plb(42).place_new_service(&c, &s).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn balance_charges_domain_collision_penalty() {
        // Regression: balance accepted a move when `gain > pay` with
        // `pay = add_cost(target)`, but pick_target had charged
        // DOMAIN_COLLISION_PENALTY when *selecting* that target — so
        // balancing judged a spread-breaking move an improvement that
        // placement would have penalised. Four nodes over two fault
        // domains (0,1,0,1): service `a` has replicas on nodes 0 and 1,
        // node 0 also carries a 30-unit filler, node 2 (the only
        // non-sibling target) is packed so the 45-unit replica cannot
        // fit there. The only target for replica a@0 is node 3 — domain
        // 1, a collision with the sibling on node 1. The raw costs say
        // "move" (gain ≈ 0.51 > pay ≈ 0.22); the penalised accept test
        // must refuse and leave the spread intact (the filler moves
        // instead).
        let mut metrics = MetricRegistry::new();
        metrics.register(MetricDef {
            name: "Cpu".into(),
            node_capacity: 96.0,
            balancing_weight: 1.0,
        });
        let mut c = Cluster::new(ClusterConfig {
            node_count: 4,
            metrics,
            fault_domains: 2,
        });
        let mk = |c: &Cluster, cpu: f64, replicas: u32| {
            let mut load = c.metrics().zero_load();
            load[MetricId(0)] = cpu;
            ServiceSpec {
                name: "db".into(),
                tag: 0,
                replica_count: replicas,
                default_load: load,
            }
        };
        let a = c.add_service(&mk(&c, 45.0, 2), &[NodeId(0), NodeId(1)], SimTime::ZERO);
        c.add_service(&mk(&c, 30.0, 1), &[NodeId(0)], SimTime::ZERO);
        c.add_service(&mk(&c, 60.0, 1), &[NodeId(2)], SimTime::ZERO);
        for seed in 0..8 {
            let mut cl = c.clone();
            let mut p = plb(seed);
            let events = p.balance(&mut cl, SimTime::ZERO);
            for ev in &events {
                assert_ne!(
                    ev.service, a,
                    "seed {seed}: balance moved the spread-critical replica: {ev:?}"
                );
            }
            let domains: Vec<u32> = cl
                .service(a)
                .unwrap()
                .replicas
                .iter()
                .map(|&r| cl.node(cl.replica(r).unwrap().node).fault_domain)
                .collect();
            assert_ne!(
                domains[0], domains[1],
                "seed {seed}: balance created a fault-domain collision"
            );
        }
    }

    #[test]
    fn fix_violations_reports_each_unresolved_violation_once() {
        // Regression: the outer loop of fix_violations re-emitted a
        // ViolationUnresolved trace event for the same (node, metric) on
        // every pass whenever any *other* violation progressed, so trace
        // summaries counted passes, not unresolved violations. Node 0
        // violates and is fixable (the 30-unit replica relocates to
        // node 2); node 1 violates and is hopeless (150 > every node's
        // capacity). Pass 1 fixes node 0 and reports node 1; progress
        // forces pass 2, which must not report node 1 again.
        let sink = toto_trace::Shared::new(toto_trace::BufferSink::new());
        let guard = toto_trace::SessionGuard::install(Box::new(sink.clone()));
        let (mut c, _, _) = cluster(3, 96.0, 100.0);
        let small = spec(&c, 1.0, 30.0, 1);
        let big = spec(&c, 1.0, 80.0, 1);
        let hopeless = spec(&c, 1.0, 150.0, 1);
        c.add_service(&small, &[NodeId(0)], SimTime::ZERO);
        c.add_service(&big, &[NodeId(0)], SimTime::ZERO);
        c.add_service(&hopeless, &[NodeId(1)], SimTime::ZERO);
        let mut p = plb(11);
        let events = p.fix_violations(&mut c, SimTime::ZERO);
        drop(guard);
        assert_eq!(events.len(), 1, "node 0 must be fixed: {events:?}");
        let bytes = sink.with(|b| b.bytes().to_vec());
        let file = toto_trace::codec::decode(&bytes).unwrap();
        let summary = toto_trace::report::summarize(&file);
        assert_eq!(
            summary.by_kind.get("violation_unresolved").copied(),
            Some(1),
            "one unresolved violation must be reported exactly once per call"
        );
    }
}
