//! Property-based tests: random operation sequences must preserve the
//! cluster's accounting invariants, and the PLB must never corrupt state.

use proptest::prelude::*;
use toto_fabric::cluster::{Cluster, ClusterConfig, ServiceSpec};
use toto_fabric::ids::{MetricId, ServiceId};
use toto_fabric::metrics::{MetricDef, MetricRegistry};
use toto_fabric::plb::{Plb, PlbConfig};
use toto_simcore::time::SimTime;

#[derive(Debug, Clone)]
enum Op {
    Create { cpu: f64, disk: f64, replicas: u32 },
    Remove { index: usize },
    Report { index: usize, disk: f64 },
    FixViolations,
}

/// Raw cluster mutations for exercising the per-node cost cache: unlike
/// [`Op`], these drive `move_replica` directly (no PLB in between).
#[derive(Debug, Clone)]
enum CacheOp {
    Add { cpu: f64, disk: f64, replicas: u32 },
    Move { replica: usize, node: u32 },
    Report { replica: usize, disk: f64 },
    Drop { index: usize },
}

fn cache_op_strategy() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (1.0f64..16.0, 1.0f64..300.0, 1u32..=4).prop_map(|(cpu, disk, replicas)| CacheOp::Add {
            cpu,
            disk,
            replicas
        }),
        (0usize..256, 0u32..8).prop_map(|(replica, node)| CacheOp::Move { replica, node }),
        (0usize..256, 0.0f64..900.0).prop_map(|(replica, disk)| CacheOp::Report { replica, disk }),
        (0usize..64).prop_map(|index| CacheOp::Drop { index }),
    ]
}

/// Fault-injection mutations interleaved with normal traffic: the chaos
/// engine's building blocks (crash / restart / degrade) driven directly
/// against the fabric, with the same invariants the engine's oracles
/// enforce at the experiment level.
#[derive(Debug, Clone)]
enum ChaosOp {
    Create {
        cpu: f64,
        disk: f64,
        replicas: u32,
    },
    Remove {
        index: usize,
    },
    Report {
        index: usize,
        disk: f64,
    },
    Crash {
        node: u32,
    },
    Restart {
        node: u32,
    },
    /// Shrink (or restore) disk capacity to `permille`/1000 of baseline.
    Degrade {
        permille: u32,
    },
    FixViolations,
}

fn chaos_op_strategy() -> impl Strategy<Value = ChaosOp> {
    prop_oneof![
        (1.0f64..16.0, 1.0f64..300.0, 1u32..=4).prop_map(|(cpu, disk, replicas)| {
            ChaosOp::Create {
                cpu,
                disk,
                replicas,
            }
        }),
        (0usize..64).prop_map(|index| ChaosOp::Remove { index }),
        (0usize..64, 0.0f64..900.0).prop_map(|(index, disk)| ChaosOp::Report { index, disk }),
        (0u32..8).prop_map(|node| ChaosOp::Crash { node }),
        (0u32..8).prop_map(|node| ChaosOp::Restart { node }),
        (300u32..=1000).prop_map(|permille| ChaosOp::Degrade { permille }),
        Just(ChaosOp::FixViolations),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1.0f64..16.0, 1.0f64..300.0, 1u32..=4).prop_map(|(cpu, disk, replicas)| Op::Create {
            cpu,
            disk,
            replicas
        }),
        (0usize..64).prop_map(|index| Op::Remove { index }),
        (0usize..64, 0.0f64..900.0).prop_map(|(index, disk)| Op::Report { index, disk }),
        Just(Op::FixViolations),
    ]
}

fn build_cluster() -> (Cluster, MetricId, MetricId) {
    let mut metrics = MetricRegistry::new();
    let cpu = metrics.register(MetricDef {
        name: "Cpu".into(),
        node_capacity: 96.0,
        balancing_weight: 1.0,
    });
    let disk = metrics.register(MetricDef {
        name: "Disk".into(),
        node_capacity: 2_000.0,
        balancing_weight: 1.0,
    });
    (
        Cluster::new(ClusterConfig {
            node_count: 8,
            metrics,
            fault_domains: 1,
        }),
        cpu,
        disk,
    )
}

/// Drive one seeded chaos sequence, asserting the cluster's structural
/// invariants and bitwise cost-cache agreement after every op. Returns a
/// state digest plus the trace bytes the run emitted, for cross-replay
/// byte-identity checks.
fn run_chaos_sequence(ops: &[ChaosOp], seed: u64) -> (Vec<u64>, Vec<u8>) {
    let sink = toto_trace::Shared::new(toto_trace::BufferSink::new());
    let guard = toto_trace::SessionGuard::install(Box::new(sink.clone()));
    let (mut cluster, cpu, disk) = build_cluster();
    let base_disk_capacity = cluster.metrics().def(disk).node_capacity;
    let mut plb = Plb::new(PlbConfig::default(), seed);
    let mut services: Vec<ServiceId> = Vec::new();
    for op in ops {
        match *op {
            ChaosOp::Create {
                cpu: c,
                disk: d,
                replicas,
            } => {
                let mut load = cluster.metrics().zero_load();
                load[cpu] = c;
                load[disk] = d;
                let spec = ServiceSpec {
                    name: "db".into(),
                    tag: 0,
                    replica_count: replicas,
                    default_load: load,
                };
                if let Ok(id) = plb.create_service(&mut cluster, &spec, SimTime::ZERO) {
                    services.push(id);
                }
            }
            ChaosOp::Remove { index } => {
                if !services.is_empty() {
                    let id = services.remove(index % services.len());
                    assert!(cluster.remove_service(id).is_some());
                }
            }
            ChaosOp::Report { index, disk: d } => {
                if !services.is_empty() {
                    let id = services[index % services.len()];
                    let rid = cluster.service(id).unwrap().replicas[0];
                    cluster.report_load(rid, disk, d);
                }
            }
            ChaosOp::Crash { node } => {
                plb.crash_node(
                    &mut cluster,
                    toto_fabric::ids::NodeId(node % 8),
                    SimTime::ZERO,
                );
            }
            ChaosOp::Restart { node } => {
                cluster.set_node_up(toto_fabric::ids::NodeId(node % 8), true);
            }
            ChaosOp::Degrade { permille } => {
                cluster
                    .set_metric_capacity(disk, base_disk_capacity * f64::from(permille) / 1000.0);
            }
            ChaosOp::FixViolations => {
                plb.fix_violations(&mut cluster, SimTime::ZERO);
            }
        }
        cluster.check_invariants();
        for n in cluster.nodes() {
            assert_eq!(
                cluster.node_cost(n.id).to_bits(),
                cluster.metrics().cost_of(&n.load).to_bits(),
                "cost cache diverged on {} after {op:?}",
                n.id
            );
        }
    }
    let mut digest: Vec<u64> = Vec::new();
    for n in cluster.nodes() {
        digest.push(u64::from(n.id.raw()));
        digest.push(u64::from(n.up));
        digest.push(n.replicas.len() as u64);
        digest.push(cluster.node_cost(n.id).to_bits());
        digest.push(n.load[cpu].to_bits());
        digest.push(n.load[disk].to_bits());
    }
    digest.push(services.len() as u64);
    drop(guard);
    (digest, sink.with(|b| b.bytes().to_vec()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_op_sequences_preserve_invariants(ops in prop::collection::vec(op_strategy(), 1..60), seed: u64) {
        let (mut cluster, cpu, disk) = build_cluster();
        let mut plb = Plb::new(PlbConfig::default(), seed);
        let mut services: Vec<ServiceId> = Vec::new();
        for op in ops {
            match op {
                Op::Create { cpu: c, disk: d, replicas } => {
                    let mut load = cluster.metrics().zero_load();
                    load[cpu] = c;
                    load[disk] = d;
                    let spec = ServiceSpec {
                        name: "db".into(),
                        tag: 0,
                        replica_count: replicas,
                        default_load: load,
                    };
                    if let Ok(id) = plb.create_service(&mut cluster, &spec, SimTime::ZERO) {
                        services.push(id);
                    }
                }
                Op::Remove { index } => {
                    if !services.is_empty() {
                        let id = services.remove(index % services.len());
                        prop_assert!(cluster.remove_service(id).is_some());
                    }
                }
                Op::Report { index, disk: d } => {
                    if !services.is_empty() {
                        let id = services[index % services.len()];
                        let rid = cluster.service(id).unwrap().replicas[0];
                        cluster.report_load(rid, disk, d);
                    }
                }
                Op::FixViolations => {
                    let events = plb.fix_violations(&mut cluster, SimTime::ZERO);
                    // Every reported move must reference live entities.
                    for e in &events {
                        prop_assert!(cluster.service(e.service).is_some());
                        prop_assert!(cluster.replica(e.replica).is_some());
                        prop_assert_eq!(cluster.replica(e.replica).unwrap().node, e.to);
                    }
                }
            }
            cluster.check_invariants();
        }
        // Total load equals the sum over replicas at all times (checked by
        // check_invariants); finally, removing everything zeroes the loads.
        for id in services {
            cluster.remove_service(id);
        }
        prop_assert!(cluster.total_load(cpu).abs() < 1e-6);
        prop_assert!(cluster.total_load(disk).abs() < 1e-6);
    }

    #[test]
    fn node_cost_cache_matches_recompute_after_random_ops(
        ops in prop::collection::vec(cache_op_strategy(), 1..80),
        seed: u64,
    ) {
        // The incremental per-node cost cache must stay *bitwise* equal
        // to a from-scratch recompute after any seeded sequence of
        // add / move / report / drop mutations.
        let (mut cluster, cpu, disk) = build_cluster();
        let mut plb = Plb::new(PlbConfig::default(), seed);
        let mut services: Vec<ServiceId> = Vec::new();
        for op in ops {
            match op {
                CacheOp::Add { cpu: c, disk: d, replicas } => {
                    let mut load = cluster.metrics().zero_load();
                    load[cpu] = c;
                    load[disk] = d;
                    let spec = ServiceSpec {
                        name: "db".into(),
                        tag: 0,
                        replica_count: replicas,
                        default_load: load,
                    };
                    if let Ok(id) = plb.create_service(&mut cluster, &spec, SimTime::ZERO) {
                        services.push(id);
                    }
                }
                CacheOp::Move { replica, node } => {
                    let live: Vec<_> = cluster.replicas().map(|r| (r.id, r.service, r.node)).collect();
                    if !live.is_empty() {
                        let (rid, service, from) = live[replica % live.len()];
                        let to = toto_fabric::ids::NodeId(node % 8);
                        if to != from && !cluster.node(to).hosts_service(service) {
                            cluster.move_replica(rid, to);
                        }
                    }
                }
                CacheOp::Report { replica, disk: d } => {
                    let live: Vec<_> = cluster.replicas().map(|r| r.id).collect();
                    if !live.is_empty() {
                        cluster.report_load(live[replica % live.len()], disk, d);
                    }
                }
                CacheOp::Drop { index } => {
                    if !services.is_empty() {
                        let id = services.remove(index % services.len());
                        prop_assert!(cluster.remove_service(id).is_some());
                    }
                }
            }
            for n in cluster.nodes() {
                let recomputed = cluster.metrics().cost_of(&n.load);
                prop_assert_eq!(
                    cluster.node_cost(n.id).to_bits(),
                    recomputed.to_bits(),
                    "cached cost diverged on {} ({} vs {})",
                    n.id,
                    cluster.node_cost(n.id),
                    recomputed
                );
            }
        }
    }

    #[test]
    fn chaos_sequences_preserve_invariants_and_determinism(
        ops in prop::collection::vec(chaos_op_strategy(), 1..60),
        seed: u64,
    ) {
        // One pass checks structural invariants and bitwise cost-cache
        // agreement after every mutation; a second identically-seeded
        // pass must take byte-identical decisions (same state digest,
        // same trace bytes) — the PLB-determinism contract under faults.
        let (digest_a, trace_a) = run_chaos_sequence(&ops, seed);
        let (digest_b, trace_b) = run_chaos_sequence(&ops, seed);
        prop_assert_eq!(digest_a, digest_b, "state digest diverged across replays");
        prop_assert_eq!(trace_a, trace_b, "trace bytes diverged across replays");
    }

    #[test]
    fn placement_never_colocates_replicas(seed: u64, cpu_load in 1.0f64..24.0, replicas in 2u32..=4) {
        let (mut cluster, cpu, disk) = build_cluster();
        let mut plb = Plb::new(PlbConfig::default(), seed);
        let mut load = cluster.metrics().zero_load();
        load[cpu] = cpu_load;
        load[disk] = 10.0;
        let spec = ServiceSpec {
            name: "db".into(),
            tag: 0,
            replica_count: replicas,
            default_load: load,
        };
        let placement = plb.place_new_service(&cluster, &spec).unwrap();
        let mut nodes = placement.clone();
        nodes.sort_unstable();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), placement.len());
        let id = cluster.add_service(&spec, &placement, SimTime::ZERO);
        cluster.check_invariants();
        prop_assert_eq!(cluster.service(id).unwrap().replicas.len(), replicas as usize);
    }
}
