//! Property-based tests: random operation sequences must preserve the
//! cluster's accounting invariants, and the PLB must never corrupt state.

use proptest::prelude::*;
use toto_fabric::cluster::{Cluster, ClusterConfig, ServiceSpec};
use toto_fabric::ids::{MetricId, ServiceId};
use toto_fabric::metrics::{MetricDef, MetricRegistry};
use toto_fabric::plb::{Plb, PlbConfig};
use toto_simcore::time::SimTime;

#[derive(Debug, Clone)]
enum Op {
    Create { cpu: f64, disk: f64, replicas: u32 },
    Remove { index: usize },
    Report { index: usize, disk: f64 },
    FixViolations,
}

/// Raw cluster mutations for exercising the per-node cost cache: unlike
/// [`Op`], these drive `move_replica` directly (no PLB in between).
#[derive(Debug, Clone)]
enum CacheOp {
    Add { cpu: f64, disk: f64, replicas: u32 },
    Move { replica: usize, node: u32 },
    Report { replica: usize, disk: f64 },
    Drop { index: usize },
}

fn cache_op_strategy() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (1.0f64..16.0, 1.0f64..300.0, 1u32..=4).prop_map(|(cpu, disk, replicas)| CacheOp::Add {
            cpu,
            disk,
            replicas
        }),
        (0usize..256, 0u32..8).prop_map(|(replica, node)| CacheOp::Move { replica, node }),
        (0usize..256, 0.0f64..900.0).prop_map(|(replica, disk)| CacheOp::Report { replica, disk }),
        (0usize..64).prop_map(|index| CacheOp::Drop { index }),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1.0f64..16.0, 1.0f64..300.0, 1u32..=4).prop_map(|(cpu, disk, replicas)| Op::Create {
            cpu,
            disk,
            replicas
        }),
        (0usize..64).prop_map(|index| Op::Remove { index }),
        (0usize..64, 0.0f64..900.0).prop_map(|(index, disk)| Op::Report { index, disk }),
        Just(Op::FixViolations),
    ]
}

fn build_cluster() -> (Cluster, MetricId, MetricId) {
    let mut metrics = MetricRegistry::new();
    let cpu = metrics.register(MetricDef {
        name: "Cpu".into(),
        node_capacity: 96.0,
        balancing_weight: 1.0,
    });
    let disk = metrics.register(MetricDef {
        name: "Disk".into(),
        node_capacity: 2_000.0,
        balancing_weight: 1.0,
    });
    (
        Cluster::new(ClusterConfig {
            node_count: 8,
            metrics,
            fault_domains: 1,
        }),
        cpu,
        disk,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_op_sequences_preserve_invariants(ops in prop::collection::vec(op_strategy(), 1..60), seed: u64) {
        let (mut cluster, cpu, disk) = build_cluster();
        let mut plb = Plb::new(PlbConfig::default(), seed);
        let mut services: Vec<ServiceId> = Vec::new();
        for op in ops {
            match op {
                Op::Create { cpu: c, disk: d, replicas } => {
                    let mut load = cluster.metrics().zero_load();
                    load[cpu] = c;
                    load[disk] = d;
                    let spec = ServiceSpec {
                        name: "db".into(),
                        tag: 0,
                        replica_count: replicas,
                        default_load: load,
                    };
                    if let Ok(id) = plb.create_service(&mut cluster, &spec, SimTime::ZERO) {
                        services.push(id);
                    }
                }
                Op::Remove { index } => {
                    if !services.is_empty() {
                        let id = services.remove(index % services.len());
                        prop_assert!(cluster.remove_service(id).is_some());
                    }
                }
                Op::Report { index, disk: d } => {
                    if !services.is_empty() {
                        let id = services[index % services.len()];
                        let rid = cluster.service(id).unwrap().replicas[0];
                        cluster.report_load(rid, disk, d);
                    }
                }
                Op::FixViolations => {
                    let events = plb.fix_violations(&mut cluster, SimTime::ZERO);
                    // Every reported move must reference live entities.
                    for e in &events {
                        prop_assert!(cluster.service(e.service).is_some());
                        prop_assert!(cluster.replica(e.replica).is_some());
                        prop_assert_eq!(cluster.replica(e.replica).unwrap().node, e.to);
                    }
                }
            }
            cluster.check_invariants();
        }
        // Total load equals the sum over replicas at all times (checked by
        // check_invariants); finally, removing everything zeroes the loads.
        for id in services {
            cluster.remove_service(id);
        }
        prop_assert!(cluster.total_load(cpu).abs() < 1e-6);
        prop_assert!(cluster.total_load(disk).abs() < 1e-6);
    }

    #[test]
    fn node_cost_cache_matches_recompute_after_random_ops(
        ops in prop::collection::vec(cache_op_strategy(), 1..80),
        seed: u64,
    ) {
        // The incremental per-node cost cache must stay *bitwise* equal
        // to a from-scratch recompute after any seeded sequence of
        // add / move / report / drop mutations.
        let (mut cluster, cpu, disk) = build_cluster();
        let mut plb = Plb::new(PlbConfig::default(), seed);
        let mut services: Vec<ServiceId> = Vec::new();
        for op in ops {
            match op {
                CacheOp::Add { cpu: c, disk: d, replicas } => {
                    let mut load = cluster.metrics().zero_load();
                    load[cpu] = c;
                    load[disk] = d;
                    let spec = ServiceSpec {
                        name: "db".into(),
                        tag: 0,
                        replica_count: replicas,
                        default_load: load,
                    };
                    if let Ok(id) = plb.create_service(&mut cluster, &spec, SimTime::ZERO) {
                        services.push(id);
                    }
                }
                CacheOp::Move { replica, node } => {
                    let live: Vec<_> = cluster.replicas().map(|r| (r.id, r.service, r.node)).collect();
                    if !live.is_empty() {
                        let (rid, service, from) = live[replica % live.len()];
                        let to = toto_fabric::ids::NodeId(node % 8);
                        if to != from && !cluster.node(to).hosts_service(service) {
                            cluster.move_replica(rid, to);
                        }
                    }
                }
                CacheOp::Report { replica, disk: d } => {
                    let live: Vec<_> = cluster.replicas().map(|r| r.id).collect();
                    if !live.is_empty() {
                        cluster.report_load(live[replica % live.len()], disk, d);
                    }
                }
                CacheOp::Drop { index } => {
                    if !services.is_empty() {
                        let id = services.remove(index % services.len());
                        prop_assert!(cluster.remove_service(id).is_some());
                    }
                }
            }
            for n in cluster.nodes() {
                let recomputed = cluster.metrics().cost_of(&n.load);
                prop_assert_eq!(
                    cluster.node_cost(n.id).to_bits(),
                    recomputed.to_bits(),
                    "cached cost diverged on {} ({} vs {})",
                    n.id,
                    cluster.node_cost(n.id),
                    recomputed
                );
            }
        }
    }

    #[test]
    fn placement_never_colocates_replicas(seed: u64, cpu_load in 1.0f64..24.0, replicas in 2u32..=4) {
        let (mut cluster, cpu, disk) = build_cluster();
        let mut plb = Plb::new(PlbConfig::default(), seed);
        let mut load = cluster.metrics().zero_load();
        load[cpu] = cpu_load;
        load[disk] = 10.0;
        let spec = ServiceSpec {
            name: "db".into(),
            tag: 0,
            replica_count: replicas,
            default_load: load,
        };
        let placement = plb.place_new_service(&cluster, &spec).unwrap();
        let mut nodes = placement.clone();
        nodes.sort_unstable();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), placement.len());
        let id = cluster.add_service(&spec, &placement, SimTime::ZERO);
        cluster.check_invariants();
        prop_assert_eq!(cluster.service(id).unwrap().replicas.len(), replicas as usize);
    }
}
