//! Fleet executor scaling: the same 4-job density fleet on 1 worker vs
//! all available workers. The jobs are deliberately small (short
//! duration, reduced population) so criterion can take several samples;
//! the wall-clock ratio between the two benches is the speedup headline
//! recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use toto::experiment::ExperimentOverrides;
use toto_fleet::{FleetExecutor, FleetPlan, NullObserver};
use toto_spec::ScenarioSpec;

/// A small-but-real fleet: 4 density jobs, 2 simulated hours, reduced
/// bootstrap population.
fn small_fleet() -> FleetPlan {
    let mut plan = FleetPlan::new(42);
    for density in [100, 110, 120, 140] {
        let mut scenario = ScenarioSpec::gen5_stage_cluster(density);
        scenario.duration_hours = 2;
        scenario.bootstrap_standard_gp = 40;
        scenario.bootstrap_premium_bc = 8;
        plan.add(
            format!("bench-density-{density}"),
            scenario,
            ExperimentOverrides::default(),
        );
    }
    plan
}

fn bench_fleet(c: &mut Criterion) {
    let plan = small_fleet();
    // At least 4 workers so the parallel bench is distinct even on
    // small machines; more if the host has more cores.
    let threads = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .max(4);

    c.bench_function("fleet/4jobs/1thread", |b| {
        b.iter(|| {
            let report = FleetExecutor::new(1).run(plan.jobs(), &NullObserver);
            assert!(report.all_completed());
            report.jobs.len()
        })
    });
    c.bench_function(&format!("fleet/4jobs/{threads}threads"), |b| {
        b.iter(|| {
            let report = FleetExecutor::new(threads).run(plan.jobs(), &NullObserver);
            assert!(report.all_completed());
            report.jobs.len()
        })
    });
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
