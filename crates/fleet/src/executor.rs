//! The channel-fed parallel fleet executor.
//!
//! Job indices flow through an MPMC channel to a fixed pool of scoped
//! worker threads; completed reports land in a shared, lock-guarded
//! registry slot keyed by job index, so the final report order is the
//! submission order regardless of which worker finished when. Each job
//! runs under `catch_unwind`: a panicking job becomes a
//! [`JobOutcome::Failed`] entry — the fleet never aborts. A shared
//! [`CancelToken`] lets callers stop scheduling new jobs; already-running
//! jobs finish, unstarted ones are recorded [`JobOutcome::Cancelled`].

use crate::job::FleetTask;
use crossbeam::channel;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Cooperative cancellation flag shared between the caller and the pool.
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: AtomicBool,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation: jobs not yet started will not start.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// How one job ended.
#[derive(Debug)]
pub enum JobOutcome<O> {
    /// Ran to completion.
    Completed(O),
    /// Panicked; the payload is the panic message.
    Failed(String),
    /// Never started because the fleet was cancelled first.
    Cancelled,
}

impl<O> JobOutcome<O> {
    /// The output, if the job completed.
    pub fn output(&self) -> Option<&O> {
        match self {
            JobOutcome::Completed(o) => Some(o),
            _ => None,
        }
    }

    /// Short status word for manifests: `completed` / `failed` /
    /// `cancelled`.
    pub fn status(&self) -> &'static str {
        match self {
            JobOutcome::Completed(_) => "completed",
            JobOutcome::Failed(_) => "failed",
            JobOutcome::Cancelled => "cancelled",
        }
    }
}

/// One job's report.
#[derive(Debug)]
pub struct JobReport<O> {
    /// Submission index within the fleet.
    pub index: usize,
    /// The task's label.
    pub label: String,
    /// The task's seed.
    pub seed: u64,
    /// How it ended.
    pub outcome: JobOutcome<O>,
    /// Wall-clock the job took, seconds (0 for cancelled jobs). Timing
    /// lives here — in the report/manifest layer — and never in run
    /// records, which must be byte-identical across thread counts.
    pub wall_secs: f64,
}

/// Everything the executor observed about one fleet run.
#[derive(Debug)]
pub struct FleetReport<O> {
    /// Per-job reports, in submission order.
    pub jobs: Vec<JobReport<O>>,
    /// Worker threads used.
    pub threads: usize,
    /// Total wall-clock, seconds.
    pub wall_secs: f64,
}

impl<O> FleetReport<O> {
    /// Iterate `(label, output)` over completed jobs, submission order.
    pub fn completed(&self) -> impl Iterator<Item = (&JobReport<O>, &O)> {
        self.jobs
            .iter()
            .filter_map(|j| j.outcome.output().map(|o| (j, o)))
    }

    /// Number of failed jobs.
    pub fn failed_count(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.outcome, JobOutcome::Failed(_)))
            .count()
    }

    /// True iff every job completed.
    pub fn all_completed(&self) -> bool {
        self.jobs
            .iter()
            .all(|j| matches!(j.outcome, JobOutcome::Completed(_)))
    }

    /// Completed jobs per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.jobs.len() as f64 / self.wall_secs
    }
}

/// A completed job's progress snapshot, handed to
/// [`FleetObserver::job_finished`].
#[derive(Debug)]
pub struct JobProgress<'a> {
    /// Submission index of the job that just finished.
    pub index: usize,
    /// Its label.
    pub label: &'a str,
    /// Wall-clock the job took, seconds.
    pub wall_secs: f64,
    /// Jobs finished or failed so far.
    pub done: usize,
    /// Total jobs in the fleet.
    pub total: usize,
    /// Fleet-level throughput estimate.
    pub jobs_per_sec: f64,
    /// Estimated seconds until the fleet drains at the current rate.
    pub eta_secs: f64,
}

/// Progress hook. All methods have no-op defaults; implementations must
/// be `Sync` — they are called concurrently from worker threads.
pub trait FleetObserver: Sync {
    /// A job was picked up by a worker.
    fn job_started(&self, _index: usize, _label: &str) {}

    /// A job completed.
    fn job_finished(&self, _progress: &JobProgress) {}

    /// A job panicked.
    fn job_failed(&self, _index: usize, _label: &str, _message: &str) {}
}

/// The do-nothing observer.
pub struct NullObserver;

impl FleetObserver for NullObserver {}

/// Default observer: one `eprintln!` line per finished job with
/// throughput and ETA, plus a line per failure.
pub struct StderrProgress;

impl FleetObserver for StderrProgress {
    fn job_finished(&self, p: &JobProgress) {
        eprintln!(
            "[fleet] {}/{} {} in {:.2}s ({:.2} jobs/s, eta {:.0}s)",
            p.done, p.total, p.label, p.wall_secs, p.jobs_per_sec, p.eta_secs
        );
    }

    fn job_failed(&self, index: usize, label: &str, message: &str) {
        eprintln!("[fleet] job #{index} {label} FAILED: {message}");
    }
}

/// The worker pool.
#[derive(Clone, Copy, Debug)]
pub struct FleetExecutor {
    threads: usize,
}

impl FleetExecutor {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        FleetExecutor {
            threads: threads.max(1),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every task to completion (or cancellation) and report.
    pub fn run<T: FleetTask>(
        &self,
        tasks: &[T],
        observer: &dyn FleetObserver,
    ) -> FleetReport<T::Output> {
        self.run_cancellable(tasks, observer, &CancelToken::new())
    }

    /// Like [`run`](Self::run), with caller-controlled cancellation.
    pub fn run_cancellable<T: FleetTask>(
        &self,
        tasks: &[T],
        observer: &dyn FleetObserver,
        cancel: &CancelToken,
    ) -> FleetReport<T::Output> {
        let started = Instant::now();
        let total = tasks.len();
        let workers = self.threads.min(total.max(1));

        // One registry slot per job, filled by whichever worker ran it.
        let registry: Mutex<Vec<Option<JobReport<T::Output>>>> =
            Mutex::new((0..total).map(|_| None).collect());
        let done = AtomicUsize::new(0);

        let (tx, rx) = channel::unbounded::<usize>();
        for index in 0..total {
            tx.send(index)
                .expect("queue send cannot fail with receiver held");
        }
        drop(tx); // workers drain until disconnect

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = rx.clone();
                let registry = &registry;
                let done = &done;
                scope.spawn(move || {
                    while let Ok(index) = rx.recv() {
                        let task = &tasks[index];
                        let label = task.label();
                        let report = if cancel.is_cancelled() {
                            JobReport {
                                index,
                                label,
                                seed: task.seed(),
                                outcome: JobOutcome::Cancelled,
                                wall_secs: 0.0,
                            }
                        } else {
                            observer.job_started(index, &label);
                            let job_start = Instant::now();
                            let outcome = match catch_unwind(AssertUnwindSafe(|| task.run())) {
                                Ok(output) => JobOutcome::Completed(output),
                                Err(payload) => {
                                    let message = panic_message(payload.as_ref());
                                    observer.job_failed(index, &label, &message);
                                    JobOutcome::Failed(message)
                                }
                            };
                            let wall_secs = job_start.elapsed().as_secs_f64();
                            if matches!(outcome, JobOutcome::Completed(_)) {
                                let finished = done.fetch_add(1, Ordering::SeqCst) + 1;
                                let elapsed = started.elapsed().as_secs_f64().max(1e-9);
                                let rate = finished as f64 / elapsed;
                                let eta = (total - finished) as f64 / rate;
                                observer.job_finished(&JobProgress {
                                    index,
                                    label: &label,
                                    wall_secs,
                                    done: finished,
                                    total,
                                    jobs_per_sec: rate,
                                    eta_secs: eta,
                                });
                            } else {
                                done.fetch_add(1, Ordering::SeqCst);
                            }
                            JobReport {
                                index,
                                label,
                                seed: task.seed(),
                                outcome,
                                wall_secs,
                            }
                        };
                        registry.lock()[index] = Some(report);
                    }
                });
            }
        });

        let jobs: Vec<JobReport<T::Output>> = registry
            .into_inner()
            .into_iter()
            .map(|slot| slot.expect("every job index was dispatched exactly once"))
            .collect();
        FleetReport {
            jobs,
            threads: workers,
            wall_secs: started.elapsed().as_secs_f64(),
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of non-string type".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SquareTask(u64);

    impl FleetTask for SquareTask {
        type Output = u64;

        fn label(&self) -> String {
            format!("square-{}", self.0)
        }

        fn seed(&self) -> u64 {
            self.0
        }

        fn run(&self) -> u64 {
            self.0 * self.0
        }
    }

    struct PanickyTask {
        id: u64,
        panics: bool,
    }

    impl FleetTask for PanickyTask {
        type Output = u64;

        fn label(&self) -> String {
            format!("task-{}", self.id)
        }

        fn run(&self) -> u64 {
            if self.panics {
                panic!("job {} exploded on purpose", self.id);
            }
            self.id
        }
    }

    #[test]
    fn outputs_arrive_in_submission_order() {
        let tasks: Vec<SquareTask> = (0..32).map(SquareTask).collect();
        for threads in [1, 4, 8] {
            let report = FleetExecutor::new(threads).run(&tasks, &NullObserver);
            assert!(report.all_completed());
            let outputs: Vec<u64> = report
                .jobs
                .iter()
                .map(|j| *j.outcome.output().unwrap())
                .collect();
            assert_eq!(outputs, (0..32).map(|i| i * i).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn panicking_job_fails_without_sinking_the_fleet() {
        let tasks: Vec<PanickyTask> = (0..8)
            .map(|id| PanickyTask {
                id,
                panics: id == 3,
            })
            .collect();
        let report = FleetExecutor::new(4).run(&tasks, &NullObserver);
        assert_eq!(report.failed_count(), 1);
        match &report.jobs[3].outcome {
            JobOutcome::Failed(msg) => assert!(msg.contains("exploded on purpose")),
            other => panic!("expected Failed, got {}", other.status()),
        }
        // Every other job still completed.
        assert_eq!(report.completed().count(), 7);
    }

    #[test]
    fn cancel_stops_unstarted_jobs() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let tasks: Vec<SquareTask> = (0..6).map(SquareTask).collect();
        let report = FleetExecutor::new(2).run_cancellable(&tasks, &NullObserver, &cancel);
        assert!(report
            .jobs
            .iter()
            .all(|j| matches!(j.outcome, JobOutcome::Cancelled)));
    }

    #[test]
    fn observer_sees_every_terminal_event() {
        use std::sync::atomic::AtomicUsize;

        #[derive(Default)]
        struct Counting {
            started: AtomicUsize,
            finished: AtomicUsize,
            failed: AtomicUsize,
        }

        impl FleetObserver for Counting {
            fn job_started(&self, _: usize, _: &str) {
                self.started.fetch_add(1, Ordering::SeqCst);
            }
            fn job_finished(&self, _: &JobProgress) {
                self.finished.fetch_add(1, Ordering::SeqCst);
            }
            fn job_failed(&self, _: usize, _: &str, _: &str) {
                self.failed.fetch_add(1, Ordering::SeqCst);
            }
        }

        let observer = Counting::default();
        let tasks: Vec<PanickyTask> = (0..10)
            .map(|id| PanickyTask {
                id,
                panics: id % 5 == 0,
            })
            .collect();
        FleetExecutor::new(3).run(&tasks, &observer);
        assert_eq!(observer.started.load(Ordering::SeqCst), 10);
        assert_eq!(observer.finished.load(Ordering::SeqCst), 8);
        assert_eq!(observer.failed.load(Ordering::SeqCst), 2);
    }
}
