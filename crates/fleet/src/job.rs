//! The fleet job model.
//!
//! A [`FleetJob`] is a complete, self-contained description of one
//! density experiment: scenario, overrides, label, and the job's seed.
//! Jobs are **pure functions of their descriptor** — running a job
//! touches no shared mutable state — which is what lets the executor
//! schedule them on any number of threads and still produce bit-identical
//! results (the paper's fixed-seed discipline of §5.2, scaled out).
//!
//! Seeds are derived, not invented: a [`FleetPlan`] owns a root seed and
//! hands each job a child seed via the workspace-wide SplitMix64
//! [`SeedTree`] scheme, keyed by the job's label and position. Two plans
//! built from the same root seed in the same order are identical, no
//! matter who executes them or how.

use toto::experiment::{DensityExperiment, ExperimentOverrides, ExperimentResult};
use toto_simcore::rng::SeedTree;
use toto_spec::ScenarioSpec;

/// Anything the fleet executor can run: a label for progress reporting
/// and a side-effect-free unit of work.
///
/// Implementations must be deterministic given their own state — the
/// executor guarantees nothing about scheduling order.
pub trait FleetTask: Send + Sync {
    /// What the task produces.
    type Output: Send;

    /// Label shown by progress observers and recorded in manifests.
    fn label(&self) -> String;

    /// The seed this task runs under, for manifests (0 if unseeded).
    fn seed(&self) -> u64 {
        0
    }

    /// Do the work. May panic: the executor isolates panics and records
    /// the job as failed without aborting the fleet.
    fn run(&self) -> Self::Output;
}

/// One density experiment in a fleet.
#[derive(Clone, Debug)]
pub struct FleetJob {
    /// Unique-within-the-fleet name, e.g. `"density-120"`. Used as the
    /// run-record file stem.
    pub label: String,
    /// This job's seed (already folded into the scenario's three
    /// component seeds — recorded so artifacts are self-describing).
    pub seed: u64,
    /// The fully-seeded scenario to run.
    pub scenario: ScenarioSpec,
    /// Experiment knobs.
    pub overrides: ExperimentOverrides,
    /// Record a full structured trace of the run (opt-in: traces are
    /// orders of magnitude larger than run records). The encoded bytes
    /// come back in [`JobOutput::trace`] and are stored as a
    /// `<label>.trace` sidecar next to the run record.
    pub trace: bool,
}

/// What one fleet job produces: the experiment result plus, when the job
/// opted in via [`FleetJob::trace`], the encoded `toto-trace` stream.
pub struct JobOutput {
    /// The experiment's full result.
    pub result: ExperimentResult,
    /// Encoded trace bytes (the `trace_tool` file format), if requested.
    pub trace: Option<Vec<u8>>,
}

impl FleetJob {
    /// Run the experiment this job describes, without tracing.
    pub fn execute(&self) -> ExperimentResult {
        DensityExperiment::new(self.scenario.clone(), self.overrides.clone()).run()
    }
}

impl FleetTask for FleetJob {
    type Output = JobOutput;

    fn label(&self) -> String {
        self.label.clone()
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn run(&self) -> JobOutput {
        if !self.trace {
            return JobOutput {
                result: self.execute(),
                trace: None,
            };
        }
        // Each worker thread installs its own session, so per-job traces
        // stay isolated no matter how jobs are scheduled; the trace is a
        // pure function of (scenario, seeds), exactly like the record.
        let sink = toto_trace::Shared::new(toto_trace::BufferSink::new());
        let guard = toto_trace::SessionGuard::install(Box::new(sink.clone()));
        let result = self.execute();
        drop(guard);
        JobOutput {
            result,
            trace: Some(sink.with(|b| b.bytes().to_vec())),
        }
    }
}

/// Builds a fleet of jobs with deterministic per-job seeds.
#[derive(Clone, Debug)]
pub struct FleetPlan {
    root_seed: u64,
    jobs: Vec<FleetJob>,
}

impl FleetPlan {
    /// Start a plan rooted at `root_seed`.
    pub fn new(root_seed: u64) -> Self {
        FleetPlan {
            root_seed,
            jobs: Vec::new(),
        }
    }

    /// The root seed every job seed is derived from.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// Add a job. The job's seed is derived from the plan's root seed,
    /// the label, and the job's position, then folded into the
    /// scenario's population / model / PLB seeds — so the caller's
    /// scenario seeds are *replaced*, and the whole fleet is a pure
    /// function of `(root_seed, labels, order)`.
    pub fn add(
        &mut self,
        label: impl Into<String>,
        mut scenario: ScenarioSpec,
        overrides: ExperimentOverrides,
    ) -> &mut Self {
        let label = label.into();
        let index = self.jobs.len() as u64;
        let seed = SeedTree::new(self.root_seed).child(&label, index).seed();
        scenario.population_seed = SeedTree::new(seed).child("population", 0).seed();
        scenario.model_seed = SeedTree::new(seed).child("model", 0).seed();
        scenario.plb_seed = SeedTree::new(seed).child("plb", 0).seed();
        self.jobs.push(FleetJob {
            label,
            seed,
            scenario,
            overrides,
            trace: false,
        });
        self
    }

    /// Add a job whose scenario seeds are already pinned by the caller
    /// (repeat studies that vary exactly one seed, like Figure 13's PLB
    /// repeats, need this). The recorded job seed is derived the same
    /// way so manifests stay self-describing.
    pub fn add_pinned(
        &mut self,
        label: impl Into<String>,
        scenario: ScenarioSpec,
        overrides: ExperimentOverrides,
    ) -> &mut Self {
        let label = label.into();
        let index = self.jobs.len() as u64;
        let seed = SeedTree::new(self.root_seed).child(&label, index).seed();
        self.jobs.push(FleetJob {
            label,
            seed,
            scenario,
            overrides,
            trace: false,
        });
        self
    }

    /// Enable trace recording on every job added so far.
    pub fn trace_all(&mut self) -> &mut Self {
        for job in &mut self.jobs {
            job.trace = true;
        }
        self
    }

    /// The planned jobs, in insertion order.
    pub fn jobs(&self) -> &[FleetJob] {
        &self.jobs
    }

    /// Consume the plan.
    pub fn into_jobs(self) -> Vec<FleetJob> {
        self.jobs
    }
}

/// The paper's §5.2 study as a fleet: one job per density level, each a
/// gen5 stage-ring experiment of `duration_hours`, seeds derived from
/// `root_seed`.
pub fn density_fleet(root_seed: u64, densities: &[u32], duration_hours: u64) -> FleetPlan {
    let mut plan = FleetPlan::new(root_seed);
    for &density in densities {
        let mut scenario = ScenarioSpec::gen5_stage_cluster(density);
        scenario.duration_hours = duration_hours;
        plan.add(
            format!("density-{density}"),
            scenario,
            ExperimentOverrides::default(),
        );
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_seeds_are_deterministic_and_distinct() {
        let a = density_fleet(42, &[100, 110, 120, 140], 6);
        let b = density_fleet(42, &[100, 110, 120, 140], 6);
        for (ja, jb) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(ja.seed, jb.seed);
            assert_eq!(ja.scenario.population_seed, jb.scenario.population_seed);
            assert_eq!(ja.scenario.plb_seed, jb.scenario.plb_seed);
        }
        let seeds: std::collections::BTreeSet<u64> = a.jobs().iter().map(|j| j.seed).collect();
        assert_eq!(seeds.len(), 4, "per-job seeds must be distinct");
    }

    #[test]
    fn different_root_seed_changes_every_job() {
        let a = density_fleet(1, &[100, 110], 6);
        let b = density_fleet(2, &[100, 110], 6);
        for (ja, jb) in a.jobs().iter().zip(b.jobs()) {
            assert_ne!(ja.seed, jb.seed);
            assert_ne!(ja.scenario.population_seed, jb.scenario.population_seed);
        }
    }

    #[test]
    fn pinned_jobs_keep_scenario_seeds() {
        let mut scenario = ScenarioSpec::gen5_stage_cluster(110);
        scenario.plb_seed = 777;
        let mut plan = FleetPlan::new(9);
        plan.add_pinned("repeat-0", scenario.clone(), ExperimentOverrides::default());
        assert_eq!(plan.jobs()[0].scenario.plb_seed, 777);
        assert_ne!(plan.jobs()[0].seed, 0);
    }
}
