//! Minimal JSON document model with a deterministic writer and a
//! round-trip parser.
//!
//! The run-artifact store needs byte-stable serialization (records are
//! compared with `==` across thread counts and re-runs) and the build
//! environment has no `serde_json`, so this module hand-rolls the small
//! subset the store needs:
//!
//! * objects render with keys in **ascending sorted order**, whatever
//!   order they were inserted in, so artifacts are canonical: two
//!   logically equal values always serialize to identical bytes, and no
//!   map-iteration or construction order can leak into an artifact;
//! * [`Json::obj`] and [`Json::parse`] canonicalize (sort) object pairs
//!   on construction, so `parse(render(x)) == x` for values built through
//!   the public constructors;
//! * unsigned integers are kept exact via [`Json::Uint`] — seeds are
//!   full-width `u64` values that do not survive an `f64` round-trip;
//! * floats print via Rust's shortest-round-trip `{:?}` formatting, so
//!   `parse(render(x)) == x` for every finite `f64`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer that must stay exact (e.g. a 64-bit seed).
    Uint(u64),
    /// A finite float.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: key/value pairs, canonically in ascending key order.
    /// (`render` sorts defensively even if a value was hand-built with
    /// unsorted pairs.)
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from pairs; keys are sorted (stably) so the value
    /// is canonical regardless of the order the caller listed them in.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        let mut pairs: Vec<(String, Json)> =
            pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Obj(pairs)
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a u64, if it is an exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(u) => Some(*u),
            _ => None,
        }
    }

    /// This value as an f64 (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Uint(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// This value as a str.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render as pretty-printed JSON (2-space indent, `\n` line ends).
    /// The output is a pure function of the value — no timestamps, no
    /// map-iteration order — so equal values render to equal bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Uint(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(n) => {
                assert!(n.is_finite(), "cannot serialize non-finite float {n}");
                // {:?} gives the shortest representation that round-trips.
                let _ = write!(out, "{n:?}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                // Canonical order even for hand-built `Json::Obj` values:
                // sort an index so duplicate keys keep their relative order.
                let mut order: Vec<usize> = (0..pairs.len()).collect();
                order.sort_by(|&a, &b| pairs[a].0.cmp(&pairs[b].0).then(a.cmp(&b)));
                out.push('{');
                for (i, &p) in order.iter().enumerate() {
                    let (key, value) = &pairs[p];
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Numbers without `.`, `e`, or a minus sign
    /// parse as [`Json::Uint`]; everything else numeric parses as
    /// [`Json::Num`]. Object pairs are canonicalized (stably sorted by
    /// key), so parsing a legacy insertion-ordered document yields the
    /// same value as parsing its canonical re-render.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        pairs.sort_by(|a: &(String, Json), b| a.0.cmp(&b.0));
                        return Ok(Json::Obj(pairs));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (may be multi-byte).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected number at byte {start}"));
    }
    let is_integral = !text.contains(['.', 'e', 'E', '-']);
    if is_integral {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::Uint(u));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::obj(vec![
            ("schema_version", Json::Uint(1)),
            ("label", Json::Str("density-120".to_string())),
            ("seed", Json::Uint(u64::MAX - 12345)),
            ("revenue", Json::Num(1234.5678901234567)),
            ("negative", Json::Num(-7.25)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "series",
                Json::Arr(vec![
                    Json::Uint(1),
                    Json::Num(2.5),
                    Json::Str("x\"y\n".into()),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ])
    }

    #[test]
    fn round_trips_exactly() {
        let value = sample();
        let text = value.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, value);
        // And the re-render is byte-identical.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn u64_seeds_survive() {
        let v = Json::Uint(u64::MAX);
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn float_precision_survives() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0] {
            let back = Json::parse(&Json::Num(x).render()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn objects_render_in_sorted_key_order() {
        // Same logical object, three construction orders (including a
        // hand-built unsorted Json::Obj) — all render to identical bytes.
        let a = Json::obj(vec![("zulu", Json::Uint(1)), ("alpha", Json::Uint(2))]);
        let b = Json::obj(vec![("alpha", Json::Uint(2)), ("zulu", Json::Uint(1))]);
        let c = Json::Obj(vec![
            ("zulu".to_string(), Json::Uint(1)),
            ("alpha".to_string(), Json::Uint(2)),
        ]);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.render(), c.render());
        let text = a.render();
        let alpha = text.find("alpha").expect("alpha rendered");
        let zulu = text.find("zulu").expect("zulu rendered");
        assert!(alpha < zulu, "keys must render sorted:\n{text}");
    }

    #[test]
    fn insertion_ordered_documents_parse_to_canonical_values() {
        // A legacy (pre-canonicalization) artifact with unsorted keys
        // round-trips to the same value and canonical bytes as its
        // sorted twin.
        let legacy = "{\n  \"b\": 2,\n  \"a\": 1\n}\n";
        let sorted = "{\n  \"a\": 1,\n  \"b\": 2\n}\n";
        let from_legacy = Json::parse(legacy).unwrap();
        let from_sorted = Json::parse(sorted).unwrap();
        assert_eq!(from_legacy, from_sorted);
        assert_eq!(from_legacy.render(), sorted);
    }

    #[test]
    fn nested_round_trip_is_canonical() {
        let value = Json::obj(vec![
            (
                "outer",
                Json::obj(vec![("z", Json::Bool(true)), ("a", Json::Null)]),
            ),
            (
                "arr",
                Json::Arr(vec![Json::obj(vec![("k", Json::Uint(9))])]),
            ),
        ]);
        let text = value.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, value);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("[1, 2").is_err());
    }

    #[test]
    fn accessors() {
        let v = sample();
        assert_eq!(v.get("label").and_then(Json::as_str), Some("density-120"));
        assert_eq!(v.get("schema_version").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("series").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert!(v.get("missing").is_none());
    }
}
