//! `toto-fleet`: deterministic parallel experiment execution with a
//! persistent run-artifact store.
//!
//! The paper's evaluation is embarrassingly parallel — four independent
//! 6-day density experiments (§5.2), Figure 8's 100-run create/drop
//! simulation, Figure 13's repeat study with varied PLB seeds — yet the
//! seed drivers ran them as serial loops and printed throwaway text
//! tables. This crate is the subsystem that fixes both halves:
//!
//! * **Job model** ([`job`]): a [`FleetJob`] pairs a scenario with
//!   overrides, a label, and a per-job seed derived from the fleet's
//!   root seed via the SplitMix64 [`SeedTree`](toto_simcore::rng::SeedTree)
//!   scheme. Each job is a pure function of its descriptor, so a fleet
//!   of N jobs is **bit-identical whether run on 1 thread or 16** — the
//!   paper's fixed-seed discipline (§5.2), scaled out.
//! * **Executor** ([`executor`]): a channel-fed worker pool (vendored
//!   crossbeam MPMC channel, parking_lot-guarded registry) with per-job
//!   panic isolation — a panicking job is recorded as `Failed`, never a
//!   fleet abort — cancellation, and a [`FleetObserver`] progress hook
//!   with jobs-per-second and ETA reporting.
//! * **Run-artifact store** ([`store`]): schema-versioned JSON run
//!   records (fleet manifest, per-job KPI summaries, seeds, wall-clock
//!   timings) under `results/runs/`, plus an append-only
//!   `results/benchdata.json` series of commit-stamped benchmark
//!   records (whole-file rewrites through a temp file + atomic rename),
//!   so performance trajectories survive across PRs.
//!
//! [`FleetJob`]: job::FleetJob
//! [`FleetObserver`]: executor::FleetObserver

pub mod executor;
pub mod job;
pub mod json;
pub mod store;

pub use executor::{
    CancelToken, FleetExecutor, FleetObserver, FleetReport, JobOutcome, JobProgress, JobReport,
    NullObserver, StderrProgress,
};
pub use job::{density_fleet, FleetJob, FleetPlan, FleetTask, JobOutput};
pub use json::Json;
pub use store::{
    current_commit, kpis_from_json, kpis_to_json, revenue_from_json, revenue_to_json, BenchEntry,
    BenchRecord, FleetManifest, ManifestJob, RunRecord, RunStore, BENCH_SCHEMA_VERSION,
    RUN_SCHEMA_VERSION,
};
