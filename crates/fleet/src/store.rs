//! The persistent run-artifact store.
//!
//! Two kinds of artifact, with a deliberate split:
//!
//! * [`RunRecord`] — one per job, **deterministic**: label, seed, the
//!   scenario XML, KPI summary, revenue. No wall-clock, no hostnames, no
//!   thread counts. Records from a 1-thread run and a 16-thread run of
//!   the same plan are byte-identical, and that property is what the
//!   determinism integration test asserts.
//! * [`FleetManifest`] — one per fleet, **observational**: thread count,
//!   wall-clock per job and total, job statuses. This is where timing
//!   lives, so it never contaminates the records.
//!
//! Layout under the store root (conventionally `results/`):
//!
//! ```text
//! results/
//!   runs/<fleet>/manifest.json        (FleetManifest)
//!   runs/<fleet>/<job-label>.json     (RunRecord, one per job)
//!   benchdata.json                    (append-only BenchRecord array:
//!                                      commit-stamped benchmark samples)
//! ```
//!
//! Every record and manifest carries [`RUN_SCHEMA_VERSION`]; loading a
//! record with a different version is an error, not a silent reinterpretation.

use crate::json::Json;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use toto::experiment::ExperimentResult;
use toto_telemetry::kpi::KpiSummary;
use toto_telemetry::revenue::RevenueBreakdown;

/// Current artifact schema version. Bump on any field change (version 2:
/// objects serialize with canonically sorted keys; version 3: kpis gained
/// `bootstrap_placement_failures`, and jobs may carry a `<label>.trace`
/// flight-recorder sidecar).
pub const RUN_SCHEMA_VERSION: u64 = 3;

/// The deterministic per-job artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Schema version this record was written with.
    pub schema_version: u64,
    /// Job label (also the file stem).
    pub label: String,
    /// The job's derived seed.
    pub seed: u64,
    /// Full scenario, as the canonical XML the spec crate round-trips.
    pub scenario_xml: String,
    /// Flat telemetry digest.
    pub kpis: KpiSummary,
    /// Modeled revenue split (§5.1).
    pub revenue: RevenueBreakdown,
    /// Creation redirects during the run.
    pub redirect_count: u64,
    /// Databases the Population Manager created during the run.
    pub created_during_run: u64,
}

impl RunRecord {
    /// Digest one experiment result into a record.
    pub fn from_result(label: &str, seed: u64, result: &ExperimentResult) -> Self {
        RunRecord {
            schema_version: RUN_SCHEMA_VERSION,
            label: label.to_string(),
            seed,
            scenario_xml: result.scenario.to_xml_string(),
            kpis: result.telemetry.summarize(),
            revenue: result.revenue,
            redirect_count: result.redirect_count as u64,
            created_during_run: result.created_during_run,
        }
    }

    /// Serialize. Field order is fixed, so equal records render to equal
    /// bytes.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Uint(self.schema_version)),
            ("label", Json::Str(self.label.clone())),
            ("seed", Json::Uint(self.seed)),
            ("scenario_xml", Json::Str(self.scenario_xml.clone())),
            ("kpis", kpis_to_json(&self.kpis)),
            ("revenue", revenue_to_json(&self.revenue)),
            ("redirect_count", Json::Uint(self.redirect_count)),
            ("created_during_run", Json::Uint(self.created_during_run)),
        ])
    }

    /// Deserialize, rejecting unknown schema versions.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let version = json
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if version != RUN_SCHEMA_VERSION {
            return Err(format!(
                "run record schema {version} != supported {RUN_SCHEMA_VERSION}"
            ));
        }
        let str_field = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key}"))
        };
        let uint_field = |obj: &Json, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing uint field {key}"))
        };
        let kpis_json = json.get("kpis").ok_or("missing kpis")?;
        let revenue_json = json.get("revenue").ok_or("missing revenue")?;
        Ok(RunRecord {
            schema_version: version,
            label: str_field("label")?,
            seed: uint_field(json, "seed")?,
            scenario_xml: str_field("scenario_xml")?,
            kpis: kpis_from_json(kpis_json)?,
            revenue: revenue_from_json(revenue_json)?,
            redirect_count: uint_field(json, "redirect_count")?,
            created_during_run: uint_field(json, "created_during_run")?,
        })
    }
}

/// Render a KPI summary as the fixed-order JSON object every run-record
/// artifact embeds (region records reuse this shape for per-ring and
/// aggregated summaries).
pub fn kpis_to_json(k: &KpiSummary) -> Json {
    Json::obj(vec![
        ("failover_count", Json::Uint(k.failover_count)),
        ("failed_over_cores", Json::Num(k.failed_over_cores)),
        ("gp_failover_count", Json::Uint(k.gp_failover_count)),
        ("bc_failover_count", Json::Uint(k.bc_failover_count)),
        ("total_downtime_secs", Json::Num(k.total_downtime_secs)),
        ("final_reserved_cores", Json::Num(k.final_reserved_cores)),
        ("final_disk_gb", Json::Num(k.final_disk_gb)),
        ("creation_redirects", Json::Uint(k.creation_redirects)),
        (
            "throttled_core_intervals",
            Json::Num(k.throttled_core_intervals),
        ),
        (
            "contended_governance_passes",
            Json::Uint(k.contended_governance_passes),
        ),
        ("kpi_samples", Json::Uint(k.kpi_samples)),
        ("node_snapshot_count", Json::Uint(k.node_snapshot_count)),
        (
            "bootstrap_placement_failures",
            Json::Uint(k.bootstrap_placement_failures),
        ),
    ])
}

/// Parse a KPI summary from the object [`kpis_to_json`] renders.
pub fn kpis_from_json(json: &Json) -> Result<KpiSummary, String> {
    let uint = |key: &str| -> Result<u64, String> {
        json.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing uint field {key}"))
    };
    let num = |key: &str| -> Result<f64, String> {
        json.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing number field {key}"))
    };
    Ok(KpiSummary {
        failover_count: uint("failover_count")?,
        failed_over_cores: num("failed_over_cores")?,
        gp_failover_count: uint("gp_failover_count")?,
        bc_failover_count: uint("bc_failover_count")?,
        total_downtime_secs: num("total_downtime_secs")?,
        final_reserved_cores: num("final_reserved_cores")?,
        final_disk_gb: num("final_disk_gb")?,
        creation_redirects: uint("creation_redirects")?,
        throttled_core_intervals: num("throttled_core_intervals")?,
        contended_governance_passes: uint("contended_governance_passes")?,
        kpi_samples: uint("kpi_samples")?,
        node_snapshot_count: uint("node_snapshot_count")?,
        bootstrap_placement_failures: uint("bootstrap_placement_failures")?,
    })
}

/// Render a revenue breakdown (with its derived `adjusted` total) as the
/// fixed-order JSON object run records embed.
pub fn revenue_to_json(r: &RevenueBreakdown) -> Json {
    Json::obj(vec![
        ("compute", Json::Num(r.compute)),
        ("storage", Json::Num(r.storage)),
        ("penalty", Json::Num(r.penalty)),
        ("adjusted", Json::Num(r.adjusted())),
    ])
}

/// Parse a revenue breakdown from the object [`revenue_to_json`]
/// renders (the derived `adjusted` field is ignored).
pub fn revenue_from_json(json: &Json) -> Result<RevenueBreakdown, String> {
    let num = |key: &str| -> Result<f64, String> {
        json.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing number field {key}"))
    };
    Ok(RevenueBreakdown {
        compute: num("compute")?,
        storage: num("storage")?,
        penalty: num("penalty")?,
    })
}

/// One job's entry in a fleet manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct ManifestJob {
    /// Job label.
    pub label: String,
    /// Job seed.
    pub seed: u64,
    /// `completed` / `failed` / `cancelled`.
    pub status: String,
    /// Wall-clock the job took, seconds.
    pub wall_secs: f64,
}

/// The observational per-fleet artifact: where timing and topology live.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetManifest {
    /// Schema version.
    pub schema_version: u64,
    /// Fleet name (the directory under `runs/`).
    pub fleet: String,
    /// Root seed the plan derived all job seeds from.
    pub root_seed: u64,
    /// Worker threads used.
    pub threads: u64,
    /// Total fleet wall-clock, seconds.
    pub wall_secs: f64,
    /// Per-job status and timing, submission order.
    pub jobs: Vec<ManifestJob>,
}

impl FleetManifest {
    /// Serialize.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Uint(self.schema_version)),
            ("fleet", Json::Str(self.fleet.clone())),
            ("root_seed", Json::Uint(self.root_seed)),
            ("threads", Json::Uint(self.threads)),
            ("wall_secs", Json::Num(self.wall_secs)),
            (
                "jobs",
                Json::Arr(
                    self.jobs
                        .iter()
                        .map(|j| {
                            Json::obj(vec![
                                ("label", Json::Str(j.label.clone())),
                                ("seed", Json::Uint(j.seed)),
                                ("status", Json::Str(j.status.clone())),
                                ("wall_secs", Json::Num(j.wall_secs)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserialize, rejecting unknown schema versions.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let version = json
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if version != RUN_SCHEMA_VERSION {
            return Err(format!(
                "manifest schema {version} != supported {RUN_SCHEMA_VERSION}"
            ));
        }
        let jobs = json
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or("missing jobs")?
            .iter()
            .map(|j| {
                Ok(ManifestJob {
                    label: j
                        .get("label")
                        .and_then(Json::as_str)
                        .ok_or("missing job label")?
                        .to_string(),
                    seed: j
                        .get("seed")
                        .and_then(Json::as_u64)
                        .ok_or("missing job seed")?,
                    status: j
                        .get("status")
                        .and_then(Json::as_str)
                        .ok_or("missing job status")?
                        .to_string(),
                    wall_secs: j
                        .get("wall_secs")
                        .and_then(Json::as_f64)
                        .ok_or("missing job wall_secs")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(FleetManifest {
            schema_version: version,
            fleet: json
                .get("fleet")
                .and_then(Json::as_str)
                .ok_or("missing fleet")?
                .to_string(),
            root_seed: json
                .get("root_seed")
                .and_then(Json::as_u64)
                .ok_or("missing root_seed")?,
            threads: json
                .get("threads")
                .and_then(Json::as_u64)
                .ok_or("missing threads")?,
            wall_secs: json
                .get("wall_secs")
                .and_then(Json::as_f64)
                .ok_or("missing wall_secs")?,
            jobs,
        })
    }
}

/// Schema version of the `benchdata.json` series. Version 1: the file
/// is an array of commit-stamped [`BenchRecord`] objects (older seeds
/// stored a flat entry array with no provenance; that shape is no
/// longer readable and was migrated when this version landed).
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// One point in the benchmark time series
/// (github-action-benchmark's `customSmallerIsBetter`/`customBiggerIsBetter`
/// entry shape: name, unit, value).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Metric name, e.g. `"density-120/adjusted_revenue"`.
    pub name: String,
    /// Unit label, e.g. `"$"` or `"jobs/s"`.
    pub unit: String,
    /// The measured value.
    pub value: f64,
}

impl BenchEntry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("unit", Json::Str(self.unit.clone())),
            ("value", Json::Num(self.value)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        Ok(BenchEntry {
            name: json
                .get("name")
                .and_then(Json::as_str)
                .ok_or("missing bench name")?
                .to_string(),
            unit: json
                .get("unit")
                .and_then(Json::as_str)
                .ok_or("missing bench unit")?
                .to_string(),
            value: json
                .get("value")
                .and_then(Json::as_f64)
                .ok_or("missing bench value")?,
        })
    }
}

/// One commit's worth of benchmark samples: the unit of append in
/// `benchdata.json`. Every writer — `bench_track`, `fleet_runner`, the
/// scenario runner — appends whole records through the same
/// temp-file-and-rename path, so concurrent-looking writers can never
/// interleave partial JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Schema version this record was written with.
    pub schema_version: u64,
    /// The commit the samples were measured at (short hash, or
    /// `"unknown"` outside a git checkout).
    pub commit: String,
    /// The samples, in suite order.
    pub entries: Vec<BenchEntry>,
}

impl BenchRecord {
    /// A record stamped with the current schema version.
    pub fn new(commit: impl Into<String>, entries: Vec<BenchEntry>) -> Self {
        BenchRecord {
            schema_version: BENCH_SCHEMA_VERSION,
            commit: commit.into(),
            entries,
        }
    }

    /// The value of the entry named `name`, if present.
    pub fn value_of(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.value)
    }

    /// Serialize (canonically sorted keys, like every store artifact).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Uint(self.schema_version)),
            ("commit", Json::Str(self.commit.clone())),
            (
                "entries",
                Json::Arr(self.entries.iter().map(BenchEntry::to_json).collect()),
            ),
        ])
    }

    /// Deserialize, rejecting unknown schema versions.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let version = json
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("bench record missing schema_version")?;
        if version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "bench record schema {version} != supported {BENCH_SCHEMA_VERSION}"
            ));
        }
        Ok(BenchRecord {
            schema_version: version,
            commit: json
                .get("commit")
                .and_then(Json::as_str)
                .ok_or("bench record missing commit")?
                .to_string(),
            entries: json
                .get("entries")
                .and_then(Json::as_arr)
                .ok_or("bench record missing entries")?
                .iter()
                .map(BenchEntry::from_json)
                .collect::<Result<Vec<_>, String>>()?,
        })
    }
}

/// Best-effort commit stamp for bench records: the short hash of the
/// checked-out HEAD, or `"unknown"` when git (or a repository) is not
/// available. Purely observational — commit stamps live in the bench
/// series, never in deterministic run records.
pub fn current_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Filesystem-backed artifact store rooted at a results directory.
#[derive(Clone, Debug)]
pub struct RunStore {
    root: PathBuf,
}

impl RunStore {
    /// A store rooted at `root` (conventionally `results/`). Nothing is
    /// created until the first save.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        RunStore { root: root.into() }
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn fleet_dir(&self, fleet: &str) -> PathBuf {
        self.root.join("runs").join(fleet)
    }

    /// Persist a fleet: its manifest plus one record file per record.
    /// Returns the fleet directory.
    pub fn save_fleet(
        &self,
        manifest: &FleetManifest,
        records: &[RunRecord],
    ) -> io::Result<PathBuf> {
        let dir = self.fleet_dir(&manifest.fleet);
        fs::create_dir_all(&dir)?;
        fs::write(dir.join("manifest.json"), manifest.to_json().render())?;
        for record in records {
            fs::write(
                dir.join(format!("{}.json", record.label)),
                record.to_json().render(),
            )?;
        }
        Ok(dir)
    }

    /// Write one job's encoded trace stream as a `<label>.trace` sidecar
    /// next to its run record. Traces are opt-in (see `FleetJob::trace`)
    /// and, like records, are pure functions of the job descriptor — two
    /// runs of the same job write byte-identical sidecars.
    pub fn save_trace(&self, fleet: &str, label: &str, bytes: &[u8]) -> io::Result<PathBuf> {
        let dir = self.fleet_dir(fleet);
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{label}.trace"));
        fs::write(&path, bytes)?;
        Ok(path)
    }

    /// Load one job's trace sidecar bytes (decode with `toto-trace`).
    pub fn trace_bytes(&self, fleet: &str, label: &str) -> io::Result<Vec<u8>> {
        fs::read(self.fleet_dir(fleet).join(format!("{label}.trace")))
    }

    /// Write one job's chaos report as a `<label>.chaos.json` sidecar.
    /// Like the record, the report is a pure function of (spec, seed);
    /// chaos fleets use their own fleet name so pinned plain-run
    /// artifacts are never touched.
    pub fn save_chaos(&self, fleet: &str, label: &str, json: &str) -> io::Result<PathBuf> {
        let dir = self.fleet_dir(fleet);
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{label}.chaos.json"));
        fs::write(&path, json)?;
        Ok(path)
    }

    /// Load one job's chaos-report sidecar bytes.
    pub fn chaos_bytes(&self, fleet: &str, label: &str) -> io::Result<Vec<u8>> {
        fs::read(self.fleet_dir(fleet).join(format!("{label}.chaos.json")))
    }

    /// Write an arbitrary named artifact into a fleet directory (region
    /// run records and the region control-plane trace use this). The
    /// file name is used verbatim; callers own the naming convention.
    pub fn save_artifact(&self, fleet: &str, file_name: &str, bytes: &[u8]) -> io::Result<PathBuf> {
        let dir = self.fleet_dir(fleet);
        fs::create_dir_all(&dir)?;
        let path = dir.join(file_name);
        fs::write(&path, bytes)?;
        Ok(path)
    }

    /// Load a named artifact's bytes from a fleet directory.
    pub fn artifact_bytes(&self, fleet: &str, file_name: &str) -> io::Result<Vec<u8>> {
        fs::read(self.fleet_dir(fleet).join(file_name))
    }

    /// Load one job's record from a saved fleet.
    pub fn load_record(&self, fleet: &str, label: &str) -> io::Result<RunRecord> {
        let path = self.fleet_dir(fleet).join(format!("{label}.json"));
        let text = fs::read_to_string(&path)?;
        let json = Json::parse(&text).map_err(invalid)?;
        RunRecord::from_json(&json).map_err(invalid)
    }

    /// Load a saved fleet's manifest.
    pub fn load_manifest(&self, fleet: &str) -> io::Result<FleetManifest> {
        let text = fs::read_to_string(self.fleet_dir(fleet).join("manifest.json"))?;
        let json = Json::parse(&text).map_err(invalid)?;
        FleetManifest::from_json(&json).map_err(invalid)
    }

    /// Raw bytes of one job's record (for byte-identity comparisons).
    pub fn record_bytes(&self, fleet: &str, label: &str) -> io::Result<Vec<u8>> {
        fs::read(self.fleet_dir(fleet).join(format!("{label}.json")))
    }

    /// The benchmark series file this store appends to.
    pub fn bench_path(&self) -> PathBuf {
        self.root.join("benchdata.json")
    }

    /// Append one commit-stamped record to `benchdata.json`, creating
    /// the series if absent. This is the **single** append path for
    /// every writer: the whole series is re-rendered and written to a
    /// temp file in the same directory, then atomically renamed over
    /// the series, so a reader (or a second writer landing just after)
    /// always sees a complete, parseable array — never a torn write.
    /// Returns the file path.
    pub fn append_bench_record(&self, record: &BenchRecord) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.root)?;
        let path = self.bench_path();
        let mut all = self.load_bench_records()?;
        all.push(record.clone());
        let json = Json::Arr(all.iter().map(BenchRecord::to_json).collect());
        let tmp = self
            .root
            .join(format!("benchdata.json.tmp.{}", std::process::id()));
        fs::write(&tmp, json.render())?;
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Read back the whole benchmark series, oldest record first
    /// (empty if never written).
    pub fn load_bench_records(&self) -> io::Result<Vec<BenchRecord>> {
        let path = self.bench_path();
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        Json::parse(&text)
            .map_err(invalid)?
            .as_arr()
            .ok_or_else(|| invalid("benchdata.json is not an array"))?
            .iter()
            .map(BenchRecord::from_json)
            .collect::<Result<Vec<_>, String>>()
            .map_err(invalid)
    }

    /// The per-metric history across the series, oldest first: every
    /// value recorded under `name`, in append order. Feed this to
    /// `toto_stats::regression::gate_metric` as the trailing history.
    pub fn bench_history(&self, name: &str) -> io::Result<Vec<f64>> {
        Ok(self
            .load_bench_records()?
            .iter()
            .filter_map(|r| r.value_of(name))
            .collect())
    }
}

fn invalid(message: impl ToString) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(label: &str) -> RunRecord {
        RunRecord {
            schema_version: RUN_SCHEMA_VERSION,
            label: label.to_string(),
            seed: 0xDEAD_BEEF_CAFE_F00D,
            scenario_xml: "<Scenario name=\"t\"/>".to_string(),
            kpis: KpiSummary {
                failover_count: 7,
                failed_over_cores: 28.5,
                gp_failover_count: 5,
                bc_failover_count: 2,
                total_downtime_secs: 310.25,
                final_reserved_cores: 812.0,
                final_disk_gb: 55_000.125,
                creation_redirects: 3,
                throttled_core_intervals: 19.75,
                contended_governance_passes: 11,
                kpi_samples: 144,
                node_snapshot_count: 2016,
                bootstrap_placement_failures: 0,
            },
            revenue: RevenueBreakdown {
                compute: 100.5,
                storage: 20.25,
                penalty: 1.125,
            },
            redirect_count: 3,
            created_during_run: 42,
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let record = sample_record("density-120");
        let back = RunRecord::from_json(&record.to_json()).unwrap();
        assert_eq!(back, record);
        // Byte-stable: render(parse(render(x))) == render(x).
        assert_eq!(back.to_json().render(), record.to_json().render());
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let mut record = sample_record("x");
        record.schema_version = RUN_SCHEMA_VERSION + 1;
        let err = RunRecord::from_json(&record.to_json()).unwrap_err();
        assert!(err.contains("schema"), "got: {err}");
    }

    #[test]
    fn store_saves_and_loads_fleets() {
        let dir =
            std::env::temp_dir().join(format!("toto-fleet-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = RunStore::new(&dir);
        let manifest = FleetManifest {
            schema_version: RUN_SCHEMA_VERSION,
            fleet: "density-study".to_string(),
            root_seed: 42,
            threads: 8,
            wall_secs: 12.5,
            jobs: vec![ManifestJob {
                label: "density-120".to_string(),
                seed: 0xDEAD_BEEF_CAFE_F00D,
                status: "completed".to_string(),
                wall_secs: 12.5,
            }],
        };
        let records = vec![sample_record("density-120")];
        store.save_fleet(&manifest, &records).unwrap();

        assert_eq!(store.load_manifest("density-study").unwrap(), manifest);
        assert_eq!(
            store.load_record("density-study", "density-120").unwrap(),
            records[0]
        );

        store
            .append_bench_record(&BenchRecord::new(
                "aaaa111",
                vec![BenchEntry {
                    name: "fleet/jobs_per_sec".to_string(),
                    unit: "jobs/s".to_string(),
                    value: 2.5,
                }],
            ))
            .unwrap();
        store
            .append_bench_record(&BenchRecord::new(
                "bbbb222",
                vec![BenchEntry {
                    name: "fleet/jobs_per_sec".to_string(),
                    unit: "jobs/s".to_string(),
                    value: 3.0,
                }],
            ))
            .unwrap();
        let series = store.load_bench_records().unwrap();
        assert_eq!(series.len(), 2, "benchdata.json must append, not overwrite");
        assert_eq!(series[1].commit, "bbbb222");
        assert_eq!(series[1].value_of("fleet/jobs_per_sec"), Some(3.0));
        assert_eq!(
            store.bench_history("fleet/jobs_per_sec").unwrap(),
            vec![2.5, 3.0]
        );

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_record_round_trips_and_rejects_unknown_schema() {
        let record = BenchRecord::new(
            "abc1234",
            vec![BenchEntry {
                name: "plb_place_bc_x4_ring_100".to_string(),
                unit: "ns/iter".to_string(),
                value: 15_320.0,
            }],
        );
        let back = BenchRecord::from_json(&record.to_json()).unwrap();
        assert_eq!(back, record);
        assert_eq!(back.to_json().render(), record.to_json().render());

        let mut wrong = record.clone();
        wrong.schema_version = BENCH_SCHEMA_VERSION + 1;
        let err = BenchRecord::from_json(&wrong.to_json()).unwrap_err();
        assert!(err.contains("schema"), "got: {err}");
    }

    #[test]
    fn sequential_appends_preserve_prior_entries_byte_for_byte() {
        let dir = std::env::temp_dir().join(format!(
            "toto-bench-append-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = RunStore::new(&dir);
        let entry = |v: f64| BenchEntry {
            name: "suite/metric".to_string(),
            unit: "ns/iter".to_string(),
            value: v,
        };
        store
            .append_bench_record(&BenchRecord::new("c0ffee1", vec![entry(100.0)]))
            .unwrap();
        let first = fs::read(store.bench_path()).unwrap();

        store
            .append_bench_record(&BenchRecord::new("c0ffee2", vec![entry(101.0)]))
            .unwrap();
        let second = fs::read(store.bench_path()).unwrap();

        // The first record's rendered bytes survive the second append
        // unchanged: the rewrite re-renders parsed records, and
        // render(parse(render(x))) == render(x) for every artifact. The
        // series after two appends is the first file with its closing
        // "\n]\n" replaced by ",\n  {record2}...", so the first file
        // minus that suffix must be a byte prefix of the second.
        let first_text = String::from_utf8(first).unwrap();
        let second_text = String::from_utf8(second).unwrap();
        let first_body = first_text
            .strip_suffix("\n]\n")
            .expect("series must end with a closing bracket");
        assert!(
            second_text.starts_with(first_body),
            "append must preserve the prior record byte-for-byte;\nfirst:\n{first_text}\nsecond:\n{second_text}"
        );
        assert!(second_text.contains("c0ffee2"));
        // No temp file left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().to_string())
            .filter(|n| n.contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away");

        let _ = fs::remove_dir_all(&dir);
    }
}
