//! Workspace-level call-graph construction.
//!
//! The graph is built by conservative *name resolution*, not type
//! inference: a call site resolves to every workspace function the name
//! could plausibly denote, filtered by the caller crate's dependency
//! closure (a crate cannot call into a crate it does not depend on).
//! Over-approximation is the correct bias here — the graph feeds a
//! reachability ("taint") analysis whose job is to prove the *absence*
//! of nondeterminism sinks on sim paths, so a spurious edge can at worst
//! surface a finding a human then vets, while a missing edge would hide
//! a real violation.
//!
//! Resolution rules, per call form (all restricted to the caller's
//! dependency closure):
//!
//! * `name(…)`        → free functions named `name`
//! * `recv.name(…)`   → methods (impl-block fns) named `name`
//! * `Type::name(…)`  → fns named `name` inside `impl Type`
//! * `Self::name(…)`  → fns named `name` in the caller's own impl type
//! * `mod::name(…)`   → free fns named `name`, preferring files whose
//!   stem is `mod`; `toto_x::…` paths pin the crate.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};
use crate::parse::{parse_file, FnDef, ParsedFile};

/// A parsed workspace: every lib-code file, grouped by crate.
pub struct Workspace {
    /// (workspace-relative path, parsed file, crate index).
    pub files: Vec<(String, ParsedFile, usize)>,
    /// Crate short names (`fabric`, `fleet`, …; the root package is
    /// `suite`), indexed by crate id.
    pub crates: Vec<String>,
    /// Transitive dependency closure per crate, self included.
    pub closure: Vec<BTreeSet<usize>>,
    /// Global fn table: (file index, fn index within the file).
    pub fns: Vec<(usize, usize)>,
}

/// The crate short name a workspace-relative path belongs to:
/// `crates/fabric/src/plb.rs` → `fabric`, root `src/…` → `suite`.
pub fn crate_of_path(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("suite").to_string()
    } else {
        "suite".to_string()
    }
}

/// Normalize a Rust path segment that names a workspace crate to its
/// short name: `toto_fabric` → `fabric`, `toto` → `core`, `toto_suite`
/// → `suite`. Returns `None` for non-crate segments.
fn crate_segment(seg: &str, crates: &[String]) -> Option<usize> {
    let short = match seg {
        "toto" => "core".to_string(),
        s => s.strip_prefix("toto_")?.to_string(),
    };
    crates.iter().position(|c| *c == short)
}

impl Workspace {
    /// Build a workspace from in-memory sources and a crate dependency
    /// map keyed by crate short name (`deps["region"] = ["fleet", …]`).
    /// Missing keys mean "no workspace dependencies".
    pub fn build(sources: &[(String, String)], deps: &BTreeMap<String, Vec<String>>) -> Workspace {
        let mut crates: Vec<String> = Vec::new();
        let crate_id = |name: String, crates: &mut Vec<String>| -> usize {
            match crates.iter().position(|c| *c == name) {
                Some(i) => i,
                None => {
                    crates.push(name);
                    crates.len() - 1
                }
            }
        };

        let mut files = Vec::new();
        for (path, source) in sources {
            let cid = crate_id(crate_of_path(path), &mut crates);
            files.push((path.clone(), parse_file(source), cid));
        }
        // Crates named only in the dependency map still get ids so the
        // closure computation sees them.
        for (from, tos) in deps {
            crate_id(from.clone(), &mut crates);
            for to in tos {
                crate_id(to.clone(), &mut crates);
            }
        }

        // Transitive closure by fixpoint; the crate graph is tiny.
        let n = crates.len();
        let mut closure: Vec<BTreeSet<usize>> = (0..n).map(|i| BTreeSet::from([i])).collect();
        let direct: Vec<BTreeSet<usize>> = (0..n)
            .map(|i| {
                deps.get(&crates[i])
                    .map(|tos| {
                        tos.iter()
                            .filter_map(|t| crates.iter().position(|c| c == t))
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..n {
                let mut add: BTreeSet<usize> = BTreeSet::new();
                for &d in &direct[i] {
                    add.insert(d);
                    add.extend(closure[d].iter().copied());
                }
                for a in add {
                    changed |= closure[i].insert(a);
                }
            }
            if !changed {
                break;
            }
        }

        let mut fns = Vec::new();
        for (fi, (_, parsed, _)) in files.iter().enumerate() {
            for (gi, _) in parsed.fns.iter().enumerate() {
                fns.push((fi, gi));
            }
        }
        Workspace {
            files,
            crates,
            closure,
            fns,
        }
    }

    pub fn fn_def(&self, id: usize) -> &FnDef {
        let (fi, gi) = self.fns[id];
        &self.files[fi].1.fns[gi]
    }

    pub fn fn_file(&self, id: usize) -> &str {
        &self.files[self.fns[id].0].0
    }

    pub fn fn_crate(&self, id: usize) -> usize {
        self.files[self.fns[id].0].2
    }

    pub fn fn_tokens(&self, id: usize) -> &[Token] {
        &self.files[self.fns[id].0].1.lexed.tokens
    }

    /// `crate::module::Type::name` display form used in D004 chains.
    pub fn fn_qualified(&self, id: usize) -> String {
        let (fi, gi) = self.fns[id];
        let (path, parsed, cid) = &self.files[fi];
        let def = &parsed.fns[gi];
        let mut out = self.crates[*cid].clone();
        let stem = path
            .rsplit('/')
            .next()
            .and_then(|f| f.strip_suffix(".rs"))
            .unwrap_or("");
        if !matches!(stem, "lib" | "mod" | "main" | "") {
            out.push_str("::");
            out.push_str(stem);
        }
        if let Some(ty) = &def.impl_type {
            out.push_str("::");
            out.push_str(ty);
        }
        out.push_str("::");
        out.push_str(&def.name);
        out
    }
}

/// One call site recovered from a fn body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call {
    /// `name(…)`
    Bare(String),
    /// `recv.name(…)`
    Method(String),
    /// `a::b::name(…)` — segments exclude the final name.
    Qualified(Vec<String>, String),
}

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "loop", "match", "return", "fn", "let", "in", "move", "box", "as",
    "where", "impl", "dyn", "ref", "mut", "pub", "use", "mod", "else", "break", "continue",
];

/// Extract call sites from a token range (a fn body).
pub fn extract_calls(tokens: &[Token], range: (usize, usize)) -> Vec<Call> {
    let (start, end) = range;
    let mut out = Vec::new();
    let is_p = |i: usize, s: &str| {
        tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
    };
    for j in start..end.min(tokens.len()) {
        let t = &tokens[j];
        if t.kind != TokenKind::Ident || !is_p(j + 1, "(") {
            continue;
        }
        if KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let name = t.text.clone();
        if j > start && is_p(j - 1, ".") {
            out.push(Call::Method(name));
            continue;
        }
        if j >= start + 2 && is_p(j - 1, ":") && is_p(j - 2, ":") {
            // Walk the path backwards: … seg :: seg :: name(
            let mut segs = Vec::new();
            let mut k = j - 2;
            loop {
                let Some(seg) = k.checked_sub(1).map(|p| &tokens[p]) else {
                    break;
                };
                if seg.kind != TokenKind::Ident {
                    break;
                }
                segs.push(seg.text.clone());
                if k >= 3 && is_p(k - 2, ":") && is_p(k - 3, ":") {
                    k -= 3;
                } else {
                    break;
                }
            }
            segs.reverse();
            if segs.is_empty() {
                out.push(Call::Bare(name));
            } else {
                out.push(Call::Qualified(segs, name));
            }
            continue;
        }
        out.push(Call::Bare(name));
    }
    out
}

/// The workspace call graph: `edges[caller] = callees`, both global fn
/// ids, deduplicated and sorted for determinism.
pub struct CallGraph {
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    pub fn build(ws: &Workspace) -> CallGraph {
        // Name indices over the global fn table.
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for id in 0..ws.fns.len() {
            let def = ws.fn_def(id);
            match &def.impl_type {
                None => free_by_name.entry(&def.name).or_default().push(id),
                Some(ty) => {
                    methods_by_name.entry(&def.name).or_default().push(id);
                    by_type_name
                        .entry((ty.as_str(), def.name.as_str()))
                        .or_default()
                        .push(id);
                }
            }
        }
        let impl_types: BTreeSet<&str> = by_type_name.iter().map(|((ty, _), _)| *ty).collect();

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); ws.fns.len()];
        for caller in 0..ws.fns.len() {
            let def = ws.fn_def(caller);
            let Some(body) = def.body_inner() else {
                continue;
            };
            let tokens = ws.fn_tokens(caller);
            let caller_crate = ws.fn_crate(caller);
            let caller_file = ws.fns[caller].0;
            let in_closure =
                |id: usize| -> bool { ws.closure[caller_crate].contains(&ws.fn_crate(id)) };
            let mut callees: BTreeSet<usize> = BTreeSet::new();
            for call in extract_calls(tokens, body) {
                match call {
                    Call::Bare(name) => {
                        if let Some(cands) = free_by_name.get(name.as_str()) {
                            callees.extend(cands.iter().copied().filter(|&c| in_closure(c)));
                        }
                    }
                    Call::Method(name) => {
                        if let Some(cands) = methods_by_name.get(name.as_str()) {
                            callees.extend(cands.iter().copied().filter(|&c| in_closure(c)));
                        }
                    }
                    Call::Qualified(segs, name) => {
                        let parent = segs.last().map(String::as_str).unwrap_or("");
                        if parent == "Self" {
                            if let Some(self_ty) = &def.impl_type {
                                if let Some(cands) =
                                    by_type_name.get(&(self_ty.as_str(), name.as_str()))
                                {
                                    callees
                                        .extend(cands.iter().copied().filter(|&c| in_closure(c)));
                                }
                            }
                        } else if matches!(parent, "self" | "crate" | "super") {
                            if let Some(cands) = free_by_name.get(name.as_str()) {
                                callees.extend(
                                    cands
                                        .iter()
                                        .copied()
                                        .filter(|&c| ws.fn_crate(c) == caller_crate),
                                );
                            }
                        } else if impl_types.contains(parent) {
                            if let Some(cands) = by_type_name.get(&(parent, name.as_str())) {
                                callees.extend(cands.iter().copied().filter(|&c| in_closure(c)));
                            }
                        } else if let Some(target_crate) =
                            segs.first().and_then(|s| crate_segment(s, &ws.crates))
                        {
                            // `toto_x::path::name(…)`: pin the crate; the
                            // name may be free or associated.
                            for idx in [
                                free_by_name.get(name.as_str()),
                                methods_by_name.get(name.as_str()),
                            ]
                            .into_iter()
                            .flatten()
                            {
                                callees.extend(
                                    idx.iter()
                                        .copied()
                                        .filter(|&c| ws.fn_crate(c) == target_crate),
                                );
                            }
                        } else if let Some(cands) = free_by_name.get(name.as_str()) {
                            // Module-qualified local call: prefer files
                            // whose stem matches the qualifier.
                            let in_mod: Vec<usize> = cands
                                .iter()
                                .copied()
                                .filter(|&c| {
                                    in_closure(c)
                                        && ws
                                            .fn_file(c)
                                            .rsplit('/')
                                            .next()
                                            .and_then(|f| f.strip_suffix(".rs"))
                                            == Some(parent)
                                })
                                .collect();
                            if in_mod.is_empty() {
                                callees.extend(cands.iter().copied().filter(|&c| in_closure(c)));
                            } else {
                                callees.extend(in_mod);
                            }
                        }
                    }
                }
            }
            // A fn trivially "calls" itself only through recursion, which
            // adds nothing to reachability; drop self-edges for clarity.
            callees.remove(&caller);
            let _ = caller_file;
            edges[caller] = callees.into_iter().collect();
        }
        CallGraph { edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)], deps: &[(&str, &[&str])]) -> Workspace {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let deps: BTreeMap<String, Vec<String>> = deps
            .iter()
            .map(|(f, ts)| {
                (
                    f.to_string(),
                    ts.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
                )
            })
            .collect();
        Workspace::build(&sources, &deps)
    }

    fn edge(ws: &Workspace, g: &CallGraph, from: &str, to: &str) -> bool {
        let find = |name: &str| {
            (0..ws.fns.len())
                .find(|&i| ws.fn_qualified(i) == name)
                .unwrap_or_else(|| panic!("no fn {name}"))
        };
        g.edges[find(from)].contains(&find(to))
    }

    #[test]
    fn extracts_call_forms() {
        let parsed = parse_file("fn f() { helper(); x.method(); a::b::qual(); Type::assoc(); }");
        let body = parsed.fns[0].body_inner().unwrap();
        let calls = extract_calls(&parsed.lexed.tokens, body);
        assert_eq!(
            calls,
            vec![
                Call::Bare("helper".into()),
                Call::Method("method".into()),
                Call::Qualified(vec!["a".into(), "b".into()], "qual".into()),
                Call::Qualified(vec!["Type".into()], "assoc".into()),
            ]
        );
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let parsed = parse_file("fn f() { assert!(x); if (a) {} vec![]; }");
        let body = parsed.fns[0].body_inner().unwrap();
        assert!(extract_calls(&parsed.lexed.tokens, body).is_empty());
    }

    #[test]
    fn cross_crate_edges_respect_dependency_closure() {
        let w = ws(
            &[
                ("crates/core/src/lib.rs", "pub fn run() { tick(); }"),
                ("crates/fleet/src/lib.rs", "pub fn tick() {}"),
                ("crates/other/src/lib.rs", "pub fn tick() {}"),
            ],
            &[("core", &["fleet"])],
        );
        let g = CallGraph::build(&w);
        assert!(edge(&w, &g, "core::run", "fleet::tick"));
        // `other` is not a dependency of `core`: no edge.
        assert!(!edge(&w, &g, "core::run", "other::tick"));
    }

    #[test]
    fn transitive_closure_spans_chains() {
        let w = ws(
            &[
                ("crates/a/src/lib.rs", "pub fn top() { mid(); }"),
                ("crates/b/src/lib.rs", "pub fn mid() { bot(); }"),
                ("crates/c/src/lib.rs", "pub fn bot() {}"),
            ],
            &[("a", &["b"]), ("b", &["c"])],
        );
        let g = CallGraph::build(&w);
        assert!(edge(&w, &g, "a::top", "b::mid"));
        assert!(edge(&w, &g, "b::mid", "c::bot"));
    }

    #[test]
    fn method_and_type_qualified_resolution() {
        let w = ws(
            &[(
                "crates/a/src/lib.rs",
                "pub struct S;\n\
                 impl S { pub fn m(&self) {} pub fn assoc() { Self::m_helper(); } \
                 fn m_helper(&self) {} }\n\
                 pub fn caller(s: &S) { s.m(); S::assoc(); }",
            )],
            &[],
        );
        let g = CallGraph::build(&w);
        assert!(edge(&w, &g, "a::caller", "a::S::m"));
        assert!(edge(&w, &g, "a::caller", "a::S::assoc"));
        assert!(edge(&w, &g, "a::S::assoc", "a::S::m_helper"));
    }

    #[test]
    fn crate_qualified_paths_pin_the_crate() {
        let w = ws(
            &[
                (
                    "crates/region/src/lib.rs",
                    "pub fn go() { toto_fleet::execute(); }",
                ),
                ("crates/fleet/src/lib.rs", "pub fn execute() {}"),
                ("crates/spec/src/lib.rs", "pub fn execute() {}"),
            ],
            &[("region", &["fleet", "spec"])],
        );
        let g = CallGraph::build(&w);
        assert!(edge(&w, &g, "region::go", "fleet::execute"));
        assert!(!edge(&w, &g, "region::go", "spec::execute"));
    }
}
