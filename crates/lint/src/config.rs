//! Linter configuration, loaded from `lint.toml` at the workspace root.
//!
//! The build environment has no TOML crate, so this module parses the
//! small TOML subset the config actually uses: `[section]` headers,
//! `[[array-of-tables]]` headers, `key = "string"` and
//! `key = ["a", "b"]` assignments, and `#` comments. Anything outside
//! that subset is a hard configuration error — a linter that silently
//! ignores half its config is worse than no linter.

use std::collections::BTreeMap;

/// Diagnostic severity / rule level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Rule disabled.
    Off,
    /// Report, but do not fail the run.
    Warn,
    /// Report and fail the run (exit code 1).
    Error,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        match s {
            "off" => Some(Level::Off),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    /// Lower-case name, as used in output.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A vetted file-level exemption: all diagnostics of `rule` in `path`
/// are dropped. Every entry must carry a one-line justification.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// The rule being exempted.
    pub rule: String,
    /// Path prefix (workspace-relative, forward slashes).
    pub path: String,
    /// Why the exemption is sound.
    pub reason: String,
}

/// The full linter configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Crate-path prefixes forming the deterministic simulation path
    /// (D001 and R001 apply here).
    pub sim_path: Vec<String>,
    /// Per-rule levels; rules absent from the map use their default.
    pub levels: BTreeMap<String, Level>,
    /// Paths where wall-clock use is legitimate (D002 does not apply):
    /// the fleet executor's progress reporting and bench harnesses.
    pub d002_allowed_paths: Vec<String>,
    /// Files whose `pub fn … &mut <state>` functions must carry a
    /// `debug_assert!`-based invariant check (R002).
    pub r002_paths: Vec<String>,
    /// Type names treated as mutable cluster state by R002.
    pub r002_mut_state_types: Vec<String>,
    /// Path prefixes excluded from the workspace scan entirely (the
    /// linter's own rule fixtures live here).
    pub exclude: Vec<String>,
    /// Vetted file-level exemptions.
    pub allow: Vec<AllowEntry>,
}

/// The rules this linter knows about, in report order. `D004`–`D006`
/// and `T001` are the flow-aware/parse-layer family; `L001`/`L002`
/// police the suppression mechanism itself.
pub const KNOWN_RULES: &[&str] = &[
    "D001", "D002", "D003", "D004", "D005", "D006", "R001", "R002", "T001", "L001", "L002",
];

impl Default for Config {
    fn default() -> Self {
        let mut levels = BTreeMap::new();
        for rule in [
            "D001", "D002", "D003", "D004", "D005", "D006", "R001", "R002", "T001", "L001",
        ] {
            levels.insert(rule.to_string(), Level::Error);
        }
        levels.insert("L002".to_string(), Level::Warn);
        Config {
            sim_path: [
                "crates/simcore",
                "crates/fabric",
                "crates/rgmanager",
                "crates/models",
                "crates/controlplane",
                "crates/core",
                "crates/stats",
                "crates/trace",
                "crates/chaos",
                "crates/region",
                "crates/scenario",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            levels,
            d002_allowed_paths: vec![
                "crates/fleet/src/executor.rs".to_string(),
                "crates/bench".to_string(),
                "crates/fleet/benches".to_string(),
                // The linter's own `--timing` flag measures wall time.
                "crates/lint/src/main.rs".to_string(),
            ],
            r002_paths: vec![
                "crates/fabric/src/plb.rs".to_string(),
                "crates/rgmanager/src".to_string(),
                "crates/controlplane/src/ring.rs".to_string(),
                "crates/scenario/src/oracle.rs".to_string(),
            ],
            r002_mut_state_types: vec![
                "Cluster".to_string(),
                "NamingService".to_string(),
                "RingSet".to_string(),
                "KsOracle".to_string(),
            ],
            exclude: vec!["crates/lint/tests/fixtures".to_string()],
            allow: Vec::new(),
        }
    }
}

impl Config {
    /// The effective level for a rule (default `Off` for unknown ids —
    /// unknown ids are rejected earlier, at parse time).
    pub fn level(&self, rule: &str) -> Level {
        self.levels.get(rule).copied().unwrap_or(Level::Off)
    }

    /// Parse a `lint.toml` document. Unknown sections, keys, rules or
    /// value shapes are errors.
    pub fn from_toml_str(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        // Sections configured by the file replace the built-in defaults
        // rather than appending to them.
        let mut section = String::new();
        let mut pending_allow: Option<BTreeMap<String, String>> = None;
        let mut allows: Vec<AllowEntry> = Vec::new();

        let flush_allow = |pending: &mut Option<BTreeMap<String, String>>,
                           allows: &mut Vec<AllowEntry>|
         -> Result<(), String> {
            if let Some(map) = pending.take() {
                let get = |k: &str| -> Result<String, String> {
                    map.get(k)
                        .cloned()
                        .ok_or_else(|| format!("[[allow]] entry is missing `{k}`"))
                };
                let entry = AllowEntry {
                    rule: get("rule")?,
                    path: get("path")?,
                    reason: get("reason")?,
                };
                if !KNOWN_RULES.contains(&entry.rule.as_str()) {
                    return Err(format!(
                        "L001: [[allow]] names unknown rule {:?}; known rules: {}",
                        entry.rule,
                        KNOWN_RULES.join(", ")
                    ));
                }
                if entry.reason.trim().is_empty() {
                    return Err(format!(
                        "[[allow]] for {} in {} has an empty reason; every exemption \
                         must be justified",
                        entry.rule, entry.path
                    ));
                }
                allows.push(entry);
            }
            Ok(())
        };

        for (lineno, line) in logical_lines(text) {
            let line = line.as_str();
            if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                if header.trim() != "allow" {
                    return Err(format!("line {lineno}: unknown array table [[{header}]]"));
                }
                flush_allow(&mut pending_allow, &mut allows)?;
                pending_allow = Some(BTreeMap::new());
                section = "allow".to_string();
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                flush_allow(&mut pending_allow, &mut allows)?;
                section = header.trim().to_string();
                match section.as_str() {
                    "scan" | "classes" | "levels" | "rules.D002" | "rules.R002" => {}
                    other => return Err(format!("line {lineno}: unknown section [{other}]")),
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
            let key = key.trim();
            let value = parse_value(value.trim())
                .ok_or_else(|| format!("line {lineno}: malformed value for `{key}`"))?;
            match (section.as_str(), key) {
                ("scan", "exclude") => config.exclude = value.into_array(lineno, key)?,
                ("classes", "sim_path") => config.sim_path = value.into_array(lineno, key)?,
                ("levels", rule) => {
                    if !KNOWN_RULES.contains(&rule) {
                        return Err(format!(
                            "line {lineno}: L001: unknown rule `{rule}` in [levels]; \
                             known rules: {}",
                            KNOWN_RULES.join(", ")
                        ));
                    }
                    let s = value.into_string(lineno, key)?;
                    let level = Level::parse(&s).ok_or_else(|| {
                        format!("line {lineno}: level for {rule} must be off|warn|error")
                    })?;
                    config.levels.insert(rule.to_string(), level);
                }
                ("rules.D002", "allowed_paths") => {
                    config.d002_allowed_paths = value.into_array(lineno, key)?
                }
                ("rules.R002", "paths") => config.r002_paths = value.into_array(lineno, key)?,
                ("rules.R002", "mut_state_types") => {
                    config.r002_mut_state_types = value.into_array(lineno, key)?
                }
                ("allow", k @ ("rule" | "path" | "reason")) => {
                    let map = pending_allow
                        .as_mut()
                        .ok_or_else(|| format!("line {lineno}: key outside [[allow]] entry"))?;
                    map.insert(k.to_string(), value.into_string(lineno, key)?);
                }
                _ => {
                    return Err(format!(
                        "line {lineno}: unknown key `{key}` in section [{section}]"
                    ));
                }
            }
        }
        flush_allow(&mut pending_allow, &mut allows)?;
        config.allow = allows;
        Ok(config)
    }
}

enum Value {
    Str(String),
    Arr(Vec<String>),
}

impl Value {
    fn into_string(self, lineno: usize, key: &str) -> Result<String, String> {
        match self {
            Value::Str(s) => Ok(s),
            Value::Arr(_) => Err(format!("line {lineno}: `{key}` must be a string")),
        }
    }

    fn into_array(self, lineno: usize, key: &str) -> Result<Vec<String>, String> {
        match self {
            Value::Arr(v) => Ok(v),
            Value::Str(_) => Err(format!("line {lineno}: `{key}` must be an array")),
        }
    }
}

/// Net `[`-minus-`]` count outside quoted strings, for multi-line arrays.
fn bracket_balance(line: &str) -> i32 {
    let mut in_str = false;
    let mut balance = 0;
    for b in line.bytes() {
        match b {
            b'"' => in_str = !in_str,
            b'[' if !in_str => balance += 1,
            b']' if !in_str => balance -= 1,
            _ => {}
        }
    }
    balance
}

/// Fold the document into logical `(lineno, text)` lines: comments
/// stripped, blanks dropped, and a `key = [` array spliced together with
/// its continuation lines until the brackets balance. Section headers are
/// bracketed too, so the fold only engages when a `=` is present.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut open = 0i32;
    for (idx, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if open > 0 {
            let (_, buf) = out.last_mut().expect("continuation follows an opener");
            buf.push(' ');
            buf.push_str(line);
            open += bracket_balance(line);
            continue;
        }
        out.push((idx + 1, line.to_string()));
        if line.contains('=') {
            open = bracket_balance(line).max(0);
        }
    }
    out
}

/// Strip a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Option<Value> {
    if let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let inner = inner.trim();
        if inner.is_empty() {
            return Some(Value::Arr(Vec::new()));
        }
        let mut items = Vec::new();
        for item in inner.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue; // trailing comma
            }
            items.push(parse_string(item)?);
        }
        return Some(Value::Arr(items));
    }
    parse_string(text).map(Value::Str)
}

fn parse_string(text: &str) -> Option<String> {
    text.strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .map(|s| s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_all_rules() {
        let c = Config::default();
        for rule in KNOWN_RULES {
            assert_ne!(c.level(rule), Level::Off, "{rule} should be on by default");
        }
        assert_eq!(c.level("L002"), Level::Warn);
    }

    #[test]
    fn parses_multi_line_arrays() {
        let c = Config::from_toml_str(
            "[classes]\nsim_path = [\n    \"crates/a\", # trailing comment\n    \"crates/b\",\n]\n",
        )
        .expect("multi-line array parses");
        assert_eq!(c.sim_path, vec!["crates/a", "crates/b"]);
    }

    #[test]
    fn parses_a_full_document() {
        let c = Config::from_toml_str(
            r#"
# comment
[scan]
exclude = ["a/b", "c"]

[classes]
sim_path = ["crates/x"]

[levels]
D001 = "error"
R001 = "warn"
D003 = "off"

[rules.D002]
allowed_paths = ["crates/y/src/clock.rs"]

[rules.R002]
paths = ["crates/x/src/state.rs"]
mut_state_types = ["World"]

[[allow]]
rule = "R001"
path = "crates/x/src/hot.rs"
reason = "expects guard internal invariants"

[[allow]]
rule = "D001" # trailing comment
path = "crates/x/src/wrap.rs"
reason = "defines the deterministic wrapper itself"
"#,
        )
        .expect("parses");
        assert_eq!(c.exclude, vec!["a/b", "c"]);
        assert_eq!(c.sim_path, vec!["crates/x"]);
        assert_eq!(c.level("R001"), Level::Warn);
        assert_eq!(c.level("D003"), Level::Off);
        assert_eq!(c.level("D002"), Level::Error); // default retained
        assert_eq!(c.d002_allowed_paths, vec!["crates/y/src/clock.rs"]);
        assert_eq!(c.r002_mut_state_types, vec!["World"]);
        assert_eq!(c.allow.len(), 2);
        assert_eq!(c.allow[1].rule, "D001");
    }

    #[test]
    fn unknown_rule_in_levels_is_rejected() {
        let err = Config::from_toml_str("[levels]\nD9 = \"error\"\n").unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        assert!(err.contains("L001"), "{err}");
    }

    #[test]
    fn misspelled_rule_in_levels_is_a_hard_l001_error() {
        // `D0O4` (letter O) for `D004` — the typo class that would
        // silently leave the real rule at its default.
        let err = Config::from_toml_str("[levels]\nD0O4 = \"error\"\n").unwrap_err();
        assert!(err.contains("L001"), "{err}");
        assert!(err.contains("D0O4"), "{err}");
        assert!(err.contains("D004"), "should list known rules: {err}");
    }

    #[test]
    fn misspelled_rule_in_allow_is_a_hard_l001_error() {
        let err = Config::from_toml_str(
            "[[allow]]\nrule = \"T01\"\npath = \"crates/x\"\nreason = \"typo\"\n",
        )
        .unwrap_err();
        assert!(err.contains("L001"), "{err}");
        assert!(err.contains("T01"), "{err}");
    }

    #[test]
    fn unknown_section_is_rejected() {
        let err = Config::from_toml_str("[mystery]\nx = \"1\"\n").unwrap_err();
        assert!(err.contains("unknown section"), "{err}");
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let err =
            Config::from_toml_str("[[allow]]\nrule = \"R001\"\npath = \"x\"\nreason = \" \"\n")
                .unwrap_err();
        assert!(err.contains("justified"), "{err}");
    }

    #[test]
    fn allow_missing_key_is_rejected() {
        let err = Config::from_toml_str("[[allow]]\nrule = \"R001\"\n").unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn allow_unknown_rule_is_rejected() {
        let err = Config::from_toml_str(
            "[[allow]]\nrule = \"Z001\"\npath = \"x\"\nreason = \"because\"\n",
        )
        .unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
    }
}
