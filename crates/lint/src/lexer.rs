//! A small, self-contained Rust lexer.
//!
//! toto-lint's rules are *lexical*: they match token sequences, not a full
//! AST. The lexer therefore only needs to get the hard tokenization cases
//! right — comments (including nested block comments), string literals
//! (including raw and byte strings), and the `'a`-lifetime versus `'a'`
//! char-literal ambiguity — so that rule patterns never fire on text that
//! is really inside a comment or a string.
//!
//! Alongside the token stream the lexer collects `// toto-lint: allow(…)`
//! suppression comments with the line they appear on; the rule engine
//! matches them against diagnostics on the same line or the line below.

/// What kind of token this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident,
    /// A string literal (normal, raw, byte or raw-byte).
    Str,
    /// A character or byte literal.
    Char,
    /// A numeric literal.
    Num,
    /// A single punctuation character.
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// The token text. For `Str` this is the raw literal including quotes.
    pub text: String,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based column of the first character.
    pub col: usize,
}

/// A `// toto-lint: allow(RULE, …)` suppression comment.
#[derive(Clone, Debug)]
pub struct AllowComment {
    /// 1-based line the comment appears on.
    pub line: usize,
    /// 1-based column of the comment marker.
    pub col: usize,
    /// The rule ids listed inside `allow(…)`, verbatim.
    pub rules: Vec<String>,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// All suppression comments in source order.
    pub allows: Vec<AllowComment>,
}

/// The marker that introduces a suppression inside a line comment.
pub const ALLOW_MARKER: &str = "toto-lint:";

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn eof(&self) -> bool {
        self.pos >= self.bytes.len()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Parse the rule list out of a comment body containing the allow marker.
/// Returns `None` if the comment is not a suppression comment.
fn parse_allow(body: &str) -> Option<Vec<String>> {
    // The marker must open the comment body: after the two comment
    // slashes, the first non-space text has to be the marker itself.
    // Prose that merely *mentions* the suppression syntax never matches —
    // doc comment bodies begin with a third `/` or a `!`.
    let body = body.strip_prefix("//").unwrap_or(body);
    let after = body.trim_start().strip_prefix(ALLOW_MARKER)?.trim_start();
    let rest = after.strip_prefix("allow")?.trim_start();
    let inner = rest.strip_prefix('(')?;
    let inner = inner.split(')').next()?;
    Some(
        inner
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect(),
    )
}

/// Lex a whole file.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(b) = c.peek() {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                // Line comment (also covers `///` and `//!` doc comments).
                let start = c.pos;
                while let Some(nb) = c.peek() {
                    if nb == b'\n' {
                        break;
                    }
                    c.bump();
                }
                let body = &src[start..c.pos];
                if let Some(rules) = parse_allow(body) {
                    out.allows.push(AllowComment { line, col, rules });
                }
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                // Block comment; Rust block comments nest.
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while depth > 0 && !c.eof() {
                    if c.peek() == Some(b'/') && c.peek_at(1) == Some(b'*') {
                        c.bump();
                        c.bump();
                        depth += 1;
                    } else if c.peek() == Some(b'*') && c.peek_at(1) == Some(b'/') {
                        c.bump();
                        c.bump();
                        depth -= 1;
                    } else {
                        c.bump();
                    }
                }
            }
            b'"' => {
                let text = lex_string(&mut c, 0, false);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                    col,
                });
            }
            b'\'' => {
                if let Some(tok) = lex_char_or_lifetime(&mut c, line, col) {
                    out.tokens.push(tok);
                }
            }
            _ if b.is_ascii_digit() => {
                let start = c.pos;
                // `0x`/`0o`/`0b` literals never carry a decimal exponent, and
                // `E` is a hex digit — `0x1E-5` must stay three tokens.
                let radix_prefixed = b == b'0'
                    && c.peek_at(1)
                        .is_some_and(|p| matches!(p, b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
                while let Some(nb) = c.peek() {
                    if is_ident_continue(nb) {
                        c.bump();
                    } else if nb == b'.' && c.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                        // `1.5` continues the number; `1..5` does not.
                        c.bump();
                    } else if !radix_prefixed
                        && (nb == b'+' || nb == b'-')
                        && c.pos > start
                        && matches!(c.bytes[c.pos - 1], b'e' | b'E')
                        && c.peek_at(1).is_some_and(|d| d.is_ascii_digit())
                    {
                        // Signed exponent: `1e-9`, `2.5E+10` stay one token.
                        c.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Num,
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                });
            }
            _ if is_ident_start(b) => {
                let start = c.pos;
                while c.peek().is_some_and(is_ident_continue) {
                    c.bump();
                }
                let ident = &src[start..c.pos];
                // `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` are string literals
                // whose prefix lexes as an identifier; `b'…'` likewise for
                // byte literals.
                let hashes = {
                    let mut n = 0;
                    while c.peek_at(n) == Some(b'#') {
                        n += 1;
                    }
                    n
                };
                let raw_capable = matches!(ident, "r" | "br");
                let byte_capable = matches!(ident, "b" | "br");
                if (raw_capable && c.peek_at(hashes) == Some(b'"'))
                    || (byte_capable && hashes == 0 && c.peek() == Some(b'"'))
                {
                    let is_raw = raw_capable && c.peek_at(hashes) == Some(b'"');
                    let body = if is_raw {
                        for _ in 0..hashes {
                            c.bump();
                        }
                        lex_string(&mut c, hashes, true)
                    } else {
                        lex_string(&mut c, 0, false)
                    };
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text: format!("{ident}{body}"),
                        line,
                        col,
                    });
                } else if ident == "r"
                    && c.peek() == Some(b'#')
                    && c.peek_at(1).is_some_and(is_ident_start)
                {
                    // Raw identifier (`r#type`, `r#match`). Keep the `r#`
                    // prefix in the token text: `r#type` is a distinct
                    // identifier from the keyword `type`, and emitting the
                    // `#` as punctuation would fabricate attribute-like
                    // token sequences.
                    c.bump(); // '#'
                    while c.peek().is_some_and(is_ident_continue) {
                        c.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: src[start..c.pos].to_string(),
                        line,
                        col,
                    });
                } else if ident == "b" && c.peek() == Some(b'\'') {
                    if let Some(tok) = lex_char_or_lifetime(&mut c, line, col) {
                        out.tokens.push(Token {
                            kind: TokenKind::Char,
                            text: format!("b{}", tok.text),
                            line,
                            col,
                        });
                    }
                } else {
                    out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: ident.to_string(),
                        line,
                        col,
                    });
                }
            }
            _ => {
                c.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Lex a string literal starting at the opening quote. `hashes` is the
/// number of `#`s in a raw string's delimiter; `raw` disables backslash
/// escapes (raw strings treat `\` literally).
fn lex_string(c: &mut Cursor<'_>, hashes: usize, raw: bool) -> String {
    let start = c.pos;
    c.bump(); // opening quote
    while let Some(b) = c.peek() {
        if !raw && b == b'\\' {
            c.bump();
            c.bump();
            continue;
        }
        if b == b'"' {
            c.bump();
            if hashes == 0 {
                break;
            }
            let mut seen = 0;
            while seen < hashes && c.peek() == Some(b'#') {
                c.bump();
                seen += 1;
            }
            if seen == hashes {
                break;
            }
            continue;
        }
        c.bump();
    }
    String::from_utf8_lossy(&c.bytes[start..c.pos]).into_owned()
}

/// Disambiguate `'a'` (char literal) from `'a` (lifetime). Lifetimes are
/// dropped (`None` is only returned for them); char literals become
/// tokens so rule patterns never fire inside them.
fn lex_char_or_lifetime(c: &mut Cursor<'_>, line: usize, col: usize) -> Option<Token> {
    let start = c.pos;
    c.bump(); // opening '
    let first = c.peek()?;
    if is_ident_start(first) {
        // Could be a lifetime ('a, 'static) or a char ('a'). Scan the
        // identifier run and check for a closing quote.
        let mut n = 0;
        while c.peek_at(n).is_some_and(is_ident_continue) {
            n += 1;
        }
        if c.peek_at(n) != Some(b'\'') {
            // Lifetime: consume the identifier and emit nothing.
            for _ in 0..n {
                c.bump();
            }
            return None;
        }
        for _ in 0..=n {
            c.bump();
        }
    } else {
        // Escape or punctuation char literal: '\n', '\'', '\\', '%' …
        if first == b'\\' {
            c.bump();
            c.bump();
        } else {
            c.bump();
        }
        if c.peek() == Some(b'\'') {
            c.bump();
        }
    }
    Some(Token {
        kind: TokenKind::Char,
        text: String::from_utf8_lossy(&c.bytes[start..c.pos]).into_owned(),
        line,
        col,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            texts("use std::collections::HashMap;"),
            vec![
                "use",
                "std",
                ":",
                ":",
                "collections",
                ":",
                ":",
                "HashMap",
                ";"
            ]
        );
    }

    #[test]
    fn comments_are_skipped_even_nested() {
        assert_eq!(
            texts("a // HashMap\nb /* x /* HashMap */ y */ c"),
            vec!["a", "b", "c"]
        );
    }

    #[test]
    fn strings_are_single_tokens() {
        let toks = lex("let x = \"Instant::now()\";").tokens;
        assert_eq!(toks[3].kind, TokenKind::Str);
        assert_eq!(toks[3].text, "\"Instant::now()\"");
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = lex(r###"let x = r#"un "quoted" thread_rng"#; let y = b"bytes";"###).tokens;
        assert_eq!(toks[3].kind, TokenKind::Str);
        assert!(toks[3].text.contains("thread_rng"));
        let y = toks.iter().find(|t| t.text.starts_with("b\"")).unwrap();
        assert_eq!(y.kind, TokenKind::Str);
    }

    #[test]
    fn lifetimes_versus_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }").tokens;
        assert!(toks
            .iter()
            .all(|t| t.text != "a" || t.kind == TokenKind::Ident));
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn byte_char_literal() {
        let toks = lex("p.expect_byte(b'=')").tokens;
        let ch = toks.iter().find(|t| t.kind == TokenKind::Char).unwrap();
        assert_eq!(ch.text, "b'='");
    }

    #[test]
    fn allow_comments_are_collected() {
        let lexed = lex("use x; // toto-lint: allow(D001, R001)\nlet y = 1;");
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.allows[0].rules, vec!["D001", "R001"]);
    }

    #[test]
    fn non_allow_comments_are_ignored() {
        let lexed = lex("// just a note about toto-lint rules\nlet y = 1;");
        assert!(lexed.allows.is_empty());
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b").tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn numbers_including_floats_and_ranges() {
        assert_eq!(texts("1.5 + 1..5"), vec!["1.5", "+", "1", ".", ".", "5"]);
    }

    #[test]
    fn float_exponents_are_single_tokens() {
        assert_eq!(texts("1e-9"), vec!["1e-9"]);
        assert_eq!(texts("2.5E+10 * 3e7"), vec!["2.5E+10", "*", "3e7"]);
        assert_eq!(texts("1.5e-3f64"), vec!["1.5e-3f64"]);
        // A sign not preceded by an exponent marker is an operator...
        assert_eq!(texts("1-9"), vec!["1", "-", "9"]);
        // ...and hex digits never absorb one: `0x1E-5` is a subtraction.
        assert_eq!(texts("0x1E-5"), vec!["0x1E", "-", "5"]);
    }

    #[test]
    fn raw_identifiers_are_single_idents() {
        let toks = lex("let r#type = r#match.clone();").tokens;
        assert_eq!(toks[1].kind, TokenKind::Ident);
        assert_eq!(toks[1].text, "r#type");
        assert!(toks.iter().any(|t| t.text == "r#match"));
        // No stray `#` punctuation that could fake an attribute.
        assert!(!toks.iter().any(|t| t.text == "#"));
        // Raw strings still lex as strings, not raw identifiers.
        let s = lex("r#\"text\"#").tokens;
        assert_eq!(s[0].kind, TokenKind::Str);
    }
}
