//! toto-lint: a workspace determinism & robustness linter.
//!
//! The Toto reproduction promises byte-identical artifacts for identical
//! `(spec, seed)` pairs. That promise is easy to break silently: one
//! `HashMap` iteration feeding an event queue, one `Instant::now()` in a
//! model, one `thread_rng()` in a placement tie-break. toto-lint encodes
//! the contract as lexical rules over the workspace source so violations
//! fail CI instead of corrupting experiments.
//!
//! The analyzer is deliberately dependency-free: a hand-rolled Rust lexer
//! (`lexer`), a TOML-subset config loader (`config`), and token-sequence
//! rule matchers (`rules`). See `DESIGN.md` § "Determinism contract" for
//! the rule catalogue and the rationale behind each rule.

pub mod config;
pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use config::{Config, Level};
pub use rules::scan_file;

/// One lint finding, span-accurate to the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: String,
    pub level: Level,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based.
    pub line: usize,
    /// 1-based.
    pub col: usize,
    pub message: String,
    /// The full source line the diagnostic points into.
    pub snippet: String,
}

/// Result of linting a whole workspace tree.
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Warn)
            .count()
    }
}

/// Collect the `.rs` files under `dir` (recursively), as workspace-relative
/// forward-slash paths, sorted for deterministic output.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(root, &p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = p.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

/// Lint every Rust source under the workspace root: `crates/*/{src,tests,
/// examples,benches}` plus the root package's `src`, `tests`, and
/// `examples`. `vendor/` and `target/` are never scanned; `config.exclude`
/// prefixes (e.g. the lint fixtures, which contain deliberate violations)
/// are dropped after collection.
pub fn scan_workspace(root: &Path, config: &Config) -> std::io::Result<Report> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            for sub in ["src", "tests", "examples", "benches"] {
                collect_rs_files(root, &member.join(sub), &mut files);
            }
        }
    }
    for sub in ["src", "tests", "examples"] {
        collect_rs_files(root, &root.join(sub), &mut files);
    }
    files.sort();
    files.dedup();
    files.retain(|f| {
        !f.starts_with("vendor/")
            && !f.starts_with("target/")
            && !config.exclude.iter().any(|p| rules::path_has_prefix(f, p))
    });

    let mut diagnostics = Vec::new();
    let files_scanned = files.len();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        diagnostics.extend(scan_file(rel, &source, config));
    }
    Ok(Report {
        diagnostics,
        files_scanned,
    })
}
