//! toto-lint: a workspace determinism & robustness linter.
//!
//! The Toto reproduction promises byte-identical artifacts for identical
//! `(spec, seed)` pairs. That promise is easy to break silently: one
//! `HashMap` iteration feeding an event queue, one `Instant::now()` in a
//! model, one `thread_rng()` in a placement tie-break. toto-lint encodes
//! the contract as rules over the workspace source so violations fail CI
//! instead of corrupting experiments.
//!
//! The analyzer is deliberately dependency-free and layered: a
//! hand-rolled Rust lexer (`lexer`), a lightweight item/fn parser
//! (`parse`), a conservative name-resolution call graph across the
//! workspace (`callgraph`), flow-aware reachability analyses on top of
//! it (`reach`), a TOML-subset config loader (`config`), and the rule
//! matchers (`rules`). See `DESIGN.md` § "Determinism contract" for the
//! rule catalogue and the rationale behind each rule.

pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod parse;
pub mod reach;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use callgraph::{CallGraph, Workspace};
use config::{Config, Level};
pub use rules::{scan_file, scan_file_with};

/// One lint finding, span-accurate to the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: String,
    pub level: Level,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based.
    pub line: usize,
    /// 1-based.
    pub col: usize,
    pub message: String,
    /// The full source line the diagnostic points into.
    pub snippet: String,
}

/// Result of linting a whole workspace tree.
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Warn)
            .count()
    }
}

/// Lint a set of in-memory sources as one workspace: per-file rules plus
/// the flow-aware analyses (D004 reachability, T001 trace coverage) over
/// the call graph of the library-code subset. `deps` maps crate short
/// names (directory names under `crates/`; the root package is `suite`)
/// to their direct workspace dependencies. Diagnostics come back sorted
/// by `(file, line, rule, col)` — the stable order CI artifacts diff on.
///
/// This is the full analysis pipeline behind [`scan_workspace`], exposed
/// so tests can lint synthetic multi-crate fixtures without touching the
/// filesystem.
pub fn analyze_files(
    sources: &[(String, String)],
    deps: &BTreeMap<String, Vec<String>>,
    config: &Config,
) -> Vec<Diagnostic> {
    let flow_aware = config.level("D004") != Level::Off || config.level("T001") != Level::Off;
    let extra: BTreeMap<String, Vec<rules::Finding>> = if flow_aware {
        let lib_sources: Vec<(String, String)> = sources
            .iter()
            .filter(|(p, _)| rules::is_lib_code(p))
            .cloned()
            .collect();
        let ws = Workspace::build(&lib_sources, deps);
        let graph = CallGraph::build(&ws);
        reach::analyze(&ws, &graph, config)
    } else {
        BTreeMap::new()
    };

    let mut diagnostics = Vec::new();
    for (path, source) in sources {
        let file_extra = extra.get(path).map(Vec::as_slice).unwrap_or(&[]);
        diagnostics.extend(scan_file_with(path, source, config, file_extra));
    }
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str(), a.col).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule.as_str(),
            b.col,
        ))
    });
    diagnostics
}

/// Collect the `.rs` files under `dir` (recursively), as workspace-relative
/// forward-slash paths, sorted for deterministic output.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(root, &p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = p.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

/// Parse the workspace `Cargo.toml`s into a crate-short-name dependency
/// map for the call graph. Package names map onto directory names
/// (`toto-fabric` → `fabric`, `toto` → `core`, the root `toto-suite` →
/// `suite`); only `[dependencies]` edges count — dev-dependencies are
/// invisible to library code, which is all the graph covers. The parse
/// is a line scan: section headers plus `name = …` / `key.workspace =
/// true` / `key = { … }` keys, which is the entire grammar the
/// workspace manifests use.
pub fn workspace_deps(root: &Path) -> BTreeMap<String, Vec<String>> {
    let mut manifests: Vec<(String, PathBuf)> =
        vec![("suite".to_string(), root.join("Cargo.toml"))];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            if let Some(name) = dir.file_name().and_then(|n| n.to_str()) {
                manifests.push((name.to_string(), dir.join("Cargo.toml")));
            }
        }
    }

    // (crate short name, section, line) triples from every manifest.
    let mut parsed: Vec<(String, Vec<(String, String)>)> = Vec::new();
    for (short, path) in &manifests {
        let Ok(text) = fs::read_to_string(path) else {
            continue;
        };
        let mut section = String::new();
        let mut lines = Vec::new();
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = header.trim().to_string();
                continue;
            }
            lines.push((section.clone(), line.to_string()));
        }
        parsed.push((short.clone(), lines));
    }

    // First pass: package name → short name.
    let mut pkg_to_short: BTreeMap<String, String> = BTreeMap::new();
    for (short, lines) in &parsed {
        for (section, line) in lines {
            if section == "package" {
                if let Some(value) = line.strip_prefix("name") {
                    if let Some(name) = value
                        .trim_start()
                        .strip_prefix('=')
                        .map(str::trim)
                        .and_then(|v| v.strip_prefix('"'))
                        .and_then(|v| v.split('"').next())
                    {
                        pkg_to_short.insert(name.to_string(), short.clone());
                    }
                }
            }
        }
    }

    // Second pass: `[dependencies]` keys that are workspace packages.
    let mut deps: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (short, lines) in &parsed {
        for (section, line) in lines {
            if section != "dependencies" {
                continue;
            }
            let Some(key) = line.split('=').next() else {
                continue;
            };
            // `toto-simcore.workspace = true` → key `toto-simcore`.
            let key = key.trim().split('.').next().unwrap_or("").trim();
            if let Some(dep_short) = pkg_to_short.get(key) {
                deps.entry(short.clone())
                    .or_default()
                    .push(dep_short.clone());
            }
        }
    }
    deps
}

/// Lint every Rust source under the workspace root: `crates/*/{src,tests,
/// examples,benches}` plus the root package's `src`, `tests`, and
/// `examples`. `vendor/` and `target/` are never scanned; `config.exclude`
/// prefixes (e.g. the lint fixtures, which contain deliberate violations)
/// are dropped after collection. On top of the per-file rules, the
/// flow-aware pass builds a call graph of the library code (dependency
/// edges read from the `Cargo.toml`s) and runs the D004/T001 analyses.
pub fn scan_workspace(root: &Path, config: &Config) -> std::io::Result<Report> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            for sub in ["src", "tests", "examples", "benches"] {
                collect_rs_files(root, &member.join(sub), &mut files);
            }
        }
    }
    for sub in ["src", "tests", "examples"] {
        collect_rs_files(root, &root.join(sub), &mut files);
    }
    files.sort();
    files.dedup();
    files.retain(|f| {
        !f.starts_with("vendor/")
            && !f.starts_with("target/")
            && !config.exclude.iter().any(|p| rules::path_has_prefix(f, p))
    });

    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        sources.push((rel.clone(), source));
    }
    let deps = workspace_deps(root);
    let diagnostics = analyze_files(&sources, &deps, config);
    Ok(Report {
        diagnostics,
        files_scanned: sources.len(),
    })
}
