//! CLI driver: `cargo run -p toto-lint -- [--root DIR] [--config FILE]
//! [--format human|json] [--timing]`.
//!
//! Exit codes: 0 = clean or warnings only, 1 = error-severity findings
//! or `--timing` budget breach, 2 = configuration or usage error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use toto_fleet::json::Json;
use toto_lint::config::Config;
use toto_lint::{scan_workspace, Report};

enum Format {
    Human,
    Json,
}

fn usage() -> String {
    "usage: toto-lint [--root DIR] [--config FILE] [--format human|json] [--timing]".to_string()
}

/// The gate must stay cheap enough to run on every push: the full
/// workspace — lex, parse, call graph, reachability — in under 5s.
const TIMING_BUDGET_MS: u128 = 5000;

fn run() -> Result<u8, String> {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut timing = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root =
                    Some(PathBuf::from(args.next().ok_or_else(|| {
                        format!("--root needs a value\n{}", usage())
                    })?));
            }
            "--config" => {
                config_path =
                    Some(PathBuf::from(args.next().ok_or_else(|| {
                        format!("--config needs a value\n{}", usage())
                    })?));
            }
            "--format" => {
                format = match args
                    .next()
                    .ok_or_else(|| format!("--format needs a value\n{}", usage()))?
                    .as_str()
                {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other:?}\n{}", usage())),
                };
            }
            "--timing" => timing = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }

    // Default root: the workspace that contains this crate.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });
    if !root.is_dir() {
        return Err(format!("root {} is not a directory", root.display()));
    }
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));

    let config = if config_path.is_file() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("{}: {e}", config_path.display()))?;
        Config::from_toml_str(&text).map_err(|e| format!("{}: {e}", config_path.display()))?
    } else {
        Config::default()
    };

    let started = Instant::now();
    let report = scan_workspace(&root, &config).map_err(|e| format!("scan failed: {e}"))?;
    let elapsed_ms = started.elapsed().as_millis();

    match format {
        Format::Human => print_human(&report),
        Format::Json => println!("{}", render_json(&report)),
    }

    let mut failed = report.errors() > 0;
    if timing {
        eprintln!(
            "toto-lint: analysis took {elapsed_ms}ms (budget {TIMING_BUDGET_MS}ms, \
             {} file(s))",
            report.files_scanned
        );
        if elapsed_ms > TIMING_BUDGET_MS {
            eprintln!("toto-lint: TIMING BUDGET EXCEEDED — the lint gate must stay cheap");
            failed = true;
        }
    }
    Ok(if failed { 1 } else { 0 })
}

fn print_human(report: &Report) {
    for d in &report.diagnostics {
        println!(
            "{}:{}:{}: {}[{}]: {}",
            d.file,
            d.line,
            d.col,
            d.level.name(),
            d.rule,
            d.message
        );
        if !d.snippet.is_empty() {
            println!("    {}", d.snippet);
        }
    }
    println!(
        "toto-lint: {} file(s) scanned, {} error(s), {} warning(s)",
        report.files_scanned,
        report.errors(),
        report.warnings()
    );
}

fn render_json(report: &Report) -> String {
    let diagnostics: Vec<Json> = report
        .diagnostics
        .iter()
        .map(|d| {
            Json::obj(vec![
                ("rule", Json::Str(d.rule.clone())),
                ("severity", Json::Str(d.level.name().to_string())),
                ("file", Json::Str(d.file.clone())),
                ("line", Json::Uint(d.line as u64)),
                ("col", Json::Uint(d.col as u64)),
                ("message", Json::Str(d.message.clone())),
                ("snippet", Json::Str(d.snippet.clone())),
            ])
        })
        .collect();
    // schema_version history: 1 = per-file rules only (keyed `version`);
    // 2 = flow-aware analysis (D004–D006, T001), diagnostics globally
    // sorted by (file, line, rule, col).
    Json::obj(vec![
        ("tool", Json::Str("toto-lint".to_string())),
        ("schema_version", Json::Uint(2)),
        ("files_scanned", Json::Uint(report.files_scanned as u64)),
        ("errors", Json::Uint(report.errors() as u64)),
        ("warnings", Json::Uint(report.warnings() as u64)),
        ("diagnostics", Json::Arr(diagnostics)),
    ])
    .render()
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("toto-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
