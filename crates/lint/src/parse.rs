//! A lightweight item/function parser on top of the lexer.
//!
//! The flow-aware rules (D004 reachability, D005 seed discipline, T001
//! trace coverage) and the refactored R002 need more structure than a
//! flat token stream: which tokens form a function body, what the
//! function is called, which `impl` block it sits in, and whether it is
//! `pub`. This module recovers exactly that — and nothing more — from
//! the token stream. It is *not* a Rust parser: generics, where-clauses
//! and attribute grammars are skipped over lexically, which is accurate
//! enough for name-resolution-based call-graph construction and keeps
//! the linter dependency-free.

use crate::lexer::{lex, Lexed, Token, TokenKind};

/// One `fn` item recovered from a file.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// The function name (raw identifiers keep their `r#` prefix).
    pub name: String,
    /// Token index of the name identifier (for spans).
    pub name_tok: usize,
    /// Any `pub` visibility (`pub`, `pub(crate)`, `pub(super)`, …).
    pub is_pub: bool,
    /// The self type of the enclosing `impl` block, if the fn is a method
    /// or associated function (`impl Plb { fn balance … }` → `Plb`).
    pub impl_type: Option<String>,
    /// Token range of the parameter list, *inside* the parentheses
    /// (half-open; empty for `fn f()`).
    pub params: (usize, usize),
    /// Token range of the body including both braces (half-open past the
    /// closing brace). `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// True when the fn sits inside a `#[cfg(test)]`-guarded region.
    pub in_test: bool,
}

impl FnDef {
    /// Token range of the body *contents* (between the braces).
    pub fn body_inner(&self) -> Option<(usize, usize)> {
        self.body.map(|(s, e)| (s + 1, e.saturating_sub(1)))
    }
}

/// A fully parsed file: the token stream plus the fn table.
#[derive(Debug)]
pub struct ParsedFile {
    pub lexed: Lexed,
    /// Per-token flag: inside a `#[cfg(test)]`-guarded item.
    pub in_test: Vec<bool>,
    /// All `fn` items, in source order.
    pub fns: Vec<FnDef>,
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == s
}

/// Flag every token index inside a `#[cfg(test)]`-guarded item (the
/// attribute itself included). Detection is lexical: the attribute is
/// matched token-for-token and the guarded item extends to the end of
/// its first brace-balanced block — which covers the `mod tests { … }`
/// idiom this workspace uses everywhere.
pub fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        let is_cfg_test = i + 6 < tokens.len()
            && is_punct(&tokens[i], "#")
            && is_punct(&tokens[i + 1], "[")
            && is_ident(&tokens[i + 2], "cfg")
            && is_punct(&tokens[i + 3], "(")
            && is_ident(&tokens[i + 4], "test")
            && is_punct(&tokens[i + 5], ")")
            && is_punct(&tokens[i + 6], "]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        while j < tokens.len() && !is_punct(&tokens[j], "{") {
            j += 1;
        }
        let mut depth = 0usize;
        while j < tokens.len() {
            if is_punct(&tokens[j], "{") {
                depth += 1;
            } else if is_punct(&tokens[j], "}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let end = j.min(tokens.len().saturating_sub(1));
        for flag in flags.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    flags
}

/// Skip a balanced `(…)`/`{…}`/`[…]` group starting at `i` (which must
/// point at the opener). Returns the index one past the closer.
fn skip_balanced(tokens: &[Token], i: usize, open: &str, close: &str) -> usize {
    debug_assert!(is_punct(&tokens[i], open));
    let mut depth = 0usize;
    let mut j = i;
    while j < tokens.len() {
        if is_punct(&tokens[j], open) {
            depth += 1;
        } else if is_punct(&tokens[j], close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Skip a balanced generic argument list `<…>` starting at `i`. Angle
/// brackets are not real brackets in Rust, but inside an `impl` header or
/// between a fn name and its parameter list a `<` always opens generics.
fn skip_generics(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < tokens.len() {
        if is_punct(&tokens[j], "<") {
            depth += 1;
        } else if is_punct(&tokens[j], ">") {
            // `->` inside generic bounds (`Fn() -> T`): the `>` closes
            // nothing when preceded by `-`.
            let arrow = j > 0 && is_punct(&tokens[j - 1], "-");
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Extract the self-type name from an `impl` header starting at the
/// `impl` token: `impl<T> Foo<T> { … }` → `Foo`; `impl Trait for Bar { …
/// }` → `Bar`. Returns `(type_name, index_of_opening_brace)`.
fn parse_impl_header(tokens: &[Token], impl_idx: usize) -> (Option<String>, usize) {
    let mut j = impl_idx + 1;
    if j < tokens.len() && is_punct(&tokens[j], "<") {
        j = skip_generics(tokens, j);
    }
    let mut self_type: Option<String> = None;
    let mut after_for = false;
    while j < tokens.len() && !is_punct(&tokens[j], "{") && !is_punct(&tokens[j], ";") {
        let t = &tokens[j];
        if is_ident(t, "for") {
            after_for = true;
            self_type = None;
            j += 1;
            continue;
        }
        if is_ident(t, "where") {
            break;
        }
        if t.kind == TokenKind::Ident && self_type.is_none() {
            // First path segment after `impl` (or after `for`): walk to the
            // *last* segment of the path — `impl fmt::Display for a::B`
            // names `B`.
            let mut name = t.text.clone();
            let mut k = j + 1;
            while k + 1 < tokens.len()
                && is_punct(&tokens[k], ":")
                && is_punct(&tokens[k + 1], ":")
                && k + 2 < tokens.len()
                && tokens[k + 2].kind == TokenKind::Ident
            {
                name = tokens[k + 2].text.clone();
                k += 3;
            }
            if k < tokens.len() && is_punct(&tokens[k], "<") {
                k = skip_generics(tokens, k);
            }
            self_type = Some(name);
            j = k;
            // Keep scanning: a later `for` re-targets the self type.
            if after_for {
                break;
            }
            continue;
        }
        j += 1;
    }
    while j < tokens.len() && !is_punct(&tokens[j], "{") && !is_punct(&tokens[j], ";") {
        j += 1;
    }
    (self_type, j)
}

/// True if an `impl` token opens an impl *item*, as opposed to an
/// `impl Trait` type in return (`-> impl Iterator`) or argument
/// (`x: impl Ord`) position. Item-position `impl` follows the end of a
/// previous item or attribute, or an `unsafe` qualifier.
fn impl_is_item_position(tokens: &[Token], i: usize) -> bool {
    match i.checked_sub(1).map(|p| &tokens[p]) {
        None => true,
        Some(prev) => {
            matches!(prev.text.as_str(), "{" | "}" | ";" | "]") && prev.kind == TokenKind::Punct
                || is_ident(prev, "unsafe")
        }
    }
}

/// True if a `fn` token at `i` is a function *definition* keyword and not
/// part of a fn-pointer/`Fn` trait type (`fn(u32) -> u32`, `impl Fn()`).
fn is_fn_item(tokens: &[Token], i: usize) -> bool {
    tokens
        .get(i + 1)
        .is_some_and(|t| t.kind == TokenKind::Ident)
}

/// Scan backwards from the `fn` keyword over its modifiers (`const`,
/// `async`, `unsafe`, `extern "C"`, visibility) looking for `pub`.
fn fn_is_pub(tokens: &[Token], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if is_ident(t, "pub") {
            return true;
        }
        let modifier = matches!(t.text.as_str(), "const" | "async" | "unsafe" | "extern")
            || t.kind == TokenKind::Str // the ABI string of `extern "C"`
            || is_punct(t, ")")
            || is_punct(t, "(")
            || matches!(t.text.as_str(), "crate" | "super" | "self" | "in");
        if !modifier {
            return false;
        }
    }
    false
}

/// Parse one file into its fn table.
pub fn parse_file(source: &str) -> ParsedFile {
    let lexed = lex(source);
    let in_test = mark_test_regions(&lexed.tokens);
    let tokens = &lexed.tokens;
    let mut fns = Vec::new();

    // Impl-block scope stack: (brace_depth_of_block, self_type).
    let mut impl_stack: Vec<(usize, Option<String>)> = Vec::new();
    let mut depth = 0usize;
    // Brace index the next `{` belongs to an impl header, if set.
    let mut pending_impl: Option<Option<String>> = None;

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if is_punct(t, "{") {
            depth += 1;
            if let Some(ty) = pending_impl.take() {
                impl_stack.push((depth, ty));
            }
            i += 1;
            continue;
        }
        if is_punct(t, "}") {
            if impl_stack.last().is_some_and(|(d, _)| *d == depth) {
                impl_stack.pop();
            }
            depth = depth.saturating_sub(1);
            i += 1;
            continue;
        }
        if is_ident(t, "impl") && impl_is_item_position(tokens, i) {
            let (ty, brace) = parse_impl_header(tokens, i);
            // A `;` header (`impl Trait for Type;`? not real Rust, but be
            // safe) opens no scope.
            if brace < tokens.len() && is_punct(&tokens[brace], "{") {
                pending_impl = Some(ty);
            }
            i = brace;
            continue;
        }
        if is_ident(t, "fn") && is_fn_item(tokens, i) {
            let name_tok = i + 1;
            let name = tokens[name_tok].text.clone();
            let mut j = name_tok + 1;
            if j < tokens.len() && is_punct(&tokens[j], "<") {
                j = skip_generics(tokens, j);
            }
            if j >= tokens.len() || !is_punct(&tokens[j], "(") {
                i = name_tok + 1;
                continue;
            }
            let params_open = j;
            let params_close = skip_balanced(tokens, params_open, "(", ")");
            // Find the body `{` or a `;` (trait declaration). The return
            // type and where clause contain no braces.
            let mut b = params_close;
            while b < tokens.len() && !is_punct(&tokens[b], "{") && !is_punct(&tokens[b], ";") {
                b += 1;
            }
            let body = if b < tokens.len() && is_punct(&tokens[b], "{") {
                Some((b, skip_balanced(tokens, b, "{", "}")))
            } else {
                None
            };
            let impl_type = impl_stack
                .last()
                .filter(|(d, _)| *d == depth)
                .and_then(|(_, ty)| ty.clone());
            fns.push(FnDef {
                name,
                name_tok,
                is_pub: fn_is_pub(tokens, i),
                impl_type,
                params: (params_open + 1, params_close.saturating_sub(1)),
                body,
                in_test: in_test[name_tok],
            });
            // Continue *inside* the signature/body so nested items are
            // still discovered; brace bookkeeping above handles depth.
            i = params_close;
            continue;
        }
        i += 1;
    }

    ParsedFile {
        lexed,
        in_test,
        fns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(src: &str) -> Vec<(String, Option<String>, bool)> {
        parse_file(src)
            .fns
            .into_iter()
            .map(|f| (f.name, f.impl_type, f.is_pub))
            .collect()
    }

    #[test]
    fn free_and_method_fns() {
        let got = names(
            "pub fn free(x: u32) {}\n\
             impl Plb { pub fn balance(&mut self) {} fn helper() {} }\n\
             impl fmt::Display for Node { fn fmt(&self) -> R { ok() } }",
        );
        assert_eq!(
            got,
            vec![
                ("free".into(), None, true),
                ("balance".into(), Some("Plb".into()), true),
                ("helper".into(), Some("Plb".into()), false),
                ("fmt".into(), Some("Node".into()), false),
            ]
        );
    }

    #[test]
    fn generics_and_visibility_forms() {
        let got = names(
            "pub(crate) fn g<T: Ord>(x: T) -> Vec<T> { v }\n\
             impl<K: Ord, V> Store<K, V> { pub const fn len(&self) -> usize { 0 } }",
        );
        assert_eq!(got[0], ("g".into(), None, true));
        assert_eq!(got[1], ("len".into(), Some("Store".into()), true));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let parsed = parse_file("pub struct S { callback: fn(u32) -> u32 }");
        assert!(parsed.fns.is_empty());
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let parsed = parse_file("trait T { fn required(&self); fn provided(&self) {} }");
        assert_eq!(parsed.fns.len(), 2);
        assert!(parsed.fns[0].body.is_none());
        assert!(parsed.fns[1].body.is_some());
    }

    #[test]
    fn nested_fns_are_discovered_and_bodies_span_correctly() {
        let src = "fn outer() { let x = 1; fn inner() { helper(); } inner(); }";
        let parsed = parse_file(src);
        assert_eq!(parsed.fns.len(), 2);
        let outer = &parsed.fns[0];
        let (s, e) = outer.body.expect("outer has a body");
        let texts: Vec<&str> = parsed.lexed.tokens[s..e]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(texts.contains(&"inner"));
        assert_eq!(texts.first(), Some(&"{"));
        assert_eq!(texts.last(), Some(&"}"));
    }

    #[test]
    fn test_regions_mark_fns() {
        let src = "fn lib_fn() {}\n#[cfg(test)]\nmod tests { fn test_fn() {} }";
        let parsed = parse_file(src);
        assert!(!parsed.fns[0].in_test);
        assert!(parsed.fns[1].in_test);
    }

    #[test]
    fn return_position_impl_trait_opens_no_scope() {
        let got = names(
            "fn make(x: impl Ord) -> impl Iterator<Item = u32> { it() }\n\
             impl Real { fn m(&self) {} }",
        );
        assert_eq!(got[0], ("make".into(), None, false));
        assert_eq!(got[1], ("m".into(), Some("Real".into()), false));
    }

    #[test]
    fn impl_for_generic_path_types() {
        let got = names("impl std::fmt::Debug for crate::plb::Plb<'_> { fn fmt(&self) {} }");
        assert_eq!(got[0].1, Some("Plb".into()));
    }
}
