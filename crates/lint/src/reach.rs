//! Flow-aware analyses over the workspace call graph.
//!
//! **D004 — sim-path reachability.** The per-file rules D001–D003 have
//! deliberate blind spots: D001 applies only to sim-path crates, D002
//! has allowed paths (the fleet executor, benches), and any site can be
//! inline-allowed. A nondeterminism source in a helper crate that is
//! *called from* a sim path escapes all of them. D004 closes the gap:
//! it seeds from every `pub fn` in sim-path library code, walks the
//! conservative call graph, and reports any reachable function that
//! lexically touches wall-clock, ambient RNG, or std hash collections —
//! printing the full call chain (`core::run → fleet::helper →
//! Instant::now`). A sink the base rules already actively report is
//! skipped, so nothing is double-flagged.
//!
//! **T001 — trace coverage.** Every `pub` mutator matched by the R002
//! path set must be visible to `trace_tool diff`: its body must emit a
//! `toto_trace::` event, or transitively call a function that does
//! (e.g. `balance → execute_move → toto_trace::emit`). Mutators that
//! ship without trace coverage are invisible to replay diffing.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::{CallGraph, Workspace};
use crate::config::{Config, Level};
use crate::lexer::{Token, TokenKind};
use crate::parse::ParsedFile;
use crate::rules::{base_findings, path_has_prefix, Finding};

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == s
}

fn is_path_sep(tokens: &[Token], i: usize) -> bool {
    i + 1 < tokens.len() && is_punct(&tokens[i], ":") && is_punct(&tokens[i + 1], ":")
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SinkKind {
    WallClock,
    Rng,
    Hash,
}

struct Sink {
    kind: SinkKind,
    line: usize,
    col: usize,
    /// Display form for the chain tail, e.g. `Instant::now()`.
    desc: String,
    /// The base rule that would report this site when active.
    base_rule: &'static str,
}

/// Idents the file imports from `std::collections` (`HashMap`,
/// `HashSet`), so a bare `HashMap::new()` in a body can be attributed
/// to std.
fn std_hash_imports(tokens: &[Token]) -> BTreeSet<&str> {
    let mut out = BTreeSet::new();
    for i in 0..tokens.len() {
        if is_ident(&tokens[i], "std")
            && is_path_sep(tokens, i + 1)
            && i + 3 < tokens.len()
            && is_ident(&tokens[i + 3], "collections")
            && is_path_sep(tokens, i + 4)
        {
            // Direct target or use-group.
            let after = i + 6;
            if after >= tokens.len() {
                continue;
            }
            if tokens[after].kind == TokenKind::Ident {
                if matches!(tokens[after].text.as_str(), "HashMap" | "HashSet") {
                    out.insert(tokens[after].text.as_str());
                }
            } else if is_punct(&tokens[after], "{") {
                let mut depth = 1usize;
                let mut j = after + 1;
                while j < tokens.len() && depth > 0 {
                    if is_punct(&tokens[j], "{") {
                        depth += 1;
                    } else if is_punct(&tokens[j], "}") {
                        depth -= 1;
                    } else if tokens[j].kind == TokenKind::Ident
                        && matches!(tokens[j].text.as_str(), "HashMap" | "HashSet")
                    {
                        out.insert(tokens[j].text.as_str());
                    }
                    j += 1;
                }
            }
        }
    }
    out
}

/// Lexical nondeterminism sinks inside one fn body.
fn sinks_in_body(
    tokens: &[Token],
    range: (usize, usize),
    hash_imports: &BTreeSet<&str>,
) -> Vec<Sink> {
    let (start, end) = range;
    let mut out = Vec::new();
    for i in start..end.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime"
                if is_path_sep(tokens, i + 1)
                    && i + 3 < tokens.len()
                    && is_ident(&tokens[i + 3], "now") =>
            {
                out.push(Sink {
                    kind: SinkKind::WallClock,
                    line: t.line,
                    col: t.col,
                    desc: format!("{}::now()", t.text),
                    base_rule: "D002",
                });
            }
            "chrono" => out.push(Sink {
                kind: SinkKind::WallClock,
                line: t.line,
                col: t.col,
                desc: "chrono".to_string(),
                base_rule: "D002",
            }),
            "thread_rng" | "from_entropy" => out.push(Sink {
                kind: SinkKind::Rng,
                line: t.line,
                col: t.col,
                desc: format!("{}()", t.text),
                base_rule: "D003",
            }),
            "rand"
                if is_path_sep(tokens, i + 1)
                    && i + 3 < tokens.len()
                    && is_ident(&tokens[i + 3], "random") =>
            {
                out.push(Sink {
                    kind: SinkKind::Rng,
                    line: t.line,
                    col: t.col,
                    desc: "rand::random()".to_string(),
                    base_rule: "D003",
                });
            }
            name @ ("HashMap" | "HashSet")
                if hash_imports.contains(name)
                    || (i >= 3
                        && is_path_sep(tokens, i - 2)
                        && is_ident(&tokens[i - 3], "collections")) =>
            {
                out.push(Sink {
                    kind: SinkKind::Hash,
                    line: t.line,
                    col: t.col,
                    desc: format!("std::collections::{name}"),
                    base_rule: "D001",
                });
            }
            _ => {}
        }
    }
    out
}

/// Base-rule findings that survive file-level `[[allow]]` entries and
/// inline suppressions — i.e. sites the base rules *actively report*.
/// D004 skips those; it only owns sites that escaped.
fn covered_sites(
    path: &str,
    parsed: &ParsedFile,
    config: &Config,
) -> BTreeSet<(&'static str, usize, usize)> {
    let mut findings = base_findings(path, &parsed.lexed.tokens, config);
    findings.retain(|f| {
        !config
            .allow
            .iter()
            .any(|a| a.rule == f.rule && path_has_prefix(path, &a.path))
    });
    findings.retain(|f| {
        !parsed.lexed.allows.iter().any(|a| {
            (a.line == f.line || a.line + 1 == f.line) && a.rules.iter().any(|r| r == f.rule)
        })
    });
    findings
        .into_iter()
        .map(|f| (f.rule, f.line, f.col))
        .collect()
}

/// `&mut <Type>` with `Type` in the configured state-type set, anywhere
/// in a parameter-list token range.
fn takes_mut_state(tokens: &[Token], params: (usize, usize), types: &[String]) -> bool {
    let (s, e) = params;
    (s..e.min(tokens.len()).saturating_sub(2)).any(|p| {
        is_punct(&tokens[p], "&")
            && is_ident(&tokens[p + 1], "mut")
            && tokens
                .get(p + 2)
                .is_some_and(|t| t.kind == TokenKind::Ident && types.contains(&t.text))
    })
}

/// Run the flow-aware analyses; returns extra findings keyed by
/// workspace-relative path, ready to merge into the per-file scan.
pub fn analyze(
    ws: &Workspace,
    graph: &CallGraph,
    config: &Config,
) -> BTreeMap<String, Vec<Finding>> {
    let mut out: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    let n = ws.fns.len();

    if config.level("D004") != Level::Off {
        let covered: Vec<BTreeSet<(&'static str, usize, usize)>> = ws
            .files
            .iter()
            .map(|(path, parsed, _)| covered_sites(path, parsed, config))
            .collect();
        let hash_imports: Vec<BTreeSet<&str>> = ws
            .files
            .iter()
            .map(|(_, parsed, _)| std_hash_imports(&parsed.lexed.tokens))
            .collect();

        // BFS from every sim-path pub entry point, recording parents so
        // a full chain can be printed at each sink.
        let mut parent: Vec<usize> = vec![usize::MAX; n];
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        for id in 0..n {
            let def = ws.fn_def(id);
            let path = ws.fn_file(id);
            let sim = config.sim_path.iter().any(|p| path_has_prefix(path, p));
            if sim && def.is_pub && !def.in_test && def.body.is_some() {
                visited[id] = true;
                parent[id] = id;
                queue.push_back(id);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &c in &graph.edges[f] {
                if !visited[c] && !ws.fn_def(c).in_test {
                    visited[c] = true;
                    parent[c] = f;
                    queue.push_back(c);
                }
            }
        }

        for id in 0..n {
            if !visited[id] {
                continue;
            }
            let def = ws.fn_def(id);
            let Some(body) = def.body_inner() else {
                continue;
            };
            let fi = ws.fns[id].0;
            for sink in sinks_in_body(ws.fn_tokens(id), body, &hash_imports[fi]) {
                let escaped = match sink.kind {
                    // D001 flags the import, not the use site: the sink
                    // escaped only if the file has no active D001 report.
                    SinkKind::Hash => !covered[fi].iter().any(|(r, _, _)| *r == "D001"),
                    _ => !covered[fi].contains(&(sink.base_rule, sink.line, sink.col)),
                };
                if !escaped {
                    continue;
                }
                let mut chain = vec![id];
                while parent[*chain.last().unwrap()] != *chain.last().unwrap() {
                    chain.push(parent[*chain.last().unwrap()]);
                }
                chain.reverse();
                let rendered: Vec<String> = chain.iter().map(|&f| ws.fn_qualified(f)).collect();
                let (what, advice) = match sink.kind {
                    SinkKind::WallClock => (
                        "wall-clock read",
                        "sim-reachable code must read SimTime only",
                    ),
                    SinkKind::Rng => (
                        "ambient RNG",
                        "all randomness must derive from toto_simcore::rng seed trees",
                    ),
                    SinkKind::Hash => (
                        "randomized-order hash collection",
                        "use BTreeMap/BTreeSet or toto_simcore::collections::DetHashMap",
                    ),
                };
                out.entry(ws.fn_file(id).to_string())
                    .or_default()
                    .push(Finding {
                        rule: "D004",
                        line: sink.line,
                        col: sink.col,
                        message: format!(
                            "{what} reachable from sim path: {} → {}; {advice}",
                            rendered.join(" → "),
                            sink.desc
                        ),
                    });
            }
        }
    }

    if config.level("T001") != Level::Off {
        // Fns whose body lexically mentions `toto_trace` emit directly;
        // backward fixpoint marks everything that reaches an emitter.
        let mut emits = vec![false; n];
        for (id, e) in emits.iter_mut().enumerate() {
            if let Some((s, en)) = ws.fn_def(id).body_inner() {
                let tokens = ws.fn_tokens(id);
                *e = (s..en.min(tokens.len())).any(|i| is_ident(&tokens[i], "toto_trace"));
            }
        }
        loop {
            let mut changed = false;
            for id in 0..n {
                if !emits[id] && graph.edges[id].iter().any(|&c| emits[c]) {
                    emits[id] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for id in 0..n {
            let def = ws.fn_def(id);
            let path = ws.fn_file(id);
            if !def.is_pub
                || def.in_test
                || def.body.is_none()
                || emits[id]
                || !config.r002_paths.iter().any(|p| path_has_prefix(path, p))
                || !takes_mut_state(ws.fn_tokens(id), def.params, &config.r002_mut_state_types)
            {
                continue;
            }
            let name_tok = &ws.fn_tokens(id)[def.name_tok];
            let types = config.r002_mut_state_types.join("/");
            out.entry(path.to_string()).or_default().push(Finding {
                rule: "T001",
                line: name_tok.line,
                col: name_tok.col,
                message: format!(
                    "pub fn {} mutates {types} state but neither emits a toto_trace:: \
                     event nor calls anything that does; untraced mutators are invisible \
                     to trace_tool diff",
                    def.name
                ),
            });
        }
    }

    for findings in out.values_mut() {
        findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn run(files: &[(&str, &str)], deps: &[(&str, &[&str])]) -> BTreeMap<String, Vec<Finding>> {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let deps: BTreeMap<String, Vec<String>> = deps
            .iter()
            .map(|(f, ts)| {
                (
                    f.to_string(),
                    ts.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
                )
            })
            .collect();
        let mut config = Config::default();
        config.sim_path = vec!["crates/simcore".into(), "crates/core".into()];
        // Make `fleet` a D002-allowed zone so its wall-clock sites escape
        // the base rule — the exact scenario D004 exists to cover.
        config.d002_allowed_paths = vec!["crates/fleet".into()];
        let ws = Workspace::build(&sources, &deps);
        let graph = CallGraph::build(&ws);
        analyze(&ws, &graph, &config)
    }

    #[test]
    fn d004_reports_cross_crate_chain() {
        let out = run(
            &[
                ("crates/core/src/lib.rs", "pub fn run() { helper_tick(); }"),
                (
                    "crates/fleet/src/lib.rs",
                    "pub fn helper_tick() { let _ = Instant::now(); }",
                ),
            ],
            &[("core", &["fleet"])],
        );
        let findings = &out["crates/fleet/src/lib.rs"];
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "D004");
        assert!(
            findings[0]
                .message
                .contains("core::run → fleet::helper_tick → Instant::now()"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn d004_skips_sites_the_base_rules_already_report() {
        // Instant::now in a sim-path file is an active D002 error — D004
        // must not double-report it.
        let out = run(
            &[(
                "crates/core/src/lib.rs",
                "pub fn run() { let _ = Instant::now(); }",
            )],
            &[],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn d004_owns_inline_allowed_base_sites() {
        // An inline allow silences D002 but the site is still reachable
        // nondeterminism: D004 takes over.
        let out = run(
            &[(
                "crates/core/src/lib.rs",
                "pub fn run() {\n    // toto-lint: allow(D002)\n    let _ = Instant::now();\n}",
            )],
            &[],
        );
        assert_eq!(out["crates/core/src/lib.rs"].len(), 1);
    }

    #[test]
    fn d004_ignores_unreachable_sinks() {
        let out = run(
            &[
                ("crates/core/src/lib.rs", "pub fn run() {}"),
                (
                    "crates/fleet/src/lib.rs",
                    "pub fn never_called() { let _ = Instant::now(); }",
                ),
            ],
            &[("core", &["fleet"])],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn t001_flags_untraced_mutator_and_accepts_transitive_emit() {
        let out = run(
            &[(
                "crates/fabric/src/plb.rs",
                "pub fn silent(c: &mut Cluster) { c.bump(); }\n\
                 pub fn traced(c: &mut Cluster) { record(c); }\n\
                 fn record(_c: &mut Cluster) { toto_trace::emit(); }\n",
            )],
            &[],
        );
        let findings = &out["crates/fabric/src/plb.rs"];
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "T001");
        assert!(findings[0].message.contains("silent"));
    }
}
