//! The rule engine: token-sequence matchers for D001–D003, R001–R002,
//! the parse-layer rules D005–D006, plus the suppression-policing meta
//! rules L001/L002. The flow-aware rules D004 and T001 are produced by
//! `reach` over the workspace call graph and merged in through
//! [`scan_file_with`].
//!
//! | Rule | Contract it enforces |
//! |------|----------------------|
//! | D001 | No `std::collections::HashMap`/`HashSet` in sim-path crates — iteration order is randomized per process, so any map iteration that reaches an artifact breaks byte-identical reproduction. Use `BTreeMap`/`BTreeSet` or `toto_simcore::collections::DetHashMap`. |
//! | D002 | No wall-clock (`Instant::now`, `SystemTime`, `chrono`) outside the fleet executor and bench harnesses — simulation code must read `SimTime` only. |
//! | D003 | No ambient RNG (`thread_rng`, `rand::random`, `from_entropy`) — every stream must derive from `toto_simcore::rng` seeds. |
//! | D004 | No wall-clock / ambient RNG / std hash collection *transitively reachable* from a sim-path `pub fn`, even through crates the per-file rules exempt (see `reach`). |
//! | D005 | No duplicate string-literal SeedTree child labels within one function body — `.child("x", 0)` twice yields correlated streams. |
//! | D006 | No `==`/`!=` against float literals and no `partial_cmp` in sim-path library code — use `total_cmp` or an explicit epsilon. |
//! | R001 | No `.unwrap()` / `.expect("…")` in non-test library code of sim-path crates; vetted invariant expects are exempted via `lint.toml` `[[allow]]` entries. |
//! | R002 | Every `pub fn` in the configured files that takes `&mut` cluster state must contain a `debug_assert!`-based invariant check. |
//! | T001 | Every `pub fn` mutator matched by the R002 path set must emit (or transitively reach) a `toto_trace::` event (see `reach`). |
//! | L001 | A suppression comment naming an unknown rule is an error (a typo would otherwise silently disable nothing). |
//! | L002 | A suppression comment that suppresses nothing is reported (stale allows accumulate otherwise). |

use crate::config::{Config, Level, KNOWN_RULES};
use crate::lexer::{Token, TokenKind};
use crate::parse::parse_file;
use crate::Diagnostic;

/// True if `path` equals `prefix` or sits below it.
pub fn path_has_prefix(path: &str, prefix: &str) -> bool {
    match path.strip_prefix(prefix) {
        Some(rest) => rest.is_empty() || rest.starts_with('/') || prefix.ends_with('/'),
        None => false,
    }
}

/// True for paths under a `tests/`, `examples/`, or `benches/` directory.
pub fn is_test_file(path: &str) -> bool {
    ["tests", "examples", "benches"]
        .iter()
        .any(|d| path.starts_with(&format!("{d}/")) || path.contains(&format!("/{d}/")))
}

/// True for library source: under `src/`, excluding binaries and build
/// scripts. This is the file set the call graph is built over.
pub fn is_lib_code(path: &str) -> bool {
    !is_test_file(path)
        && (path.starts_with("src/") || path.contains("/src/"))
        && !path.contains("/bin/")
        && !path.ends_with("/main.rs")
        && !path.ends_with("build.rs")
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == s
}

/// `tokens[i..]` starts with `::`.
fn is_path_sep(tokens: &[Token], i: usize) -> bool {
    i + 1 < tokens.len() && is_punct(&tokens[i], ":") && is_punct(&tokens[i + 1], ":")
}

/// A raw finding before severity/suppression processing.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: &'static str,
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl Finding {
    fn at(rule: &'static str, t: &Token, message: String) -> Finding {
        Finding {
            rule,
            line: t.line,
            col: t.col,
            message,
        }
    }
}

/// After a `<head> :: <seg> ::` path prefix, report every target ident —
/// either directly (`…::HashMap`) or inside a use-group (`…::{…}`).
fn flag_path_targets(
    tokens: &[Token],
    after: usize,
    targets: &[&str],
    mut report: impl FnMut(&Token),
) {
    if after >= tokens.len() {
        return;
    }
    if tokens[after].kind == TokenKind::Ident {
        if targets.contains(&tokens[after].text.as_str()) {
            report(&tokens[after]);
        }
    } else if is_punct(&tokens[after], "{") {
        let mut depth = 1usize;
        let mut j = after + 1;
        while j < tokens.len() && depth > 0 {
            if is_punct(&tokens[j], "{") {
                depth += 1;
            } else if is_punct(&tokens[j], "}") {
                depth -= 1;
            } else if tokens[j].kind == TokenKind::Ident
                && targets.contains(&tokens[j].text.as_str())
            {
                report(&tokens[j]);
            }
            j += 1;
        }
    }
}

fn rule_d001(tokens: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if is_ident(&tokens[i], "std")
            && is_path_sep(tokens, i + 1)
            && i + 3 < tokens.len()
            && is_ident(&tokens[i + 3], "collections")
            && is_path_sep(tokens, i + 4)
        {
            flag_path_targets(tokens, i + 6, &["HashMap", "HashSet"], |t| {
                findings.push(Finding::at(
                    "D001",
                    t,
                    format!(
                        "std::collections::{} iterates in a process-randomized order; \
                         use BTreeMap/BTreeSet or toto_simcore::collections::Det{}",
                        t.text, t.text
                    ),
                ));
            });
        }
    }
}

fn rule_d002(tokens: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        // `Instant::now(…)` / `SystemTime::now(…)` anywhere.
        if (is_ident(t, "Instant") || is_ident(t, "SystemTime"))
            && is_path_sep(tokens, i + 1)
            && i + 3 < tokens.len()
            && is_ident(&tokens[i + 3], "now")
        {
            findings.push(Finding::at(
                "D002",
                t,
                format!(
                    "{}::now() reads the wall clock; simulation code must use SimTime \
                     (wall-clock is allowed only in the fleet executor and benches)",
                    t.text
                ),
            ));
        }
        // `std::time::{Instant, SystemTime}` imports or inline paths.
        if is_ident(t, "std")
            && is_path_sep(tokens, i + 1)
            && i + 3 < tokens.len()
            && is_ident(&tokens[i + 3], "time")
            && is_path_sep(tokens, i + 4)
        {
            flag_path_targets(tokens, i + 6, &["Instant", "SystemTime"], |t| {
                findings.push(Finding::at(
                    "D002",
                    t,
                    format!(
                        "std::time::{} is wall-clock state; simulation code must use SimTime",
                        t.text
                    ),
                ));
            });
        }
        // Any chrono usage.
        if is_ident(t, "chrono") {
            findings.push(Finding::at(
                "D002",
                t,
                "chrono reads wall-clock/calendar state; simulation code must use SimTime"
                    .to_string(),
            ));
        }
    }
}

fn rule_d003(tokens: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if is_ident(t, "thread_rng") || is_ident(t, "from_entropy") {
            findings.push(Finding::at(
                "D003",
                t,
                format!(
                    "{}() draws OS entropy; all randomness must derive from \
                     toto_simcore::rng seed trees",
                    t.text
                ),
            ));
        }
        if is_ident(t, "rand")
            && is_path_sep(tokens, i + 1)
            && i + 3 < tokens.len()
            && is_ident(&tokens[i + 3], "random")
        {
            findings.push(Finding::at(
                "D003",
                t,
                "rand::random() draws from the ambient thread RNG; all randomness \
                 must derive from toto_simcore::rng seed trees"
                    .to_string(),
            ));
        }
    }
}

/// The gated D001/D002/D003 findings for a file, before allow filtering.
/// Shared between the per-file scan and `reach`'s escaped-sink test so
/// the two can never disagree about what the base rules report.
pub fn base_findings(path: &str, tokens: &[Token], config: &Config) -> Vec<Finding> {
    let sim_path = config.sim_path.iter().any(|p| path_has_prefix(path, p));
    let on = |rule: &str| config.level(rule) != Level::Off;
    let mut findings = Vec::new();
    if sim_path && on("D001") {
        rule_d001(tokens, &mut findings);
    }
    if on("D002")
        && !config
            .d002_allowed_paths
            .iter()
            .any(|p| path_has_prefix(path, p))
    {
        rule_d002(tokens, &mut findings);
    }
    if on("D003") {
        rule_d003(tokens, &mut findings);
    }
    findings
}

fn rule_r001(tokens: &[Token], in_test: &[bool], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if in_test[i] || !is_punct(&tokens[i], ".") {
            continue;
        }
        let Some(name) = tokens.get(i + 1) else {
            continue;
        };
        if is_ident(name, "unwrap")
            && tokens.get(i + 2).is_some_and(|t| is_punct(t, "("))
            && tokens.get(i + 3).is_some_and(|t| is_punct(t, ")"))
        {
            findings.push(Finding::at(
                "R001",
                name,
                ".unwrap() panics without context in sim-path library code; return a \
                 typed error or add a vetted [[allow]] entry to lint.toml"
                    .to_string(),
            ));
        }
        // Only `.expect(` with a string-literal argument is Option/Result
        // expect; `self.expect_byte(b'=')`-style parser methods are not.
        if is_ident(name, "expect")
            && tokens.get(i + 2).is_some_and(|t| is_punct(t, "("))
            && tokens.get(i + 3).is_some_and(|t| t.kind == TokenKind::Str)
        {
            findings.push(Finding::at(
                "R001",
                name,
                ".expect(\"…\") panics in sim-path library code; return a typed error \
                 or add a vetted [[allow]] entry to lint.toml"
                    .to_string(),
            ));
        }
    }
}

fn rule_r002(tokens: &[Token], in_test: &[bool], config: &Config, findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < tokens.len() {
        if in_test[i] || !is_ident(&tokens[i], "pub") {
            i += 1;
            continue;
        }
        // Skip an optional visibility argument: `pub(crate)`, `pub(super)`.
        let mut j = i + 1;
        if j < tokens.len() && is_punct(&tokens[j], "(") {
            let mut depth = 1usize;
            j += 1;
            while j < tokens.len() && depth > 0 {
                if is_punct(&tokens[j], "(") {
                    depth += 1;
                } else if is_punct(&tokens[j], ")") {
                    depth -= 1;
                }
                j += 1;
            }
        }
        if j >= tokens.len() || !is_ident(&tokens[j], "fn") {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(j + 1) else {
            break;
        };
        // Find the parameter list (skipping generics on the fn name).
        let mut k = j + 2;
        while k < tokens.len() && !is_punct(&tokens[k], "(") {
            if is_punct(&tokens[k], "{") || is_punct(&tokens[k], ";") {
                break;
            }
            k += 1;
        }
        if k >= tokens.len() || !is_punct(&tokens[k], "(") {
            i = j + 1;
            continue;
        }
        let params_start = k;
        let mut depth = 1usize;
        k += 1;
        while k < tokens.len() && depth > 0 {
            if is_punct(&tokens[k], "(") {
                depth += 1;
            } else if is_punct(&tokens[k], ")") {
                depth -= 1;
            }
            k += 1;
        }
        let params_end = k; // one past the closing `)`
        let takes_mut_state = (params_start..params_end.saturating_sub(1)).any(|p| {
            is_punct(&tokens[p], "&")
                && tokens.get(p + 1).is_some_and(|t| is_ident(t, "mut"))
                && tokens.get(p + 2).is_some_and(|t| {
                    t.kind == TokenKind::Ident && config.r002_mut_state_types.contains(&t.text)
                })
        });
        // Find the body: the next `{` before any `;` (a `;` means a trait
        // method declaration with no body).
        let mut b = params_end;
        while b < tokens.len() && !is_punct(&tokens[b], "{") && !is_punct(&tokens[b], ";") {
            b += 1;
        }
        if !takes_mut_state || b >= tokens.len() || is_punct(&tokens[b], ";") {
            i = params_end;
            continue;
        }
        let body_start = b;
        let mut depth = 0usize;
        let mut has_invariant_check = false;
        while b < tokens.len() {
            if is_punct(&tokens[b], "{") {
                depth += 1;
            } else if is_punct(&tokens[b], "}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if tokens[b].kind == TokenKind::Ident
                && tokens[b].text.starts_with("debug_assert")
            {
                has_invariant_check = true;
            }
            b += 1;
        }
        if !has_invariant_check {
            let types = config.r002_mut_state_types.join("/");
            findings.push(Finding::at(
                "R002",
                name,
                format!(
                    "pub fn {} mutates {types} state but contains no debug_assert!-based \
                     invariant check; add one or a vetted allow",
                    name.text
                ),
            ));
        }
        i = body_start + 1;
    }
}

/// D005: within one function body, two `.child(…)`/`.child_rng(…)` calls
/// whose string-literal label *and* index-argument text are identical
/// derive the same seed — correlated streams. Same label with different
/// indices (`.child("node", i)` in a loop) is the intended idiom and is
/// not flagged.
fn rule_d005(parsed: &crate::parse::ParsedFile, findings: &mut Vec<Finding>) {
    let tokens = &parsed.lexed.tokens;
    for def in &parsed.fns {
        if def.in_test {
            continue;
        }
        let Some((s, e)) = def.body_inner() else {
            continue;
        };
        let mut seen: std::collections::BTreeMap<(String, String), usize> =
            std::collections::BTreeMap::new();
        let mut i = s;
        while i + 3 < e.min(tokens.len()) {
            let is_child = is_punct(&tokens[i], ".")
                && (is_ident(&tokens[i + 1], "child") || is_ident(&tokens[i + 1], "child_rng"))
                && is_punct(&tokens[i + 2], "(")
                && tokens[i + 3].kind == TokenKind::Str;
            if !is_child {
                i += 1;
                continue;
            }
            let label = tokens[i + 3].text.clone();
            // Collect the remaining argument text up to the matching `)`.
            let mut depth = 1usize;
            let mut j = i + 4;
            let mut index_text = String::new();
            while j < tokens.len() && depth > 0 {
                if is_punct(&tokens[j], "(") {
                    depth += 1;
                } else if is_punct(&tokens[j], ")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if !index_text.is_empty() {
                    index_text.push(' ');
                }
                index_text.push_str(&tokens[j].text);
                j += 1;
            }
            let key = (label.clone(), index_text);
            match seen.get(&key) {
                Some(&first_line) => findings.push(Finding::at(
                    "D005",
                    &tokens[i + 3],
                    format!(
                        "duplicate SeedTree child label {label} with identical index \
                         (first derived at line {first_line}); reusing a (label, index) \
                         pair yields correlated random streams — use a distinct label \
                         or index",
                    ),
                )),
                None => {
                    seen.insert(key, tokens[i + 3].line);
                }
            }
            i = j;
        }
    }
}

/// A numeric literal that is a float: has a fractional part, an
/// exponent, or an explicit f32/f64 suffix. Radix-prefixed literals
/// (`0x1E`) are integers regardless of the letters they contain.
fn is_float_literal(text: &str) -> bool {
    let bytes = text.as_bytes();
    if bytes.len() > 1
        && bytes[0] == b'0'
        && matches!(bytes[1], b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
    {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.contains('e')
        || text.contains('E')
}

/// D006: float comparison in sim-path library code. Flags `==`/`!=`
/// where either adjacent operand is a float literal, and any
/// `.partial_cmp(` call. Use `total_cmp` or an explicit epsilon; the
/// deliberate exact-zero guards carry inline allows.
fn rule_d006(tokens: &[Token], in_test: &[bool], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        // `.partial_cmp(` — a call, not the `fn partial_cmp` definition.
        if is_punct(&tokens[i], ".")
            && tokens
                .get(i + 1)
                .is_some_and(|t| is_ident(t, "partial_cmp"))
            && tokens.get(i + 2).is_some_and(|t| is_punct(t, "("))
        {
            findings.push(Finding::at(
                "D006",
                &tokens[i + 1],
                "partial_cmp on floats is None-prone and ordering-fragile in sim code; \
                 use total_cmp for a total order"
                    .to_string(),
            ));
        }
        // `== <float>` / `<float> ==` / `!= <float>` / `<float> !=`.
        let op = if is_punct(&tokens[i], "=") && tokens.get(i + 1).is_some_and(|t| is_punct(t, "="))
        {
            Some("==")
        } else if is_punct(&tokens[i], "!") && tokens.get(i + 1).is_some_and(|t| is_punct(t, "=")) {
            Some("!=")
        } else {
            None
        };
        let Some(op) = op else {
            continue;
        };
        let float_operand = |t: Option<&Token>| {
            t.is_some_and(|t| t.kind == TokenKind::Num && is_float_literal(&t.text))
        };
        if float_operand(i.checked_sub(1).and_then(|p| tokens.get(p)))
            || float_operand(tokens.get(i + 2))
        {
            findings.push(Finding::at(
                "D006",
                &tokens[i],
                format!(
                    "float compared with `{op}`; exact float equality is \
                     representation-fragile in sim code — use total_cmp, an explicit \
                     epsilon, or an inline allow for a deliberate exact guard"
                ),
            ));
        }
    }
}

/// Lint one file's source with pre-computed workspace-level findings
/// (D004/T001 from `reach`) merged in, so file-level `[[allow]]`
/// entries, inline suppressions, and the L001/L002 meta rules apply
/// uniformly to every rule. `path` is the workspace-relative path
/// (forward slashes) used for crate-class decisions and in diagnostics.
pub fn scan_file_with(
    path: &str,
    source: &str,
    config: &Config,
    extra: &[Finding],
) -> Vec<Diagnostic> {
    let parsed = parse_file(source);
    let tokens = &parsed.lexed.tokens;
    let in_test = &parsed.in_test;
    let lines: Vec<&str> = source.lines().collect();

    let sim_path = config.sim_path.iter().any(|p| path_has_prefix(path, p));
    let lib_code = is_lib_code(path);

    let mut findings = base_findings(path, tokens, config);
    let on = |rule: &str| config.level(rule) != Level::Off;
    if sim_path && on("D005") {
        rule_d005(&parsed, &mut findings);
    }
    if sim_path && lib_code && on("D006") {
        rule_d006(tokens, in_test, &mut findings);
    }
    if sim_path && lib_code && on("R001") {
        rule_r001(tokens, in_test, &mut findings);
    }
    if on("R002") && config.r002_paths.iter().any(|p| path_has_prefix(path, p)) {
        rule_r002(tokens, in_test, config, &mut findings);
    }
    findings.extend(extra.iter().cloned());

    // File-level exemptions from lint.toml.
    findings.retain(|f| {
        !config
            .allow
            .iter()
            .any(|a| a.rule == f.rule && path_has_prefix(path, &a.path))
    });

    // Inline suppressions: an allow comment covers diagnostics on its own
    // line and on the line directly below it.
    let mut used = vec![false; parsed.lexed.allows.len()];
    findings.retain(|f| {
        let mut suppressed = false;
        for (idx, a) in parsed.lexed.allows.iter().enumerate() {
            if (a.line == f.line || a.line + 1 == f.line) && a.rules.iter().any(|r| r == f.rule) {
                used[idx] = true;
                suppressed = true;
            }
        }
        !suppressed
    });

    // L001: unknown rule named in a suppression. L002: suppression that
    // suppressed nothing (only reported when all its rules are known —
    // unknown ids are already an L001).
    for (idx, a) in parsed.lexed.allows.iter().enumerate() {
        let unknown: Vec<&String> = a
            .rules
            .iter()
            .filter(|r| !KNOWN_RULES.contains(&r.as_str()))
            .collect();
        if !unknown.is_empty() {
            if config.level("L001") != Level::Off {
                findings.push(Finding {
                    rule: "L001",
                    line: a.line,
                    col: a.col,
                    message: format!(
                        "suppression names unknown rule{} {}; known rules: {}",
                        if unknown.len() > 1 { "s" } else { "" },
                        unknown
                            .iter()
                            .map(|r| format!("{r:?}"))
                            .collect::<Vec<_>>()
                            .join(", "),
                        KNOWN_RULES.join(", ")
                    ),
                });
            }
        } else if !used[idx] && config.level("L002") != Level::Off {
            findings.push(Finding {
                rule: "L002",
                line: a.line,
                col: a.col,
                message: format!(
                    "suppression allow({}) matches no diagnostic; remove it",
                    a.rules.join(", ")
                ),
            });
        }
    }

    let mut diagnostics: Vec<Diagnostic> = findings
        .into_iter()
        .map(|f| Diagnostic {
            rule: f.rule.to_string(),
            level: config.level(f.rule),
            file: path.to_string(),
            line: f.line,
            col: f.col,
            message: f.message,
            snippet: lines
                .get(f.line.saturating_sub(1))
                .map(|l| l.trim_end().to_string())
                .unwrap_or_default(),
        })
        .collect();
    diagnostics
        .sort_by(|a, b| (a.line, a.rule.as_str(), a.col).cmp(&(b.line, b.rule.as_str(), b.col)));
    diagnostics
}

/// Lint one file's source with the per-file rules only (no workspace
/// analysis). `path` is the workspace-relative path.
pub fn scan_file(path: &str, source: &str, config: &Config) -> Vec<Diagnostic> {
    scan_file_with(path, source, config, &[])
}
