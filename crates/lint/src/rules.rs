//! The rule engine: token-sequence matchers for D001–D003, R001–R002,
//! plus the suppression-policing meta rules L001/L002.
//!
//! | Rule | Contract it enforces |
//! |------|----------------------|
//! | D001 | No `std::collections::HashMap`/`HashSet` in sim-path crates — iteration order is randomized per process, so any map iteration that reaches an artifact breaks byte-identical reproduction. Use `BTreeMap`/`BTreeSet` or `toto_simcore::collections::DetHashMap`. |
//! | D002 | No wall-clock (`Instant::now`, `SystemTime`, `chrono`) outside the fleet executor and bench harnesses — simulation code must read `SimTime` only. |
//! | D003 | No ambient RNG (`thread_rng`, `rand::random`, `from_entropy`) — every stream must derive from `toto_simcore::rng` seeds. |
//! | R001 | No `.unwrap()` / `.expect("…")` in non-test library code of sim-path crates; vetted invariant expects are exempted via `lint.toml` `[[allow]]` entries. |
//! | R002 | Every `pub fn` in the configured files that takes `&mut` cluster state must contain a `debug_assert!`-based invariant check. |
//! | L001 | A suppression comment naming an unknown rule is an error (a typo would otherwise silently disable nothing). |
//! | L002 | A suppression comment that suppresses nothing is reported (stale allows accumulate otherwise). |

use crate::config::{Config, Level, KNOWN_RULES};
use crate::lexer::{lex, Token, TokenKind};
use crate::Diagnostic;

/// True if `path` equals `prefix` or sits below it.
pub fn path_has_prefix(path: &str, prefix: &str) -> bool {
    match path.strip_prefix(prefix) {
        Some(rest) => rest.is_empty() || rest.starts_with('/') || prefix.ends_with('/'),
        None => false,
    }
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == s
}

/// `tokens[i..]` starts with `::`.
fn is_path_sep(tokens: &[Token], i: usize) -> bool {
    i + 1 < tokens.len() && is_punct(&tokens[i], ":") && is_punct(&tokens[i + 1], ":")
}

/// Flag every token index inside a `#[cfg(test)]`-guarded item (the
/// attribute itself included). Detection is lexical: the attribute is
/// matched token-for-token and the guarded item extends to the end of
/// its first brace-balanced block — which covers the `mod tests { … }`
/// idiom this workspace uses everywhere.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        let is_cfg_test = i + 6 < tokens.len()
            && is_punct(&tokens[i], "#")
            && is_punct(&tokens[i + 1], "[")
            && is_ident(&tokens[i + 2], "cfg")
            && is_punct(&tokens[i + 3], "(")
            && is_ident(&tokens[i + 4], "test")
            && is_punct(&tokens[i + 5], ")")
            && is_punct(&tokens[i + 6], "]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        while j < tokens.len() && !is_punct(&tokens[j], "{") {
            j += 1;
        }
        let mut depth = 0usize;
        while j < tokens.len() {
            if is_punct(&tokens[j], "{") {
                depth += 1;
            } else if is_punct(&tokens[j], "}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let end = j.min(tokens.len().saturating_sub(1));
        for flag in flags.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    flags
}

/// A raw finding before severity/suppression processing.
struct Finding {
    rule: &'static str,
    line: usize,
    col: usize,
    message: String,
}

impl Finding {
    fn at(rule: &'static str, t: &Token, message: String) -> Finding {
        Finding {
            rule,
            line: t.line,
            col: t.col,
            message,
        }
    }
}

/// After a `<head> :: <seg> ::` path prefix, report every target ident —
/// either directly (`…::HashMap`) or inside a use-group (`…::{…}`).
fn flag_path_targets(
    tokens: &[Token],
    after: usize,
    targets: &[&str],
    mut report: impl FnMut(&Token),
) {
    if after >= tokens.len() {
        return;
    }
    if tokens[after].kind == TokenKind::Ident {
        if targets.contains(&tokens[after].text.as_str()) {
            report(&tokens[after]);
        }
    } else if is_punct(&tokens[after], "{") {
        let mut depth = 1usize;
        let mut j = after + 1;
        while j < tokens.len() && depth > 0 {
            if is_punct(&tokens[j], "{") {
                depth += 1;
            } else if is_punct(&tokens[j], "}") {
                depth -= 1;
            } else if tokens[j].kind == TokenKind::Ident
                && targets.contains(&tokens[j].text.as_str())
            {
                report(&tokens[j]);
            }
            j += 1;
        }
    }
}

fn rule_d001(tokens: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if is_ident(&tokens[i], "std")
            && is_path_sep(tokens, i + 1)
            && i + 3 < tokens.len()
            && is_ident(&tokens[i + 3], "collections")
            && is_path_sep(tokens, i + 4)
        {
            flag_path_targets(tokens, i + 6, &["HashMap", "HashSet"], |t| {
                findings.push(Finding::at(
                    "D001",
                    t,
                    format!(
                        "std::collections::{} iterates in a process-randomized order; \
                         use BTreeMap/BTreeSet or toto_simcore::collections::Det{}",
                        t.text, t.text
                    ),
                ));
            });
        }
    }
}

fn rule_d002(tokens: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        // `Instant::now(…)` / `SystemTime::now(…)` anywhere.
        if (is_ident(t, "Instant") || is_ident(t, "SystemTime"))
            && is_path_sep(tokens, i + 1)
            && i + 3 < tokens.len()
            && is_ident(&tokens[i + 3], "now")
        {
            findings.push(Finding::at(
                "D002",
                t,
                format!(
                    "{}::now() reads the wall clock; simulation code must use SimTime \
                     (wall-clock is allowed only in the fleet executor and benches)",
                    t.text
                ),
            ));
        }
        // `std::time::{Instant, SystemTime}` imports or inline paths.
        if is_ident(t, "std")
            && is_path_sep(tokens, i + 1)
            && i + 3 < tokens.len()
            && is_ident(&tokens[i + 3], "time")
            && is_path_sep(tokens, i + 4)
        {
            flag_path_targets(tokens, i + 6, &["Instant", "SystemTime"], |t| {
                findings.push(Finding::at(
                    "D002",
                    t,
                    format!(
                        "std::time::{} is wall-clock state; simulation code must use SimTime",
                        t.text
                    ),
                ));
            });
        }
        // Any chrono usage.
        if is_ident(t, "chrono") {
            findings.push(Finding::at(
                "D002",
                t,
                "chrono reads wall-clock/calendar state; simulation code must use SimTime"
                    .to_string(),
            ));
        }
    }
}

fn rule_d003(tokens: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if is_ident(t, "thread_rng") || is_ident(t, "from_entropy") {
            findings.push(Finding::at(
                "D003",
                t,
                format!(
                    "{}() draws OS entropy; all randomness must derive from \
                     toto_simcore::rng seed trees",
                    t.text
                ),
            ));
        }
        if is_ident(t, "rand")
            && is_path_sep(tokens, i + 1)
            && i + 3 < tokens.len()
            && is_ident(&tokens[i + 3], "random")
        {
            findings.push(Finding::at(
                "D003",
                t,
                "rand::random() draws from the ambient thread RNG; all randomness \
                 must derive from toto_simcore::rng seed trees"
                    .to_string(),
            ));
        }
    }
}

fn rule_r001(tokens: &[Token], in_test: &[bool], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if in_test[i] || !is_punct(&tokens[i], ".") {
            continue;
        }
        let Some(name) = tokens.get(i + 1) else {
            continue;
        };
        if is_ident(name, "unwrap")
            && tokens.get(i + 2).is_some_and(|t| is_punct(t, "("))
            && tokens.get(i + 3).is_some_and(|t| is_punct(t, ")"))
        {
            findings.push(Finding::at(
                "R001",
                name,
                ".unwrap() panics without context in sim-path library code; return a \
                 typed error or add a vetted [[allow]] entry to lint.toml"
                    .to_string(),
            ));
        }
        // Only `.expect(` with a string-literal argument is Option/Result
        // expect; `self.expect_byte(b'=')`-style parser methods are not.
        if is_ident(name, "expect")
            && tokens.get(i + 2).is_some_and(|t| is_punct(t, "("))
            && tokens.get(i + 3).is_some_and(|t| t.kind == TokenKind::Str)
        {
            findings.push(Finding::at(
                "R001",
                name,
                ".expect(\"…\") panics in sim-path library code; return a typed error \
                 or add a vetted [[allow]] entry to lint.toml"
                    .to_string(),
            ));
        }
    }
}

fn rule_r002(tokens: &[Token], in_test: &[bool], config: &Config, findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < tokens.len() {
        if in_test[i] || !is_ident(&tokens[i], "pub") {
            i += 1;
            continue;
        }
        // Skip an optional visibility argument: `pub(crate)`, `pub(super)`.
        let mut j = i + 1;
        if j < tokens.len() && is_punct(&tokens[j], "(") {
            let mut depth = 1usize;
            j += 1;
            while j < tokens.len() && depth > 0 {
                if is_punct(&tokens[j], "(") {
                    depth += 1;
                } else if is_punct(&tokens[j], ")") {
                    depth -= 1;
                }
                j += 1;
            }
        }
        if j >= tokens.len() || !is_ident(&tokens[j], "fn") {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(j + 1) else {
            break;
        };
        // Find the parameter list (skipping generics on the fn name).
        let mut k = j + 2;
        while k < tokens.len() && !is_punct(&tokens[k], "(") {
            if is_punct(&tokens[k], "{") || is_punct(&tokens[k], ";") {
                break;
            }
            k += 1;
        }
        if k >= tokens.len() || !is_punct(&tokens[k], "(") {
            i = j + 1;
            continue;
        }
        let params_start = k;
        let mut depth = 1usize;
        k += 1;
        while k < tokens.len() && depth > 0 {
            if is_punct(&tokens[k], "(") {
                depth += 1;
            } else if is_punct(&tokens[k], ")") {
                depth -= 1;
            }
            k += 1;
        }
        let params_end = k; // one past the closing `)`
        let takes_mut_state = (params_start..params_end.saturating_sub(1)).any(|p| {
            is_punct(&tokens[p], "&")
                && tokens.get(p + 1).is_some_and(|t| is_ident(t, "mut"))
                && tokens.get(p + 2).is_some_and(|t| {
                    t.kind == TokenKind::Ident && config.r002_mut_state_types.contains(&t.text)
                })
        });
        // Find the body: the next `{` before any `;` (a `;` means a trait
        // method declaration with no body).
        let mut b = params_end;
        while b < tokens.len() && !is_punct(&tokens[b], "{") && !is_punct(&tokens[b], ";") {
            b += 1;
        }
        if !takes_mut_state || b >= tokens.len() || is_punct(&tokens[b], ";") {
            i = params_end;
            continue;
        }
        let body_start = b;
        let mut depth = 0usize;
        let mut has_invariant_check = false;
        while b < tokens.len() {
            if is_punct(&tokens[b], "{") {
                depth += 1;
            } else if is_punct(&tokens[b], "}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if tokens[b].kind == TokenKind::Ident
                && tokens[b].text.starts_with("debug_assert")
            {
                has_invariant_check = true;
            }
            b += 1;
        }
        if !has_invariant_check {
            let types = config.r002_mut_state_types.join("/");
            findings.push(Finding::at(
                "R002",
                name,
                format!(
                    "pub fn {} mutates {types} state but contains no debug_assert!-based \
                     invariant check; add one or a vetted allow",
                    name.text
                ),
            ));
        }
        i = body_start + 1;
    }
}

/// Lint one file's source. `path` is the workspace-relative path (forward
/// slashes) used for crate-class decisions and in diagnostics.
pub fn scan_file(path: &str, source: &str, config: &Config) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let in_test = mark_test_regions(&lexed.tokens);
    let lines: Vec<&str> = source.lines().collect();

    let sim_path = config.sim_path.iter().any(|p| path_has_prefix(path, p));
    let test_file = ["tests", "examples", "benches"]
        .iter()
        .any(|d| path.starts_with(&format!("{d}/")) || path.contains(&format!("/{d}/")));
    let lib_code = !test_file
        && (path.starts_with("src/") || path.contains("/src/"))
        && !path.contains("/bin/")
        && !path.ends_with("/main.rs")
        && !path.ends_with("build.rs");

    let mut findings = Vec::new();
    let on = |rule: &str| config.level(rule) != Level::Off;
    if sim_path && on("D001") {
        rule_d001(&lexed.tokens, &mut findings);
    }
    if on("D002")
        && !config
            .d002_allowed_paths
            .iter()
            .any(|p| path_has_prefix(path, p))
    {
        rule_d002(&lexed.tokens, &mut findings);
    }
    if on("D003") {
        rule_d003(&lexed.tokens, &mut findings);
    }
    if sim_path && lib_code && on("R001") {
        rule_r001(&lexed.tokens, &in_test, &mut findings);
    }
    if on("R002") && config.r002_paths.iter().any(|p| path_has_prefix(path, p)) {
        rule_r002(&lexed.tokens, &in_test, config, &mut findings);
    }

    // File-level exemptions from lint.toml.
    findings.retain(|f| {
        !config
            .allow
            .iter()
            .any(|a| a.rule == f.rule && path_has_prefix(path, &a.path))
    });

    // Inline suppressions: an allow comment covers diagnostics on its own
    // line and on the line directly below it.
    let mut used = vec![false; lexed.allows.len()];
    findings.retain(|f| {
        let mut suppressed = false;
        for (idx, a) in lexed.allows.iter().enumerate() {
            if (a.line == f.line || a.line + 1 == f.line) && a.rules.iter().any(|r| r == f.rule) {
                used[idx] = true;
                suppressed = true;
            }
        }
        !suppressed
    });

    // L001: unknown rule named in a suppression. L002: suppression that
    // suppressed nothing (only reported when all its rules are known —
    // unknown ids are already an L001).
    for (idx, a) in lexed.allows.iter().enumerate() {
        let unknown: Vec<&String> = a
            .rules
            .iter()
            .filter(|r| !KNOWN_RULES.contains(&r.as_str()))
            .collect();
        if !unknown.is_empty() {
            if config.level("L001") != Level::Off {
                findings.push(Finding {
                    rule: "L001",
                    line: a.line,
                    col: a.col,
                    message: format!(
                        "suppression names unknown rule{} {}; known rules: {}",
                        if unknown.len() > 1 { "s" } else { "" },
                        unknown
                            .iter()
                            .map(|r| format!("{r:?}"))
                            .collect::<Vec<_>>()
                            .join(", "),
                        KNOWN_RULES.join(", ")
                    ),
                });
            }
        } else if !used[idx] && config.level("L002") != Level::Off {
            findings.push(Finding {
                rule: "L002",
                line: a.line,
                col: a.col,
                message: format!(
                    "suppression allow({}) matches no diagnostic; remove it",
                    a.rules.join(", ")
                ),
            });
        }
    }

    let mut diagnostics: Vec<Diagnostic> = findings
        .into_iter()
        .map(|f| Diagnostic {
            rule: f.rule.to_string(),
            level: config.level(f.rule),
            file: path.to_string(),
            line: f.line,
            col: f.col,
            message: f.message,
            snippet: lines
                .get(f.line.saturating_sub(1))
                .map(|l| l.trim_end().to_string())
                .unwrap_or_default(),
        })
        .collect();
    diagnostics
        .sort_by(|a, b| (a.line, a.col, a.rule.as_str()).cmp(&(b.line, b.col, b.rule.as_str())));
    diagnostics
}
