//! Workspace-analysis tests: the flow-aware rules (D004 reachability,
//! T001 trace coverage) run over synthetic multi-crate fixtures through
//! the same `analyze_files` pipeline `scan_workspace` uses, so what
//! fires here is exactly what fires on the real tree. Also pins the
//! deterministic diagnostic ordering and the zero-false-positive
//! baseline of the deliberately-clean fixture.

use std::collections::BTreeMap;

use toto_lint::analyze_files;
use toto_lint::config::Config;
use toto_lint::Diagnostic;

fn deps(edges: &[(&str, &[&str])]) -> BTreeMap<String, Vec<String>> {
    edges
        .iter()
        .map(|(f, ts)| (f.to_string(), ts.iter().map(|t| t.to_string()).collect()))
        .collect()
}

fn analyze(files: &[(&str, &str)], edges: &[(&str, &[&str])]) -> Vec<Diagnostic> {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze_files(&sources, &deps(edges), &Config::default())
}

#[test]
fn d004_fires_on_cross_crate_chain_with_full_chain_printed() {
    // The sink file reuses the real executor path, which is D002-allowed
    // in the default config — exactly the blind spot D004 closes.
    let diags = analyze(
        &[
            (
                "crates/core/src/entry.rs",
                include_str!("fixtures/d004_entry.rs"),
            ),
            (
                "crates/fleet/src/executor.rs",
                include_str!("fixtures/d004_executor.rs"),
            ),
        ],
        &[("core", &["fleet"])],
    );
    let d004: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "D004").collect();
    assert_eq!(d004.len(), 1, "{diags:?}");
    let d = d004[0];
    assert_eq!(d.file, "crates/fleet/src/executor.rs");
    assert!(
        d.message.contains(
            "core::entry::Driver::run_campaign → fleet::executor::launch_jobs → Instant::now()"
        ),
        "chain must name every hop, entry to sink: {}",
        d.message
    );
    // Nothing else fires: the entry file is clean, and the sink's D002 is
    // legitimately allowed.
    assert!(diags.iter().all(|d| d.rule == "D004"), "{diags:?}");
}

#[test]
fn d004_does_not_fire_without_a_path_from_sim_code() {
    // Same two files, but no dependency edge: the call cannot resolve
    // cross-crate, so the sink is unreachable.
    let diags = analyze(
        &[
            (
                "crates/core/src/entry.rs",
                include_str!("fixtures/d004_entry.rs"),
            ),
            (
                "crates/fleet/src/executor.rs",
                include_str!("fixtures/d004_executor.rs"),
            ),
        ],
        &[],
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn t001_fires_on_untraced_mutator() {
    let diags = analyze(
        &[(
            "crates/rgmanager/src/grants.rs",
            include_str!("fixtures/t001_bad.rs"),
        )],
        &[],
    );
    let t001: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "T001").collect();
    assert_eq!(t001.len(), 1, "{diags:?}");
    assert!(t001[0].message.contains("rewrite_grants"), "{:?}", t001[0]);
    // bump_version is not pub and not flagged.
    assert!(!diags.iter().any(|d| d.message.contains("bump_version")));
}

#[test]
fn t001_accepts_direct_and_transitive_trace_emission() {
    let diags = analyze(
        &[(
            "crates/rgmanager/src/grants.rs",
            include_str!("fixtures/t001_good.rs"),
        )],
        &[],
    );
    assert!(
        !diags.iter().any(|d| d.rule == "T001"),
        "both mutators are trace-covered: {diags:?}"
    );
}

#[test]
fn clean_fixture_produces_zero_diagnostics() {
    // Linted at a path where every rule family applies: sim-path crate,
    // library code, R002/T001 mutator paths.
    let diags = analyze(
        &[(
            "crates/rgmanager/src/clean.rs",
            include_str!("fixtures/clean.rs"),
        )],
        &[],
    );
    assert!(diags.is_empty(), "false positives: {diags:?}");
}

#[test]
fn diagnostics_come_back_in_stable_file_line_rule_order() {
    let noisy_a = "pub fn a() { let t = thread_rng(); let i = Instant::now(); }\n";
    let noisy_b = "pub fn b() { let x: std::collections::HashMap<u8, u8>; }\n";
    let files = [
        ("crates/simcore/src/zz.rs", noisy_a),
        ("crates/simcore/src/aa.rs", noisy_b),
    ];
    let forward = analyze(&files, &[]);
    let mut reversed_input = files;
    reversed_input.reverse();
    let reversed = analyze(&reversed_input, &[]);
    assert_eq!(forward, reversed, "order must not depend on input order");
    let keys: Vec<(&str, usize, &str)> = forward
        .iter()
        .map(|d| (d.file.as_str(), d.line, d.rule.as_str()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "diagnostics must sort by (file, line, rule)");
    assert!(!forward.is_empty());
}
