//! Fixture-driven rule tests: every rule has at least one positive case
//! (the violation is caught, at the right span) and one negative case
//! (idiomatic code stays clean). The fixture files live under
//! `tests/fixtures/` and are excluded from workspace scans — they exist
//! to be lexed by these tests, never compiled.

use toto_lint::config::{Config, Level};
use toto_lint::{scan_file, Diagnostic};

/// Lint a fixture as if it lived at `path` inside the workspace.
fn lint(path: &str, source: &str) -> Vec<Diagnostic> {
    scan_file(path, source, &Config::default())
}

fn rules(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule.as_str()).collect()
}

const SIM_LIB: &str = "crates/fabric/src/sample.rs";

#[test]
fn d001_flags_randomized_containers_in_sim_path() {
    let diags = lint(SIM_LIB, include_str!("fixtures/d001_bad.rs"));
    let d001: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "D001").collect();
    // Two imports (one inside a use-group) plus the inline return type and
    // the two constructor-adjacent uses resolved through full paths.
    assert!(d001.len() >= 3, "expected >=3 D001 findings, got {diags:?}");
    assert!(d001.iter().all(|d| d.level == Level::Error));
    // Span points at the offending identifier, not the line start.
    let first = d001[0];
    assert_eq!((first.line, first.col), (2, 23), "span should hit HashMap");
    assert!(first.snippet.contains("use std::collections::HashMap;"));
    // BTreeMap inside the same use-group is not flagged.
    assert!(!diags
        .iter()
        .any(|d| d.snippet.contains("BTreeMap") && d.col == 25));
}

#[test]
fn d001_ignores_ordered_containers() {
    let diags = lint(SIM_LIB, include_str!("fixtures/d001_good.rs"));
    assert!(diags.is_empty(), "clean fixture produced {diags:?}");
}

#[test]
fn d001_does_not_apply_outside_sim_path_crates() {
    let diags = lint(
        "crates/fleet/src/sample.rs",
        include_str!("fixtures/d001_bad.rs"),
    );
    assert!(
        !diags.iter().any(|d| d.rule == "D001"),
        "fleet is not a sim-path crate: {diags:?}"
    );
}

#[test]
fn d002_flags_wall_clock_reads() {
    let diags = lint(SIM_LIB, include_str!("fixtures/d002_bad.rs"));
    let d002 = rules(&diags).iter().filter(|r| **r == "D002").count();
    // Instant import, SystemTime in a use-group, Instant::now, SystemTime::now.
    assert!(d002 >= 4, "expected >=4 D002 findings, got {diags:?}");
    assert!(diags
        .iter()
        .any(|d| d.rule == "D002" && d.message.contains("Instant::now()")));
}

#[test]
fn d002_permits_duration_spans() {
    let diags = lint(SIM_LIB, include_str!("fixtures/d002_good.rs"));
    assert!(diags.is_empty(), "Duration-only fixture produced {diags:?}");
}

#[test]
fn d002_exempts_the_fleet_executor() {
    let diags = lint(
        "crates/fleet/src/executor.rs",
        include_str!("fixtures/d002_bad.rs"),
    );
    assert!(
        !diags.iter().any(|d| d.rule == "D002"),
        "executor is wall-clock-exempt: {diags:?}"
    );
}

#[test]
fn d003_flags_ambient_rng() {
    // D003 applies workspace-wide, sim-path or not.
    let diags = lint(
        "crates/telemetry/src/sample.rs",
        include_str!("fixtures/d003_bad.rs"),
    );
    let d003 = rules(&diags).iter().filter(|r| **r == "D003").count();
    assert_eq!(
        d003, 3,
        "thread_rng + rand::random + from_entropy: {diags:?}"
    );
}

#[test]
fn d003_ignores_seeded_generators() {
    let diags = lint(SIM_LIB, include_str!("fixtures/d003_good.rs"));
    assert!(diags.is_empty(), "seeded fixture produced {diags:?}");
}

#[test]
fn r001_flags_unwrap_and_expect_outside_tests() {
    let diags = lint(SIM_LIB, include_str!("fixtures/r001_bad.rs"));
    let r001: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "R001").collect();
    assert_eq!(r001.len(), 2, "one unwrap + one expect: {diags:?}");
    // The #[cfg(test)] module's unwrap/expect must not be flagged: both
    // findings sit in the first ten lines, before the test module.
    assert!(
        r001.iter().all(|d| d.line < 10),
        "test-module code flagged: {diags:?}"
    );
}

#[test]
fn r001_ignores_typed_errors_and_parser_expect_methods() {
    let diags = lint(SIM_LIB, include_str!("fixtures/r001_good.rs"));
    assert!(diags.is_empty(), "clean fixture produced {diags:?}");
}

#[test]
fn r001_does_not_apply_to_test_files() {
    let diags = lint(
        "crates/fabric/tests/sample.rs",
        include_str!("fixtures/r001_bad.rs"),
    );
    assert!(
        !diags.iter().any(|d| d.rule == "R001"),
        "integration tests may unwrap: {diags:?}"
    );
}

#[test]
fn r002_flags_unguarded_state_mutators() {
    let diags = lint(
        "crates/rgmanager/src/sample.rs",
        include_str!("fixtures/r002_bad.rs"),
    );
    let r002: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "R002").collect();
    assert_eq!(r002.len(), 2, "pub + pub(crate) mutators: {diags:?}");
    assert!(r002[0].message.contains("rebalance"));
    assert!(r002[1].message.contains("rename"));
}

#[test]
fn r002_accepts_guarded_mutators_and_skips_declarations() {
    let diags = lint(
        "crates/rgmanager/src/sample.rs",
        include_str!("fixtures/r002_good.rs"),
    );
    assert!(diags.is_empty(), "guarded fixture produced {diags:?}");
}

#[test]
fn r002_only_applies_to_configured_paths() {
    let diags = lint(
        "crates/models/src/sample.rs",
        include_str!("fixtures/r002_bad.rs"),
    );
    assert!(
        !diags.iter().any(|d| d.rule == "R002"),
        "models/ is not under the R002 contract: {diags:?}"
    );
}

#[test]
fn chaos_crate_is_under_the_full_sim_path_contract() {
    // `crates/chaos` schedules faults inside simulation runs, so the
    // whole determinism contract applies: ambient RNG (D003), wall-clock
    // reads (D002), and panicking lookups (R001) must all be caught.
    let diags = lint(
        "crates/chaos/src/sample.rs",
        include_str!("fixtures/chaos_bad.rs"),
    );
    for rule in ["D002", "D003", "R001"] {
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "expected {rule} in chaos sim-path scan: {diags:?}"
        );
    }
    assert!(diags
        .iter()
        .all(|d| d.rule != "R001" || d.level == Level::Error));
}

#[test]
fn r002_covers_the_scenario_oracle_mutator() {
    // `crates/scenario/src/oracle.rs` is an R002 path and `KsOracle` a
    // guarded state type: recording a K-S verdict without asserting the
    // oracle's invariants is a contract violation, while the shipped
    // guarded mutator and read-only accessors stay clean.
    let diags = lint(
        "crates/scenario/src/oracle.rs",
        include_str!("fixtures/r002_oracle_record.rs"),
    );
    let r002: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "R002").collect();
    assert_eq!(r002.len(), 1, "one unguarded oracle mutator: {diags:?}");
    assert!(r002[0].message.contains("record_family_unguarded"));
    assert_eq!(r002[0].level, Level::Error);
}

#[test]
fn r002_fires_on_unguarded_set_node_down() {
    let diags = lint(
        "crates/fabric/src/plb.rs",
        include_str!("fixtures/r002_set_node_down.rs"),
    );
    let r002: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "R002").collect();
    assert_eq!(r002.len(), 1, "unguarded liveness mutator: {diags:?}");
    assert!(r002[0].message.contains("set_node_down"));
    assert_eq!(r002[0].level, Level::Error);
}

#[test]
fn r002_fires_on_unguarded_ring_drain() {
    // The region admission ledger (`&mut RingSet`) is cluster state at
    // region scope; its configured path is the controlplane ring module.
    let diags = lint(
        "crates/controlplane/src/ring.rs",
        include_str!("fixtures/r002_ring_drain.rs"),
    );
    let r002: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "R002").collect();
    assert_eq!(r002.len(), 1, "unguarded ring-drain mutator: {diags:?}");
    assert!(r002[0].message.contains("drain_ring"));
    assert_eq!(r002[0].level, Level::Error);
}

#[test]
fn inline_suppression_silences_both_placements() {
    let diags = lint(SIM_LIB, include_str!("fixtures/suppressed.rs"));
    // Both D001 sites are suppressed (line-above and same-line forms) and
    // both allows are used, so no L002 either.
    assert!(diags.is_empty(), "suppressed fixture produced {diags:?}");
}

#[test]
fn unknown_rule_in_suppression_is_an_error() {
    let diags = lint(SIM_LIB, include_str!("fixtures/unknown_rule.rs"));
    assert_eq!(rules(&diags), vec!["L001"], "{diags:?}");
    assert_eq!(diags[0].level, Level::Error);
    assert!(diags[0].message.contains("D999"));
}

#[test]
fn unused_suppression_is_reported() {
    let diags = lint(SIM_LIB, include_str!("fixtures/unused_allow.rs"));
    assert_eq!(rules(&diags), vec!["L002"], "{diags:?}");
    assert_eq!(diags[0].level, Level::Warn);
}

#[test]
fn file_level_allow_entries_drop_findings() {
    let toml = r#"
[[allow]]
rule = "R001"
path = "crates/fabric/src/sample.rs"
reason = "fixture test: vetted invariant expects"
"#;
    let config = Config::from_toml_str(toml).expect("valid config");
    let diags = scan_file(SIM_LIB, include_str!("fixtures/r001_bad.rs"), &config);
    assert!(
        !diags.iter().any(|d| d.rule == "R001"),
        "allowlisted file still flagged: {diags:?}"
    );
}

#[test]
fn d005_flags_duplicate_seed_derivations_in_one_scope() {
    let diags = lint(SIM_LIB, include_str!("fixtures/d005_bad.rs"));
    let d005: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "D005").collect();
    // One duplicate in build_streams, one in nested_scope — the
    // child/child_rng spelling difference must not hide the collision.
    assert_eq!(d005.len(), 2, "{diags:?}");
    assert!(d005.iter().all(|d| d.level == Level::Error));
    assert!(d005[0].message.contains("placement"), "{:?}", d005[0]);
    assert!(
        d005[0].message.contains("line 5"),
        "should point back at the first derivation: {:?}",
        d005[0]
    );
    assert!(d005[1].message.contains("workload"), "{:?}", d005[1]);
}

#[test]
fn d005_permits_distinct_indices_labels_and_scopes() {
    let diags = lint(SIM_LIB, include_str!("fixtures/d005_good.rs"));
    assert!(diags.is_empty(), "clean derivations produced {diags:?}");
}

#[test]
fn d006_flags_float_equality_and_partial_cmp() {
    let diags = lint(SIM_LIB, include_str!("fixtures/d006_bad.rs"));
    let d006: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "D006").collect();
    // used == 0.0, != 1.0, partial_cmp, == 1e-9 (exponent literals lex
    // as single Num tokens, so the comparison is visible).
    assert_eq!(d006.len(), 4, "{diags:?}");
    assert!(d006.iter().any(|d| d.message.contains("partial_cmp")));
    assert!(d006.iter().any(|d| d.snippet.contains("1e-9")));
}

#[test]
fn d006_permits_total_cmp_epsilons_and_allowed_guards() {
    let diags = lint(SIM_LIB, include_str!("fixtures/d006_good.rs"));
    assert!(diags.is_empty(), "approved idioms produced {diags:?}");
}

#[test]
fn d006_does_not_apply_outside_sim_path_crates() {
    let diags = lint(
        "crates/fleet/src/sample.rs",
        include_str!("fixtures/d006_bad.rs"),
    );
    assert!(
        !diags.iter().any(|d| d.rule == "D006"),
        "fleet is not a sim-path crate: {diags:?}"
    );
}
