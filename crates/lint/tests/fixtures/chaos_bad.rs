// Fixture: a fault-injection engine written the *wrong* way — ambient
// randomness, wall-clock fault timing, and panicking lookups. Each line
// below is a determinism-contract violation the linter must catch when
// this file is treated as chaos sim-path library code.
use std::time::Instant;

pub fn pick_victim(nodes: &[u32]) -> u32 {
    // D003: ambient RNG makes the fault schedule unreproducible.
    let i = rand::thread_rng().gen_range(0..nodes.len());
    // R001: a panicking lookup in sim-path library code.
    *nodes.get(i).unwrap()
}

pub fn fault_deadline_ms() -> u128 {
    // D002: wall-clock reads leak host timing into the simulation.
    Instant::now().elapsed().as_millis()
}
