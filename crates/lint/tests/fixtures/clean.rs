//! Deliberately-clean fixture: idiomatic sim-path code exercising the
//! syntax neighborhoods of every rule without violating any of them.
//! Pins the zero-false-positive baseline — if any rule fires here, the
//! matcher regressed.

use std::collections::BTreeMap;

pub struct Sampler {
    streams: BTreeMap<u64, DetRng>,
}

impl Sampler {
    /// Seed discipline: same label, distinct indices.
    pub fn new(seeds: SeedTree, nodes: u64) -> Self {
        let mut streams = BTreeMap::new();
        for node in 0..nodes {
            streams.insert(node, seeds.clone().child_rng("node", node));
        }
        Sampler { streams }
    }

    /// Float handling: total_cmp and an epsilon, never `==`.
    pub fn hottest(&self, loads: &[f64]) -> Option<f64> {
        loads
            .iter()
            .copied()
            .filter(|l| l.abs() > 1e-12)
            .max_by(|a, b| a.total_cmp(b))
    }

    /// Durations are fine under D002 — only wall-clock reads are not.
    pub fn window(&self) -> std::time::Duration {
        std::time::Duration::from_secs(900)
    }

    /// Error handling without unwrap/expect; raw identifiers and float
    /// exponents lex cleanly.
    pub fn r#yield(&self, node: u64) -> Result<f64, String> {
        self.streams
            .get(&node)
            .map(|_| 2.5e-3)
            .ok_or_else(|| format!("unknown node {node}"))
    }
}

/// A guarded mutator: debug_assert present, trace event emitted.
pub fn apply_grant(cluster: &mut Cluster, cores: f64) {
    debug_assert!(cores >= 0.0, "grants cannot be negative");
    cluster.grant(cores);
    toto_trace::emit(toto_trace::EventKind::MetricReport, || body(cores));
}

#[cfg(test)]
mod tests {
    // Test code may unwrap freely.
    #[test]
    fn unwrap_is_fine_here() {
        let xs: Vec<u64> = vec![1];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
