// Fixture: D001 positive — randomized-order containers in sim-path code.
use std::collections::HashMap;
use std::collections::{BTreeMap, HashSet};

pub fn build() -> std::collections::HashMap<u32, f64> {
    let _set: HashSet<u32> = HashSet::new();
    let _ok: BTreeMap<u32, u32> = BTreeMap::new();
    HashMap::new()
}
