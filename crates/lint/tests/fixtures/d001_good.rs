// Fixture: D001 negative — ordered containers only.
use std::collections::{BTreeMap, BTreeSet, VecDeque};

pub fn build() -> BTreeMap<u32, f64> {
    let _set: BTreeSet<u32> = BTreeSet::new();
    let _queue: VecDeque<u32> = VecDeque::new();
    BTreeMap::new()
}
