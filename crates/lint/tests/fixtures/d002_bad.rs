// Fixture: D002 positive — wall-clock reads in simulation code.
use std::time::Instant;
use std::time::{Duration, SystemTime};

pub fn stamp() -> Duration {
    let start = Instant::now();
    let _epoch = SystemTime::now();
    start.elapsed()
}
