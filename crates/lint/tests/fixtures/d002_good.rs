// Fixture: D002 negative — simulated time only. `Duration` alone is fine:
// it is a span, not a clock read.
use std::time::Duration;

pub fn advance(now_us: u64, step: Duration) -> u64 {
    now_us + step.as_micros() as u64
}
