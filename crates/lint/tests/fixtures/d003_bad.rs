// Fixture: D003 positive — ambient OS entropy.
pub fn draw() -> f64 {
    let mut rng = rand::thread_rng();
    let _also_bad: u8 = rand::random();
    let _seeded_from_os = SmallRng::from_entropy();
    rng.gen()
}
