// Fixture: D003 negative — all randomness flows from an explicit seed.
pub fn draw(seed: u64) -> f64 {
    let mut rng = toto_simcore::rng::SplitMix64::new(seed);
    rng.next_f64()
}
