//! D004 fixture, sim-path side: a public entry point that reaches a
//! wall-clock read only through a cross-crate call chain. Nothing in
//! this file violates any per-file rule.

pub struct Driver {
    runs: u64,
}

impl Driver {
    pub fn run_campaign(&mut self, spec: &Spec) -> Summary {
        self.runs += 1;
        let plan = expand_plan(spec);
        launch_jobs(&plan)
    }
}

fn expand_plan(spec: &Spec) -> Plan {
    Plan::from(spec)
}
