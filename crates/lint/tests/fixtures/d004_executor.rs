//! D004 fixture, helper side: a D002-allowed executor file whose
//! wall-clock read is therefore invisible to the per-file rules — but
//! reachable from the sim-path entry in `d004_entry.rs`.

pub fn launch_jobs(plan: &Plan) -> Summary {
    let started = Instant::now();
    let result = drive(plan);
    finish(result, started.elapsed())
}

fn drive(plan: &Plan) -> RawResult {
    RawResult::from(plan)
}
