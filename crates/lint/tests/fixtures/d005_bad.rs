//! D005 fixture: duplicate (label, index) SeedTree derivations in one
//! function body — two consumers end up on the same random stream.

pub fn build_streams(seeds: SeedTree) {
    let placement = seeds.clone().child_rng("placement", 0);
    let anneal = seeds.clone().child_rng("anneal", 0);
    // Same label AND same index as the first derivation: correlated.
    let tie_break = seeds.clone().child_rng("placement", 0);
    run(placement, anneal, tie_break);
}

pub fn nested_scope(seeds: SeedTree) {
    let outer = seeds.clone().child("workload", 1);
    let inner = seeds.child("workload", 1).rng();
    drive(outer, inner);
}
