//! D005 negative fixture: the legitimate derivation idioms. Same label
//! with distinct indices (per-node streams), distinct labels with the
//! same index, and identical derivations in *separate* function bodies
//! are all fine.

pub fn per_node_streams(seeds: SeedTree, nodes: usize) {
    for node in 0..nodes {
        let rng = seeds.clone().child_rng("node", node as u64);
        drive(node, rng);
    }
}

pub fn distinct_labels(seeds: SeedTree) {
    let placement = seeds.clone().child_rng("placement", 0);
    let anneal = seeds.clone().child_rng("anneal", 0);
    run(placement, anneal);
}

pub fn same_derivation_elsewhere(seeds: SeedTree) {
    // Identical to a derivation in `distinct_labels` — different scope,
    // different run phase, not correlated within one derivation scope.
    let placement = seeds.child_rng("placement", 0);
    run_alone(placement);
}

pub fn dynamic_indices(seeds: SeedTree, epoch: u64) {
    let a = seeds.clone().child_rng("refresh", epoch);
    let b = seeds.child_rng("refresh", epoch + 1);
    run(a, b);
}
