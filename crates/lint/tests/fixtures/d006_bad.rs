//! D006 fixture: float comparisons that break under representation
//! drift — exact equality against literals and partial_cmp ordering.

pub fn check_headroom(used: f64, capacity: f64) -> bool {
    if used == 0.0 {
        return true;
    }
    used / capacity != 1.0
}

pub fn pick_larger(xs: &[f64]) -> Option<f64> {
    let mut best = f64::MIN;
    for x in xs {
        if x.partial_cmp(&best) == Some(std::cmp::Ordering::Greater) {
            best = *x;
        }
    }
    Some(best)
}

pub fn exponent_literals(rate: f64) -> bool {
    rate == 1e-9
}
