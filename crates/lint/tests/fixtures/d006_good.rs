//! D006 negative fixture: the approved float-comparison idioms —
//! total_cmp, explicit epsilons, integer comparisons, and an
//! inline-allowed deliberate exact guard.

pub fn pick_larger(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(|a, b| a.total_cmp(b))
}

pub fn close_enough(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

pub fn integer_compare(count: usize) -> bool {
    count == 0 && count != 7
}

pub fn hex_is_not_float(flags: u32) -> bool {
    // 0x1E contains an `E` but is an integer literal, not an exponent.
    flags == 0x1E
}

pub fn deliberate_point_mass(sigma: f64) -> bool {
    // toto-lint: allow(D006)
    sigma == 0.0
}
