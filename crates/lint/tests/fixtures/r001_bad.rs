// Fixture: R001 positive — panicking extraction in library code.
pub fn load(map: &std::collections::BTreeMap<u32, f64>) -> f64 {
    let a = map.get(&1).unwrap();
    let b = map.get(&2).expect("key 2 present");
    a + b
}

#[cfg(test)]
mod tests {
    // Test code may unwrap freely; this must NOT be flagged.
    #[test]
    fn in_tests_unwrap_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let w: Option<u32> = Some(2);
        assert_eq!(w.expect("present"), 2);
    }
}
