// Fixture: R001 negative — typed errors instead of panics, and a parser
// method that happens to be named `expect` (non-string argument; not the
// Option/Result combinator).
pub fn load(map: &std::collections::BTreeMap<u32, f64>) -> Result<f64, String> {
    let a = map.get(&1).ok_or_else(|| "missing key 1".to_string())?;
    Ok(*a)
}

pub fn parse(p: &mut Parser) {
    p.expect(b'<');
}
