// Fixture: R002 positive — a public mutator of cluster state with no
// invariant check.
pub fn rebalance(cluster: &mut Cluster, load: f64) -> u32 {
    cluster.shift(load);
    cluster.node_count()
}

pub(crate) fn rename(naming: &mut NamingService, key: &str) {
    naming.touch(key);
}
