// Fixture: R002 negative — the mutator asserts its invariants, read-only
// borrows need no check, and bodiless trait methods are skipped.
pub fn rebalance(cluster: &mut Cluster, load: f64) -> u32 {
    cluster.shift(load);
    debug_assert!(cluster.invariants_ok(), "rebalance broke cluster invariants");
    cluster.node_count()
}

pub fn inspect(cluster: &Cluster) -> u32 {
    cluster.node_count()
}

pub trait Mutator {
    fn apply(&self, cluster: &mut Cluster);
}
