// Fixture: the K-S oracle mutator contract. `record_family` mutates the
// oracle's verdict state, so the R002 invariant-check rule applies to it
// exactly as it does to cluster mutators — an unguarded variant must be
// flagged, the shipped guarded shape must stay clean.
pub fn record_family_unguarded(oracle: &mut KsOracle, family: &str, tested: u64) {
    oracle.push_unchecked(family, tested);
}

pub fn record_family(oracle: &mut KsOracle, family: &str, tested: u64) {
    debug_assert!(!family.is_empty(), "family names are non-empty");
    oracle.push_unchecked(family, tested);
}

pub fn acceptance(oracle: &KsOracle) -> f64 {
    oracle.rate()
}
