// Fixture: R002 positive — a region-admission ring-drain mutator that
// empties a ring's ledger without re-checking the ring set's
// invariants. Drains zero a reservation in one step, which is exactly
// where a sign error or double-drain would push the ledger out of
// `[0, logical]` — the unguarded version must be flagged.
pub fn drain_ring(rings: &mut RingSet, ring: usize) -> f64 {
    let ledger = &mut rings.rings[ring];
    let drained = ledger.reserved_cores;
    ledger.admitting = false;
    ledger.reserved_cores = 0.0;
    drained
}
