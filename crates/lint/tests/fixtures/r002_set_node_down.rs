// Fixture: R002 positive — a chaos-style liveness mutator that flips a
// node down without re-checking the cluster's invariants. Down-marking
// is exactly the kind of state transition the invariant oracles audit,
// so the unguarded version must be flagged.
pub fn set_node_down(cluster: &mut Cluster, node: NodeId) {
    cluster.mark_down(node);
}
