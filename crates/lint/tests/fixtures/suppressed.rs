// Fixture: inline suppression — both placement forms must silence the
// diagnostic and count as used.
// toto-lint: allow(D001)
use std::collections::HashMap;

pub fn build() -> HashMap<u32, f64> {
    std::collections::HashMap::new() // toto-lint: allow(D001)
}
