//! T001 fixture: a public mutator of protected cluster state that emits
//! no trace event — directly or through anything it calls. Replay
//! diffing cannot see it. (The debug_assert keeps R002 satisfied so the
//! fixture isolates T001.)

pub fn rewrite_grants(naming: &mut NamingService, node: u64) {
    debug_assert!(node < 4096, "node id out of range");
    let key = grant_key(node);
    naming.write_silent(&key, "{}");
    bump_version(naming);
}

fn bump_version(naming: &mut NamingService) {
    naming.counter += 1;
}
