//! T001 negative fixture: both remediation shapes. `record_grant`
//! emits directly; `rotate_grants` is covered transitively through the
//! shared helper it calls — the flow-aware pass must follow the call.

pub fn record_grant(naming: &mut NamingService, node: u64) {
    debug_assert!(node < 4096, "node id out of range");
    naming.write_silent(&grant_key(node), "{}");
    toto_trace::emit(toto_trace::EventKind::NamingWrite, || body(node));
}

pub fn rotate_grants(naming: &mut NamingService, epoch: u64) {
    debug_assert!(epoch > 0, "epoch must advance");
    apply_rotation(naming, epoch);
}

fn apply_rotation(naming: &mut NamingService, epoch: u64) {
    naming.counter = epoch;
    toto_trace::emit(toto_trace::EventKind::ModelRefresh, || body(epoch));
}
