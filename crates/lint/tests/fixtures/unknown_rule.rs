// Fixture: a suppression naming a rule that does not exist must be an
// L001 error, not a silent no-op.
// toto-lint: allow(D999)
pub fn noop() {}
