// Fixture: a suppression that suppresses nothing must be reported (L002)
// so stale allows do not accumulate.
// toto-lint: allow(D001)
pub fn clean() -> u32 {
    42
}
