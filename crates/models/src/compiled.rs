//! Compiled, executable metric models.
//!
//! §3.3.1: "RgManager reads the model XML every 15 minutes from Naming
//! Service, parses them, and constructs internal model objects … Because
//! RgManager is stateless, all of the model objects are stateless as well.
//! This allows the model objects to be updated without losing context of
//! how to report the next load metric."
//!
//! Statelessness is achieved by making every sample a *pure function* of
//! the spec, the seeds, the service identity and the clock:
//!
//! * per-report sampling noise derives from the **node** seed and the
//!   report index (the paper gives every node's RgManager a unique seed,
//!   so a replica that fails over to another node continues on that
//!   node's stream);
//! * per-database *pattern membership* (does this database have high
//!   initial growth? is it an ETL-style rapid grower? what magnitudes?)
//!   derives from the **base** seed and the service identity, so a
//!   database keeps its personality across failovers and model refreshes.

use toto_simcore::rng::SeedTree;
use toto_simcore::time::{SimDuration, SimTime};
use toto_spec::model::{MetricModelSpec, ModelSetSpec};
use toto_spec::{EditionKind, ResourceKind};
use toto_stats::binning::EqualProbabilityBins;
use toto_stats::dist::{Distribution, Normal};

/// Replica role from the model's perspective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaRoleKind {
    /// The primary replica: executes the model (for persisted metrics it
    /// is the only replica that does, §3.3.2).
    Primary,
    /// A secondary replica.
    Secondary,
}

/// Everything a stateless sample needs.
#[derive(Clone, Copy, Debug)]
pub struct SampleContext {
    /// Stable service identity (raw service id).
    pub service: u64,
    /// Node hosting the reporting replica.
    pub node: u32,
    /// Role of the reporting replica.
    pub role: ReplicaRoleKind,
    /// When the database was created.
    pub created_at: SimTime,
    /// The report instant.
    pub now: SimTime,
    /// Previously reported value: the in-memory copy for non-persisted
    /// metrics, the Naming Service copy for persisted ones; `None` right
    /// after creation or after a non-persisted reset.
    pub prev: Option<f64>,
}

/// One compiled metric model.
#[derive(Clone, Debug)]
pub struct CompiledMetricModel {
    spec: MetricModelSpec,
    base: SeedTree,
    initial_bins: Option<EqualProbabilityBins>,
    rapid_inc_bins: Option<EqualProbabilityBins>,
    rapid_dec_bins: Option<EqualProbabilityBins>,
}

fn bins_from_edges(edges: &[f64]) -> EqualProbabilityBins {
    // Edges come straight from the spec; reconstruct the sampler. The
    // edges are the k+1 quantile boundaries, so fitting k bins over the
    // edges themselves reproduces them exactly.
    EqualProbabilityBins::from_edges(edges.to_vec())
}

impl CompiledMetricModel {
    /// Compile one spec under the model set's base seed.
    pub fn new(spec: MetricModelSpec, base_seed: u64) -> Self {
        let base = SeedTree::new(base_seed).child("model", spec.seed_salt);
        let initial_bins = spec.initial.as_ref().map(|i| bins_from_edges(&i.bin_edges));
        let rapid_inc_bins = spec
            .rapid
            .as_ref()
            .map(|r| bins_from_edges(&r.increase.bin_edges));
        let rapid_dec_bins = spec
            .rapid
            .as_ref()
            .map(|r| bins_from_edges(&r.decrease.bin_edges));
        CompiledMetricModel {
            spec,
            base,
            initial_bins,
            rapid_inc_bins,
            rapid_dec_bins,
        }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &MetricModelSpec {
        &self.spec
    }

    /// Whether the metric survives failovers.
    pub fn persisted(&self) -> bool {
        self.spec.persisted
    }

    /// Report period.
    pub fn report_period(&self) -> SimDuration {
        SimDuration::from_secs(self.spec.report_period_secs)
    }

    /// Index of the report interval containing `now` (0 for the first
    /// period after creation).
    fn report_index(&self, ctx: &SampleContext) -> u64 {
        ctx.now.saturating_since(ctx.created_at).as_secs() / self.spec.report_period_secs.max(1)
    }

    /// The steady-state hourly-normal sample for this report.
    fn steady_delta(&self, ctx: &SampleContext) -> f64 {
        let day = ctx.now.day_kind().index();
        let hour = ctx.now.hour_of_day() as usize;
        let (mu, sigma) = self.spec.steady.hourly.cell(day, hour);
        // Per-node stream, per (service, report) substream: stateless and
        // reproducible, yet different after a failover to another node —
        // matching "a unique seed was provided to every node" (§5.2).
        let mut rng = self
            .base
            .child("node", ctx.node as u64)
            .child("svc", ctx.service)
            .child_rng("report", self.report_index(ctx));
        Normal::new(mu, sigma).sample(&mut rng)
    }

    /// Deterministic pattern membership and magnitude for the
    /// initial-creation growth (§4.2.3). Returns the *per-report* extra
    /// growth if this report falls inside the high-growth window.
    fn initial_creation_delta(&self, ctx: &SampleContext) -> f64 {
        let (Some(init), Some(bins)) = (&self.spec.initial, &self.initial_bins) else {
            return 0.0;
        };
        let mut rng = self.base.child("svc", ctx.service).child_rng("initial", 0);
        if !rng.bernoulli(init.probability) {
            return 0.0;
        }
        let age = ctx.now.saturating_since(ctx.created_at).as_secs();
        if age >= init.duration_secs {
            return 0.0;
        }
        let total = bins.sample(&mut rng).max(0.0);
        let reports = (init.duration_secs / self.spec.report_period_secs.max(1)).max(1);
        total / reports as f64
    }

    /// Deterministic rapid-growth state machine (§4.2.4). Returns the
    /// per-report delta contributed by the current state.
    fn rapid_growth_delta(&self, ctx: &SampleContext) -> f64 {
        let (Some(rapid), Some(inc_bins), Some(dec_bins)) =
            (&self.spec.rapid, &self.rapid_inc_bins, &self.rapid_dec_bins)
        else {
            return 0.0;
        };
        let mut rng = self.base.child("svc", ctx.service).child_rng("rapid", 0);
        if !rng.bernoulli(rapid.probability) {
            return 0.0;
        }
        // Magnitudes are fixed per database (its recurring ETL volume).
        let inc_total = inc_bins.sample(&mut rng).max(0.0);
        let dec_total = dec_bins.sample(&mut rng).max(0.0);
        // To keep the pattern recurring without unbounded drift, the
        // decrease magnitude mirrors the increase ("new data is loaded in
        // and old data is aged out") scaled by the trained ratio.
        let dec_total = if inc_total > 0.0 {
            dec_total.min(inc_total)
        } else {
            0.0
        };

        let cycle = rapid.steady_secs
            + rapid.increase.duration_secs
            + rapid.between_secs
            + rapid.decrease.duration_secs;
        if cycle == 0 {
            return 0.0;
        }
        // Per-database phase stagger: real ETL jobs run on each customer's
        // own schedule, so cohorts created together (e.g. the bootstrap
        // population) must not spike in lockstep.
        let phase = rng.next_below(cycle);
        let age = ctx.now.saturating_since(ctx.created_at).as_secs() + phase;
        let pos = age % cycle;
        let inc_start = rapid.steady_secs;
        let inc_end = inc_start + rapid.increase.duration_secs;
        let dec_start = inc_end + rapid.between_secs;
        let period = self.spec.report_period_secs.max(1);
        if (inc_start..inc_end).contains(&pos) {
            let reports = (rapid.increase.duration_secs / period).max(1);
            inc_total / reports as f64
        } else if pos >= dec_start {
            let reports = (rapid.decrease.duration_secs / period).max(1);
            -(dec_total / reports as f64)
        } else {
            0.0
        }
    }

    /// Compute the value this replica should report now.
    ///
    /// * Additive (disk): `max(0, prev + steady + initial + rapid)`, where
    ///   a missing `prev` starts from `reset_value`.
    /// * Absolute (memory/CPU): the steady table is sampled as a level;
    ///   secondaries report `secondary_scale ×` the level. A missing
    ///   `prev` still reports a fresh sample (there is nothing to
    ///   accumulate), so the reset semantics come from the caller passing
    ///   `reset_value` as the first report if desired.
    pub fn next_value(&self, ctx: &SampleContext) -> f64 {
        if self.spec.additive {
            // §3.3.2: secondaries of persisted metrics do not execute the
            // model; they report the persisted value as-is.
            if self.spec.persisted && ctx.role == ReplicaRoleKind::Secondary {
                return ctx.prev.unwrap_or(self.spec.reset_value).max(0.0);
            }
            let prev = ctx.prev.unwrap_or(self.spec.reset_value);
            let delta = self.steady_delta(ctx)
                + self.initial_creation_delta(ctx)
                + self.rapid_growth_delta(ctx);
            (prev + delta).max(0.0)
        } else {
            let level = self.steady_delta(ctx).max(0.0);
            match ctx.role {
                ReplicaRoleKind::Primary => level,
                ReplicaRoleKind::Secondary => level * self.spec.secondary_scale,
            }
        }
    }
}

/// A compiled model set: what RgManager holds between refreshes.
#[derive(Clone, Debug)]
pub struct CompiledModelSet {
    version: u64,
    models: Vec<CompiledMetricModel>,
}

impl CompiledModelSet {
    /// Compile a parsed spec.
    pub fn compile(spec: &ModelSetSpec) -> Self {
        CompiledModelSet {
            version: spec.version,
            models: spec
                .models
                .iter()
                .map(|m| CompiledMetricModel::new(m.clone(), spec.base_seed))
                .collect(),
        }
    }

    /// Spec version this was compiled from.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of compiled models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True iff no models are present.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The first model matching `(resource, edition)`; `None` means
    /// "report actual load" (§3.3.1).
    pub fn model_for(
        &self,
        resource: ResourceKind,
        edition: EditionKind,
    ) -> Option<&CompiledMetricModel> {
        self.models
            .iter()
            .find(|m| m.spec.resource == resource && m.spec.target.matches(edition))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toto_spec::model::{
        GrowthStateSpec, HourlyTable, InitialCreationSpec, RapidGrowthSpec, SteadyStateSpec,
        TargetPopulation,
    };

    fn disk_spec(
        initial: Option<InitialCreationSpec>,
        rapid: Option<RapidGrowthSpec>,
    ) -> MetricModelSpec {
        MetricModelSpec {
            resource: ResourceKind::Disk,
            target: TargetPopulation::All,
            persisted: true,
            report_period_secs: 1200,
            reset_value: 0.0,
            additive: true,
            secondary_scale: 1.0,
            seed_salt: 7,
            steady: SteadyStateSpec {
                hourly: HourlyTable::constant(0.1, 0.0),
            },
            initial,
            rapid,
        }
    }

    fn ctx(service: u64, node: u32, now_secs: u64, prev: Option<f64>) -> SampleContext {
        SampleContext {
            service,
            node,
            role: ReplicaRoleKind::Primary,
            created_at: SimTime::ZERO,
            now: SimTime::from_secs(now_secs),
            prev,
        }
    }

    #[test]
    fn additive_model_accumulates_steady_growth() {
        let m = CompiledMetricModel::new(disk_spec(None, None), 1);
        // sigma = 0 so the delta is exactly mu = 0.1 per report.
        let v1 = m.next_value(&ctx(1, 0, 1200, None));
        assert!((v1 - 0.1).abs() < 1e-12);
        let v2 = m.next_value(&ctx(1, 0, 2400, Some(v1)));
        assert!((v2 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_stateless_and_reproducible() {
        let spec = {
            let mut s = disk_spec(None, None);
            s.steady.hourly = HourlyTable::constant(0.5, 0.3);
            s
        };
        let m1 = CompiledMetricModel::new(spec.clone(), 42);
        let m2 = CompiledMetricModel::new(spec, 42);
        let c = ctx(5, 3, 6000, Some(10.0));
        assert_eq!(m1.next_value(&c), m2.next_value(&c));
    }

    #[test]
    fn different_nodes_sample_different_streams() {
        let spec = {
            let mut s = disk_spec(None, None);
            s.steady.hourly = HourlyTable::constant(0.5, 0.3);
            s
        };
        let m = CompiledMetricModel::new(spec, 42);
        let a = m.next_value(&ctx(5, 0, 6000, Some(10.0)));
        let b = m.next_value(&{
            let mut c = ctx(5, 0, 6000, Some(10.0));
            c.node = 1;
            c
        });
        assert_ne!(a, b);
    }

    #[test]
    fn value_never_goes_negative() {
        let spec = {
            let mut s = disk_spec(None, None);
            s.steady.hourly = HourlyTable::constant(-5.0, 0.0);
            s
        };
        let m = CompiledMetricModel::new(spec, 1);
        let v = m.next_value(&ctx(1, 0, 1200, Some(2.0)));
        assert_eq!(v, 0.0);
    }

    #[test]
    fn initial_creation_growth_applies_within_window_only() {
        let init = InitialCreationSpec {
            probability: 1.0,
            duration_secs: 1800,
            bin_edges: vec![12.0, 12.0], // deterministic 12 GB total
        };
        let m = CompiledMetricModel::new(disk_spec(Some(init), None), 1);
        // 1800s window / 1200s period -> 1 report window carries all 12GB.
        let v_in = m.next_value(&ctx(1, 0, 1200, None));
        assert!(v_in > 11.0, "v_in = {v_in}");
        // After the window the extra growth stops.
        let v_after = m.next_value(&ctx(1, 0, 3600, Some(v_in)));
        assert!((v_after - v_in - 0.1).abs() < 1e-9);
    }

    #[test]
    fn initial_creation_membership_is_per_service() {
        let init = InitialCreationSpec {
            probability: 0.5,
            duration_secs: 1800,
            bin_edges: vec![100.0, 100.0],
        };
        let m = CompiledMetricModel::new(disk_spec(Some(init), None), 9);
        let mut grew = 0;
        for svc in 0..200 {
            let v = m.next_value(&ctx(svc, 0, 1200, None));
            if v > 50.0 {
                grew += 1;
            }
            // Membership must be stable across repeated asks.
            let v2 = m.next_value(&ctx(svc, 0, 1200, None));
            assert_eq!(v, v2);
        }
        assert!((60..140).contains(&grew), "grew = {grew}");
    }

    #[test]
    fn rapid_growth_cycles_up_and_down() {
        let rapid = RapidGrowthSpec {
            probability: 1.0,
            steady_secs: 2400,
            between_secs: 2400,
            increase: GrowthStateSpec {
                duration_secs: 1200,
                bin_edges: vec![24.0, 24.0],
            },
            decrease: GrowthStateSpec {
                duration_secs: 1200,
                bin_edges: vec![24.0, 24.0],
            },
        };
        let m = CompiledMetricModel::new(disk_spec(None, Some(rapid)), 1);
        // The cycle is phase-staggered per database, so assert behavioural
        // properties over whole cycles: exactly one +24 report and one -24
        // report per 7200 s cycle (on top of the 0.1 steady delta), and
        // the pattern repeats with the cycle period.
        let cycle_reports = 7200 / 1200;
        let deltas: Vec<f64> = (1..=2 * cycle_reports)
            .map(|i| m.next_value(&ctx(1, 0, 1200 * i, Some(100.0))) - 100.0)
            .collect();
        let first: &[f64] = &deltas[..cycle_reports as usize];
        let second: &[f64] = &deltas[cycle_reports as usize..];
        assert_eq!(first, second, "pattern must repeat each cycle");
        let spikes = first.iter().filter(|d| (**d - 24.1).abs() < 1e-9).count();
        let drops = first.iter().filter(|d| (**d + 23.9).abs() < 1e-9).count();
        let steady = first.iter().filter(|d| (**d - 0.1).abs() < 1e-9).count();
        assert_eq!(spikes, 1, "deltas {first:?}");
        assert_eq!(drops, 1, "deltas {first:?}");
        assert_eq!(steady, cycle_reports as usize - 2);
    }

    #[test]
    fn persisted_secondary_reports_prev_without_executing() {
        let m = CompiledMetricModel::new(disk_spec(None, None), 1);
        let mut c = ctx(1, 0, 1200, Some(55.0));
        c.role = ReplicaRoleKind::Secondary;
        // §3.3.2: "Secondaries simply report the disk usage read from
        // Naming Service."
        assert_eq!(m.next_value(&c), 55.0);
    }

    #[test]
    fn absolute_model_reports_levels_with_secondary_scale() {
        let spec = MetricModelSpec {
            resource: ResourceKind::Memory,
            target: TargetPopulation::All,
            persisted: false,
            report_period_secs: 1200,
            reset_value: 0.5,
            additive: false,
            secondary_scale: 0.25,
            seed_salt: 3,
            steady: SteadyStateSpec {
                hourly: HourlyTable::constant(8.0, 0.0),
            },
            initial: None,
            rapid: None,
        };
        let m = CompiledMetricModel::new(spec, 1);
        let p = m.next_value(&ctx(1, 0, 1200, Some(3.0)));
        assert_eq!(p, 8.0);
        let mut c = ctx(1, 0, 1200, Some(3.0));
        c.role = ReplicaRoleKind::Secondary;
        assert_eq!(m.next_value(&c), 2.0);
    }

    #[test]
    fn model_set_lookup_and_fallthrough() {
        let set_spec = ModelSetSpec {
            version: 5,
            base_seed: 11,
            models: vec![disk_spec(None, None)],
        };
        let set = CompiledModelSet::compile(&set_spec);
        assert_eq!(set.version(), 5);
        assert_eq!(set.len(), 1);
        assert!(set
            .model_for(ResourceKind::Disk, EditionKind::StandardGp)
            .is_some());
        assert!(set
            .model_for(ResourceKind::Memory, EditionKind::StandardGp)
            .is_none());
    }
}
