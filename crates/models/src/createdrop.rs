//! The Create DB / Drop DB model.
//!
//! §4.1: creates and drops "exhibited hourly patterns", differ between
//! weekdays and weekends, and differ sharply by edition (Premium/BC has
//! far fewer creates than Standard/GP). §4.1.3 models each of the
//! 2 × 24 × 2 cells as an independent normal distribution — 96 Create
//! models and 96 Drop models. The Population Manager samples these "at
//! the top of each hour" (§3.3.3) to decide how many databases to create
//! and drop over the next hour.

use toto_simcore::rng::DetRng;
use toto_simcore::time::SimTime;
use toto_spec::model::HourlyTable;
use toto_spec::EditionKind;
use toto_stats::dist::{Distribution, Normal, Poisson};

/// The executable create/drop count model for both editions.
#[derive(Clone, Debug)]
pub struct CreateDropModel {
    /// `create[edition.index()]`.
    create: [HourlyTable; 2],
    /// `drop[edition.index()]`.
    drop: [HourlyTable; 2],
}

impl CreateDropModel {
    /// Build from per-edition hourly tables.
    pub fn new(create: [HourlyTable; 2], drop: [HourlyTable; 2]) -> Self {
        CreateDropModel { create, drop }
    }

    fn sample_cell(table: &HourlyTable, at: SimTime, rng: &mut DetRng) -> u32 {
        let (mu, sigma) = table.cell(at.day_kind().index(), at.hour_of_day() as usize);
        // The paper's hourly-normal model is fitted at *region* level,
        // where counts are large. Scaled down to one tenant ring the means
        // drop below 1 and rounding a clamped normal would inflate them
        // badly (E[max(round(N(0.1, 0.5)), 0)] is more than double 0.1).
        // In that regime we sample the small-count limit instead: a
        // Poisson with the same mean, which is also what binomially
        // thinning the region-level process to one ring would give.
        if mu <= 0.0 {
            return 0;
        }
        if mu < 3.0 {
            return Poisson::new(mu).sample(rng) as u32;
        }
        let x = Normal::new(mu, sigma.max(0.0)).sample(rng);
        x.round().max(0.0) as u32
    }

    /// Number of databases of `edition` to create in the hour containing
    /// `at`.
    pub fn sample_creates(&self, edition: EditionKind, at: SimTime, rng: &mut DetRng) -> u32 {
        Self::sample_cell(&self.create[edition.index()], at, rng)
    }

    /// Number of databases of `edition` to drop in the hour containing
    /// `at`.
    pub fn sample_drops(&self, edition: EditionKind, at: SimTime, rng: &mut DetRng) -> u32 {
        Self::sample_cell(&self.drop[edition.index()], at, rng)
    }

    /// Expected (mean) creates for a cell, without sampling.
    pub fn expected_creates(&self, edition: EditionKind, at: SimTime) -> f64 {
        self.create[edition.index()]
            .cell(at.day_kind().index(), at.hour_of_day() as usize)
            .0
            .max(0.0)
    }

    /// Expected (mean) drops for a cell, without sampling.
    pub fn expected_drops(&self, edition: EditionKind, at: SimTime) -> f64 {
        self.drop[edition.index()]
            .cell(at.day_kind().index(), at.hour_of_day() as usize)
            .0
            .max(0.0)
    }

    /// Scale every cell's mean and standard deviation by `factor` — the
    /// paper's region-to-ring scaling ("scaled the values of the model
    /// parameters by the total number of tenant rings within that
    /// region", §4.1.1, assuming equal ring-selection probability).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite());
        let scale_table = |t: &HourlyTable| {
            let mut out = t.clone();
            for day in &mut out.cells {
                for cell in day.iter_mut() {
                    cell.0 *= factor;
                    cell.1 *= factor;
                }
            }
            out
        };
        CreateDropModel {
            create: [scale_table(&self.create[0]), scale_table(&self.create[1])],
            drop: [scale_table(&self.drop[0]), scale_table(&self.drop[1])],
        }
    }

    /// Access the create table for an edition.
    pub fn create_table(&self, edition: EditionKind) -> &HourlyTable {
        &self.create[edition.index()]
    }

    /// Access the drop table for an edition.
    pub fn drop_table(&self, edition: EditionKind) -> &HourlyTable {
        &self.drop[edition.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toto_simcore::time::{SimDuration, SECS_PER_HOUR};

    fn model() -> CreateDropModel {
        // Weekday GP creates ~ N(10, 2); weekend halves; BC is 10x rarer.
        let mut gp_create = HourlyTable::constant(10.0, 2.0);
        for h in 0..24 {
            gp_create.cells[1][h] = (5.0, 1.0);
        }
        let bc_create = HourlyTable::constant(1.0, 0.5);
        let gp_drop = HourlyTable::constant(9.0, 2.0);
        let bc_drop = HourlyTable::constant(0.8, 0.4);
        CreateDropModel::new([gp_create, bc_create], [gp_drop, bc_drop])
    }

    #[test]
    fn samples_are_nonnegative_integers_near_mean() {
        let m = model();
        let mut rng = DetRng::seed_from_u64(1);
        let t = SimTime::from_secs(10 * SECS_PER_HOUR); // Monday 10:00
        let n = 2000;
        let total: u64 = (0..n)
            .map(|_| m.sample_creates(EditionKind::StandardGp, t, &mut rng) as u64)
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean = {mean}");
    }

    #[test]
    fn weekend_cells_differ_from_weekday() {
        let m = model();
        let weekday = SimTime::from_secs(10 * SECS_PER_HOUR);
        let weekend = weekday + SimDuration::from_days(5);
        assert_eq!(m.expected_creates(EditionKind::StandardGp, weekday), 10.0);
        assert_eq!(m.expected_creates(EditionKind::StandardGp, weekend), 5.0);
    }

    #[test]
    fn bc_is_rarer_than_gp() {
        let m = model();
        let t = SimTime::ZERO;
        assert!(
            m.expected_creates(EditionKind::PremiumBc, t)
                < m.expected_creates(EditionKind::StandardGp, t)
        );
        assert!(
            m.expected_drops(EditionKind::PremiumBc, t)
                < m.expected_drops(EditionKind::StandardGp, t)
        );
    }

    #[test]
    fn scaling_divides_region_down_to_ring() {
        let m = model().scaled(1.0 / 50.0);
        let t = SimTime::ZERO;
        assert!((m.expected_creates(EditionKind::StandardGp, t) - 0.2).abs() < 1e-12);
        // Sampling still works and stays non-negative.
        let mut rng = DetRng::seed_from_u64(2);
        for _ in 0..100 {
            let _ = m.sample_creates(EditionKind::StandardGp, t, &mut rng);
        }
    }

    #[test]
    fn negative_mean_cells_clamp_to_zero() {
        let tbl = HourlyTable::constant(-3.0, 0.1);
        let m = CreateDropModel::new([tbl.clone(), tbl.clone()], [tbl.clone(), tbl]);
        let mut rng = DetRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(
                m.sample_creates(EditionKind::StandardGp, SimTime::ZERO, &mut rng),
                0
            );
        }
        assert_eq!(
            m.expected_creates(EditionKind::StandardGp, SimTime::ZERO),
            0.0
        );
    }
}
