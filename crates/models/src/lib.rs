//! Executable behaviour models for Toto.
//!
//! §4 of the paper builds two modeling frameworks from "simple statistical
//! models": the **Create DB / Drop DB model** (96 + 96 hourly-normal
//! distributions over weekday/weekend × hour × edition) executed by the
//! Population Manager, and the **disk usage model** (hourly-normal
//! steady-state growth plus initial-creation and predictable-rapid-growth
//! patterns) executed by RgManager. This crate provides:
//!
//! * [`compiled`] — the executable form of a [`toto_spec::ModelSetSpec`]:
//!   the "internal model objects" RgManager constructs after parsing the
//!   XML (§3.3.1). Model objects are stateless — every sample is a pure
//!   function of the spec, the seeds and the clock — so they can be
//!   rebuilt from XML at any time without losing context, exactly as the
//!   paper requires.
//! * [`createdrop`] — the Population Manager's create/drop count sampler.
//! * [`training`] — fits the specs from telemetry traces: hourly-normal
//!   fitting with K-S validation (§4.1.3), steady-state delta fitting
//!   (§4.2.2), high-initial-growth labelling at the paper's 12 GB / 5 min
//!   threshold (§4.2.3) and rapid-growth cycle extraction (§4.2.4).

pub mod compiled;
pub mod createdrop;
pub mod training;

pub use compiled::{CompiledMetricModel, CompiledModelSet, ReplicaRoleKind, SampleContext};
pub use createdrop::CreateDropModel;
pub use training::{
    label_high_initial_growth, train_hourly_table, train_initial_creation, train_rapid_growth,
    train_steady_state, HourlyObservation, TrainingReport,
};
