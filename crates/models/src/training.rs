//! Model training from telemetry traces.
//!
//! §4 trains every model on production telemetry. The synthetic traces we
//! train on come from `toto-telemetry`; this module implements the fitting
//! side:
//!
//! * [`train_hourly_table`] — groups observations by (weekday/weekend ×
//!   hour), fits a normal per cell and runs the K-S normality check per
//!   cell, producing both the [`HourlyTable`] and the p-value dispersion
//!   the paper plots in Figure 7.
//! * [`train_steady_state`] — the same construction over Delta Disk Usage
//!   values (§4.2.2's "hourly normal" disk model).
//! * [`label_high_initial_growth`] / [`train_initial_creation`] — the
//!   §4.2.3 pipeline: label databases that grew more than 12 GB within
//!   their first five minutes, then bin their 30-minute growth into five
//!   equal-probability bins.
//! * [`train_rapid_growth`] — the §4.2.4 pipeline: select databases whose
//!   delta series shows spike-up/spike-down cycles, bin the magnitudes
//!   and average the state dwell times.

use toto_simcore::time::SimTime;
use toto_spec::model::{GrowthStateSpec, HourlyTable, InitialCreationSpec, RapidGrowthSpec};
use toto_stats::binning::EqualProbabilityBins;
use toto_stats::describe;
use toto_stats::ks::{ks_test_normal, KsResult};

/// One timestamped observation (an hourly count, or one delta).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HourlyObservation {
    /// When the observation was taken.
    pub time: SimTime,
    /// The observed value.
    pub value: f64,
}

/// Outcome of fitting an hourly table: the per-cell K-S results that
/// Figure 7 visualises.
#[derive(Clone, Debug)]
pub struct TrainingReport {
    /// K-S result per populated cell, in (day, hour) order. `None` for
    /// cells with too little data to test.
    pub cell_ks: Vec<((usize, usize), Option<KsResult>)>,
}

impl TrainingReport {
    /// P-values of all tested cells.
    pub fn p_values(&self) -> Vec<f64> {
        self.cell_ks
            .iter()
            .filter_map(|(_, r)| r.map(|k| k.p_value))
            .collect()
    }

    /// Fraction of tested cells whose normality hypothesis is *not*
    /// rejected at `alpha`.
    pub fn acceptance_rate(&self, alpha: f64) -> f64 {
        let tested: Vec<f64> = self.p_values();
        if tested.is_empty() {
            return f64::NAN;
        }
        tested.iter().filter(|p| **p > alpha).count() as f64 / tested.len() as f64
    }
}

/// Fit an hourly-normal table from timestamped observations.
///
/// Cells with no observations become `(0, 0)` (a point mass at zero —
/// nothing was ever observed there).
pub fn train_hourly_table(observations: &[HourlyObservation]) -> (HourlyTable, TrainingReport) {
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); 48];
    for obs in observations {
        let idx = obs.time.day_kind().index() * 24 + obs.time.hour_of_day() as usize;
        buckets[idx].push(obs.value);
    }
    let mut table = HourlyTable::constant(0.0, 0.0);
    let mut cell_ks = Vec::with_capacity(48);
    for (idx, values) in buckets.iter().enumerate() {
        let (day, hour) = (idx / 24, idx % 24);
        if values.is_empty() {
            cell_ks.push(((day, hour), None));
            continue;
        }
        let mu = describe::mean(values);
        let sigma = describe::std_dev_population(values);
        table.cells[day][hour] = (mu, sigma);
        // K-S needs a handful of points to say anything.
        let ks = if values.len() >= 5 {
            ks_test_normal(values)
        } else {
            None
        };
        cell_ks.push(((day, hour), ks));
    }
    (table, TrainingReport { cell_ks })
}

/// Fit the steady-state disk model (§4.2.2): identical mechanics to the
/// create/drop fitting, but over Delta Disk Usage values. Callers should
/// pre-filter to the steady-state subset (the paper trains on the 99.8 %
/// of deltas that are steady-state).
pub fn train_steady_state(deltas: &[HourlyObservation]) -> (HourlyTable, TrainingReport) {
    train_hourly_table(deltas)
}

/// Label databases as "High Initial Growth": more than `threshold_gb`
/// growth within the first five minutes (§4.2.3 uses 12 GB).
pub fn label_high_initial_growth(first_5min_growth_gb: &[f64], threshold_gb: f64) -> Vec<bool> {
    first_5min_growth_gb
        .iter()
        .map(|g| *g > threshold_gb)
        .collect()
}

/// Train the initial-creation model (§4.2.3) from per-database growth
/// figures: `first_5min_gb[i]` and `first_30min_gb[i]` describe database
/// `i`. Returns `None` when no database qualifies.
pub fn train_initial_creation(
    first_5min_gb: &[f64],
    first_30min_gb: &[f64],
    threshold_gb: f64,
    bin_count: usize,
) -> Option<InitialCreationSpec> {
    assert_eq!(first_5min_gb.len(), first_30min_gb.len());
    if first_5min_gb.is_empty() {
        return None;
    }
    let labels = label_high_initial_growth(first_5min_gb, threshold_gb);
    let high: Vec<f64> = labels
        .iter()
        .zip(first_30min_gb)
        .filter(|(l, _)| **l)
        .map(|(_, g)| *g)
        .collect();
    if high.is_empty() {
        return None;
    }
    let probability = high.len() as f64 / first_5min_gb.len() as f64;
    let bins = EqualProbabilityBins::fit(&high, bin_count)?;
    Some(InitialCreationSpec {
        probability,
        duration_secs: 30 * 60,
        bin_edges: bins.edges().to_vec(),
    })
}

/// A per-database delta series at a fixed period.
#[derive(Clone, Debug)]
pub struct DeltaTrace {
    /// Sampling period of the deltas, seconds (paper: 20 minutes).
    pub period_secs: u64,
    /// Consecutive Delta Disk Usage values, GB.
    pub deltas: Vec<f64>,
}

/// Detected spike runs in one trace.
struct SpikeRuns {
    up_totals: Vec<f64>,
    up_lens: Vec<usize>,
    down_totals: Vec<f64>,
    down_lens: Vec<usize>,
    lead_len: usize,
    between_lens: Vec<usize>,
}

fn detect_runs(trace: &DeltaTrace, spike_threshold: f64) -> SpikeRuns {
    #[derive(PartialEq, Clone, Copy)]
    enum S {
        Flat,
        Up,
        Down,
    }
    let classify = |d: f64| {
        if d > spike_threshold {
            S::Up
        } else if d < -spike_threshold {
            S::Down
        } else {
            S::Flat
        }
    };
    let mut runs = SpikeRuns {
        up_totals: vec![],
        up_lens: vec![],
        down_totals: vec![],
        down_lens: vec![],
        lead_len: 0,
        between_lens: vec![],
    };
    let mut i = 0;
    let n = trace.deltas.len();
    let mut seen_first_up = false;
    let mut flat_since_up: Option<usize> = None;
    while i < n {
        let s = classify(trace.deltas[i]);
        let mut j = i;
        while j < n && classify(trace.deltas[j]) == s {
            j += 1;
        }
        let len = j - i;
        match s {
            S::Flat => {
                if !seen_first_up {
                    runs.lead_len += len;
                } else {
                    flat_since_up = Some(len);
                }
            }
            S::Up => {
                seen_first_up = true;
                runs.up_totals.push(trace.deltas[i..j].iter().sum());
                runs.up_lens.push(len);
                flat_since_up = None;
            }
            S::Down => {
                runs.down_totals
                    .push(trace.deltas[i..j].iter().map(|d| -d).sum());
                runs.down_lens.push(len);
                if let Some(gap) = flat_since_up.take() {
                    runs.between_lens.push(gap);
                }
            }
        }
        i = j;
    }
    runs
}

/// Train the predictable-rapid-growth model (§4.2.4) from per-database
/// delta traces. A database is a rapid grower when its series contains at
/// least one spike-up run *and* one spike-down run above
/// `spike_threshold_gb`. Returns `None` when no database qualifies.
pub fn train_rapid_growth(
    traces: &[DeltaTrace],
    spike_threshold_gb: f64,
    bin_count: usize,
) -> Option<RapidGrowthSpec> {
    if traces.is_empty() {
        return None;
    }
    let mut inc_mags = Vec::new();
    let mut dec_mags = Vec::new();
    let mut inc_lens = Vec::new();
    let mut dec_lens = Vec::new();
    let mut lead_lens = Vec::new();
    let mut between_lens = Vec::new();
    let mut matching = 0usize;
    let mut period = 0u64;
    for trace in traces {
        let runs = detect_runs(trace, spike_threshold_gb);
        if runs.up_totals.is_empty() || runs.down_totals.is_empty() {
            continue;
        }
        matching += 1;
        period = trace.period_secs;
        inc_mags.extend(runs.up_totals);
        dec_mags.extend(runs.down_totals);
        inc_lens.extend(runs.up_lens.iter().map(|l| *l as f64));
        dec_lens.extend(runs.down_lens.iter().map(|l| *l as f64));
        lead_lens.push(runs.lead_len as f64);
        between_lens.extend(runs.between_lens.iter().map(|l| *l as f64));
    }
    if matching == 0 {
        return None;
    }
    let probability = matching as f64 / traces.len() as f64;
    let to_secs = |mean_periods: f64| (mean_periods.max(1.0) * period as f64).round() as u64;
    let inc_bins = EqualProbabilityBins::fit(&inc_mags, bin_count)?;
    let dec_bins = EqualProbabilityBins::fit(&dec_mags, bin_count)?;
    Some(RapidGrowthSpec {
        probability,
        steady_secs: to_secs(describe::mean(&lead_lens)),
        between_secs: if between_lens.is_empty() {
            period
        } else {
            to_secs(describe::mean(&between_lens))
        },
        increase: GrowthStateSpec {
            duration_secs: to_secs(describe::mean(&inc_lens)),
            bin_edges: inc_bins.edges().to_vec(),
        },
        decrease: GrowthStateSpec {
            duration_secs: to_secs(describe::mean(&dec_lens)),
            bin_edges: dec_bins.edges().to_vec(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use toto_simcore::rng::DetRng;
    use toto_simcore::time::{SimDuration, SECS_PER_HOUR};
    use toto_stats::dist::{Distribution, Normal};

    fn synth_hourly(weeks: u64, mu_weekday: f64, mu_weekend: f64) -> Vec<HourlyObservation> {
        let mut rng = DetRng::seed_from_u64(5);
        let mut out = Vec::new();
        for hour in 0..(weeks * 7 * 24) {
            let t = SimTime::from_secs(hour * SECS_PER_HOUR);
            let mu = match t.day_kind().index() {
                0 => mu_weekday,
                _ => mu_weekend,
            };
            let v = Normal::new(mu, 1.5).sample(&mut rng);
            out.push(HourlyObservation { time: t, value: v });
        }
        out
    }

    #[test]
    fn hourly_table_recovers_day_kind_means() {
        let obs = synth_hourly(8, 20.0, 8.0);
        let (table, report) = train_hourly_table(&obs);
        for h in 0..24 {
            assert!((table.cells[0][h].0 - 20.0).abs() < 2.0, "wd h{h}");
            assert!((table.cells[1][h].0 - 8.0).abs() < 2.0, "we h{h}");
        }
        // Normal data should mostly pass the K-S normality check.
        assert!(report.acceptance_rate(0.05) > 0.85);
        assert_eq!(report.cell_ks.len(), 48);
    }

    #[test]
    fn empty_cells_are_point_masses() {
        // Only weekday-hour-0 observations.
        let obs: Vec<HourlyObservation> = (0..10)
            .map(|w| HourlyObservation {
                time: SimTime::from_secs(w * 7 * 24 * SECS_PER_HOUR),
                value: 4.0,
            })
            .collect();
        let (table, report) = train_hourly_table(&obs);
        assert_eq!(table.cells[0][0].0, 4.0);
        assert_eq!(table.cells[0][1], (0.0, 0.0));
        // 47 untested cells plus one tested.
        assert_eq!(
            report.cell_ks.iter().filter(|(_, r)| r.is_none()).count(),
            47
        );
    }

    #[test]
    fn high_initial_growth_labeling_uses_threshold() {
        let labels = label_high_initial_growth(&[0.5, 13.0, 12.0, 40.0], 12.0);
        assert_eq!(labels, vec![false, true, false, true]);
    }

    #[test]
    fn initial_creation_training_matches_paper_construction() {
        // 100 databases; 10 grow fast.
        let mut f5 = vec![0.1; 90];
        f5.extend(vec![20.0; 10]);
        let mut f30 = vec![0.5; 90];
        f30.extend((0..10).map(|i| 100.0 + 10.0 * i as f64));
        let spec = train_initial_creation(&f5, &f30, 12.0, 5).unwrap();
        assert!((spec.probability - 0.1).abs() < 1e-12);
        assert_eq!(spec.duration_secs, 1800);
        assert_eq!(spec.bin_edges.len(), 6);
        assert_eq!(spec.bin_edges[0], 100.0);
        assert_eq!(*spec.bin_edges.last().unwrap(), 190.0);
    }

    #[test]
    fn initial_creation_none_when_nothing_qualifies() {
        assert!(train_initial_creation(&[0.1, 0.2], &[1.0, 2.0], 12.0, 5).is_none());
        assert!(train_initial_creation(&[], &[], 12.0, 5).is_none());
    }

    #[test]
    fn rapid_growth_detects_etl_cycles() {
        // An ETL-ish trace: 6 flat, 2 big up, 3 flat, 2 big down, repeat.
        let mut deltas = Vec::new();
        for _ in 0..4 {
            deltas.extend([0.1; 6]);
            deltas.extend([25.0; 2]);
            deltas.extend([0.1; 3]);
            deltas.extend([-24.0; 2]);
        }
        let etl = DeltaTrace {
            period_secs: 1200,
            deltas,
        };
        let quiet = DeltaTrace {
            period_secs: 1200,
            deltas: vec![0.05; 52],
        };
        let spec = train_rapid_growth(&[etl, quiet.clone(), quiet], 10.0, 3).unwrap();
        assert!((spec.probability - 1.0 / 3.0).abs() < 1e-12);
        // Up runs: 2 periods of 25 -> total 50.
        assert_eq!(spec.increase.duration_secs, 2 * 1200);
        assert_eq!(spec.decrease.duration_secs, 2 * 1200);
        assert_eq!(spec.between_secs, 3 * 1200);
        assert_eq!(spec.steady_secs, 6 * 1200);
        assert!((spec.increase.bin_edges[0] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn rapid_growth_none_without_cycles() {
        let up_only = DeltaTrace {
            period_secs: 1200,
            deltas: vec![0.1, 30.0, 0.1],
        };
        assert!(train_rapid_growth(&[up_only], 10.0, 3).is_none());
        assert!(train_rapid_growth(&[], 10.0, 3).is_none());
    }

    #[test]
    fn steady_state_is_hourly_table_over_deltas() {
        let mut obs = Vec::new();
        for i in 0..(4 * 7 * 24) {
            let t = SimTime::ZERO + SimDuration::from_hours(i);
            obs.push(HourlyObservation {
                time: t,
                value: 0.02,
            });
        }
        let (table, _) = train_steady_state(&obs);
        assert!((table.cells[0][3].0 - 0.02).abs() < 1e-12);
        // Identical observations: sigma is zero up to accumulation dust.
        assert!(table.cells[0][3].1 < 1e-9);
    }
}
