//! Property-based tests for the behaviour models.

use proptest::prelude::*;
use toto_models::compiled::{CompiledMetricModel, ReplicaRoleKind, SampleContext};
use toto_models::createdrop::CreateDropModel;
use toto_models::training::{train_hourly_table, HourlyObservation};
use toto_simcore::rng::DetRng;
use toto_simcore::time::SimTime;
use toto_spec::model::{HourlyTable, MetricModelSpec, SteadyStateSpec, TargetPopulation};
use toto_spec::{EditionKind, ResourceKind};

fn disk_model(mu: f64, sigma: f64, persisted: bool) -> CompiledMetricModel {
    CompiledMetricModel::new(
        MetricModelSpec {
            resource: ResourceKind::Disk,
            target: TargetPopulation::All,
            persisted,
            report_period_secs: 1200,
            reset_value: 0.0,
            additive: true,
            secondary_scale: 1.0,
            seed_salt: 1,
            steady: SteadyStateSpec {
                hourly: HourlyTable::constant(mu, sigma),
            },
            initial: None,
            rapid: None,
        },
        42,
    )
}

proptest! {
    #[test]
    fn additive_values_never_go_negative(
        mu in -10.0f64..10.0,
        sigma in 0.0f64..5.0,
        prev in 0.0f64..100.0,
        service: u64,
        node in 0u32..16,
        now in 0u64..10_000_000,
    ) {
        let m = disk_model(mu, sigma, true);
        let ctx = SampleContext {
            service,
            node,
            role: ReplicaRoleKind::Primary,
            created_at: SimTime::ZERO,
            now: SimTime::from_secs(now),
            prev: Some(prev),
        };
        prop_assert!(m.next_value(&ctx) >= 0.0);
    }

    #[test]
    fn sampling_is_a_pure_function_of_context(
        mu in -5.0f64..5.0,
        sigma in 0.0f64..3.0,
        service: u64,
        node in 0u32..16,
        now in 0u64..1_000_000,
    ) {
        let m = disk_model(mu, sigma, true);
        let ctx = SampleContext {
            service,
            node,
            role: ReplicaRoleKind::Primary,
            created_at: SimTime::ZERO,
            now: SimTime::from_secs(now),
            prev: Some(10.0),
        };
        prop_assert_eq!(m.next_value(&ctx), m.next_value(&ctx));
    }

    #[test]
    fn persisted_secondaries_echo_prev(prev in 0.0f64..1e6, service: u64) {
        let m = disk_model(3.0, 1.0, true);
        let ctx = SampleContext {
            service,
            node: 0,
            role: ReplicaRoleKind::Secondary,
            created_at: SimTime::ZERO,
            now: SimTime::from_secs(1200),
            prev: Some(prev),
        };
        prop_assert_eq!(m.next_value(&ctx), prev);
    }

    #[test]
    fn create_counts_are_bounded_below_by_zero(mu in -50.0f64..50.0, sigma in 0.0f64..20.0, seed: u64, hour in 0u64..1000) {
        let t = HourlyTable::constant(mu, sigma);
        let model = CreateDropModel::new([t.clone(), t.clone()], [t.clone(), t]);
        let mut rng = DetRng::seed_from_u64(seed);
        let at = SimTime::from_secs(hour * 3600);
        let c = model.sample_creates(EditionKind::StandardGp, at, &mut rng);
        // u32 already: just sanity that expectation clamps too.
        prop_assert!(model.expected_creates(EditionKind::StandardGp, at) >= 0.0);
        prop_assert!(c < 10_000);
    }

    #[test]
    fn trained_table_cells_are_sample_means(values in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        // All observations in one cell: weekday hour 0.
        let obs: Vec<HourlyObservation> = values
            .iter()
            .enumerate()
            .map(|(week, v)| HourlyObservation {
                time: SimTime::from_secs(week as u64 * 7 * 86_400),
                value: *v,
            })
            .collect();
        let (table, _) = train_hourly_table(&obs);
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((table.cells[0][0].0 - mean).abs() < 1e-6);
    }
}
