//! `fleet_runner` — run a fleet of density experiments, or a whole
//! multi-ring region, in parallel and persist run artifacts.
//!
//! ```text
//! fleet_runner [--jobs N] [--threads T] [--hours H] [--seed S] [--out DIR] [--trace]
//!              [--chaos PLAN[@RING]] [--region SPEC]
//! ```
//!
//! Without `--region`, jobs cycle through the paper's density levels
//! (100, 110, 120, 140 %; §5.2). Each job gets a seed derived from
//! `--seed` via the workspace SplitMix64 scheme, so the artifact set is
//! a pure function of the arguments — re-running with the same arguments
//! reproduces every run record byte-for-byte, regardless of `--threads`.
//!
//! `--region SPEC` runs a region instead: SPEC is a built-in name
//! (`mixed4`, `ci2`, `lifecycle3`) or a path to a `<region>` XML file.
//! Each ring becomes one fleet job replaying the region plan's directed
//! schedule; artifacts land under `runs/region-<name>/` with per-ring
//! run records plus the `region.json` record and `region.trace`
//! control-plane trace.
//!
//! `--chaos PLAN` runs every job under a named fault-injection plan
//! (`toto-chaos`). With `--region`, `--chaos PLAN@RING` restricts the
//! plan to one named ring — and a decommission fault promotes to a
//! ring-lifecycle decommission: the region drains the ring's tenants
//! cross-ring at the fault hour. Chaos fleets write to their own
//! directory (`runs/<fleet>-chaos-<plan>/`) so plain-run artifacts are
//! never touched.

use toto_chaos::ChaosPlan;
use toto_fleet::{
    FleetExecutor, FleetManifest, ManifestJob, RunRecord, RunStore, StderrProgress,
    RUN_SCHEMA_VERSION,
};
use toto_region::{save_region_run, RegionRunner, RegionSpec};

/// The §5.2 density ladder the job list cycles through.
const DENSITIES: [u32; 4] = [100, 110, 120, 140];

struct Args {
    jobs: usize,
    threads: usize,
    hours: Option<u64>,
    seed: Option<u64>,
    out: String,
    trace: bool,
    chaos: Option<String>,
    chaos_ring: Option<String>,
    region: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        jobs: DENSITIES.len(),
        threads: std::thread::available_parallelism().map_or(4, usize::from),
        hours: None,
        seed: None,
        out: "results".to_string(),
        trace: false,
        chaos: None,
        chaos_ring: None,
        region: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--jobs" => args.jobs = value("--jobs").parse().expect("--jobs: integer"),
            "--threads" => args.threads = value("--threads").parse().expect("--threads: integer"),
            "--hours" => args.hours = Some(value("--hours").parse().expect("--hours: integer")),
            "--seed" => args.seed = Some(value("--seed").parse().expect("--seed: integer")),
            "--out" => args.out = value("--out"),
            "--trace" => args.trace = true,
            "--chaos" => {
                let spec = value("--chaos");
                match spec.split_once('@') {
                    Some((plan, ring)) => {
                        args.chaos = Some(plan.to_string());
                        args.chaos_ring = Some(ring.to_string());
                    }
                    None => args.chaos = Some(spec),
                }
            }
            "--region" => args.region = Some(value("--region")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: fleet_runner [--jobs N] [--threads T] [--hours H] \
                     [--seed S] [--out DIR] [--trace] [--chaos PLAN[@RING]] [--region SPEC]\n\
                     named chaos plans: {}\n\
                     named regions: {}",
                    ChaosPlan::NAMED.join(", "),
                    RegionSpec::NAMED.join(", ")
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other:?} (try --help)"),
        }
    }
    args
}

fn resolve_region(spec: &str) -> RegionSpec {
    if let Some(named) = RegionSpec::named(spec) {
        return named;
    }
    let xml = std::fs::read_to_string(spec).unwrap_or_else(|e| {
        panic!(
            "--region {spec:?} is neither a named region ({}) nor a readable XML file: {e}",
            RegionSpec::NAMED.join(", ")
        )
    });
    RegionSpec::parse(&xml).unwrap_or_else(|e| panic!("--region {spec}: {}", e.message))
}

fn run_region(args: &Args, chaos_plan: Option<ChaosPlan>) {
    let mut spec = resolve_region(args.region.as_deref().unwrap());
    if let Some(seed) = args.seed {
        spec.seed = seed;
    }
    if let Some(hours) = args.hours {
        spec.duration_hours = hours;
    }
    let fleet_name = match &args.chaos {
        Some(plan) => format!("region-{}-chaos-{plan}", spec.name),
        None => format!("region-{}", spec.name),
    };
    let runner = RegionRunner {
        threads: args.threads,
        trace: args.trace,
        chaos: chaos_plan.unwrap_or_default(),
        chaos_ring: args.chaos_ring.clone(),
    };
    eprintln!(
        "[fleet_runner] region {} ({} rings) on {} threads, {}h, seed {}",
        spec.name,
        spec.rings.len(),
        args.threads,
        spec.duration_hours,
        spec.seed
    );
    let output = runner.run_observed(&spec, &fleet_name, &StderrProgress);
    let store = RunStore::new(&args.out);
    let dir = save_region_run(&store, &output).expect("write region artifacts");

    println!(
        "{:<12} {:>7} {:>6} {:>9} {:>8} {:>8} {:>8} {:>14}",
        "ring", "density", "nodes", "creates", "drops", "red_out", "red_in", "adj_revenue_$"
    );
    for ring in &output.record.rings {
        println!(
            "{:<12} {:>7} {:>6} {:>9} {:>8} {:>8} {:>8} {:>14.2}",
            ring.name,
            ring.density_percent,
            ring.node_count,
            ring.directed_creates,
            ring.directed_drops,
            ring.stats.redirects_out,
            ring.stats.redirects_in,
            ring.revenue.adjusted()
        );
    }
    println!(
        "\nregion {}: adjusted revenue {:.2} $, {} cross-ring redirects, {} out-of-region -> {}",
        output.record.region,
        output.record.region_revenue.adjusted(),
        output.record.cross_ring_redirects,
        output.record.out_of_region,
        dir.display()
    );
    if args.chaos.is_some() {
        println!("chaos oracle violations: {}", output.oracle_violations);
        if output.oracle_violations > 0 {
            std::process::exit(1);
        }
    }
    if !output.all_completed {
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();
    let chaos_plan = args.chaos.as_deref().map(|name| {
        ChaosPlan::named(name).unwrap_or_else(|| {
            panic!(
                "unknown chaos plan {name:?}; named plans: {}",
                ChaosPlan::NAMED.join(", ")
            )
        })
    });
    if args.region.is_some() {
        run_region(&args, chaos_plan);
        return;
    }
    if args.chaos_ring.is_some() {
        panic!("--chaos PLAN@RING targets a ring; it requires --region");
    }
    let hours = args.hours.unwrap_or(144);
    let seed = args.seed.unwrap_or(42);
    // Chaos fleets get their own directory so the pinned plain-run
    // artifacts under runs/fleet_runner/ stay byte-identical forever.
    let fleet_name = match &args.chaos {
        Some(name) => format!("fleet_runner-chaos-{name}"),
        None => "fleet_runner".to_string(),
    };
    let overrides = || toto::experiment::ExperimentOverrides {
        chaos: chaos_plan.clone().unwrap_or_default(),
        ..toto::experiment::ExperimentOverrides::default()
    };
    let densities: Vec<u32> = (0..args.jobs)
        .map(|i| DENSITIES[i % DENSITIES.len()])
        .collect();

    // Duplicate densities get distinct labels (and thus distinct seeds)
    // from their position in the ladder. Labels (hence seeds) do not
    // depend on the chaos plan: a chaos run perturbs the same baseline
    // run its plain twin executes.
    let mut plan = toto_fleet::FleetPlan::new(seed);
    if args.jobs == DENSITIES.len() {
        for &density in &densities {
            let mut scenario = toto_spec::ScenarioSpec::gen5_stage_cluster(density);
            scenario.duration_hours = hours;
            plan.add(format!("density-{density}"), scenario, overrides());
        }
    } else {
        for (i, &density) in densities.iter().enumerate() {
            let mut scenario = toto_spec::ScenarioSpec::gen5_stage_cluster(density);
            scenario.duration_hours = hours;
            plan.add(
                format!("job{i:03}-density-{density}"),
                scenario,
                overrides(),
            );
        }
    }

    if args.trace {
        plan.trace_all();
    }

    eprintln!(
        "[fleet_runner] {} jobs on {} threads, {}h each, root seed {}",
        plan.jobs().len(),
        args.threads,
        hours,
        seed
    );

    let executor = FleetExecutor::new(args.threads);
    let report = executor.run(plan.jobs(), &StderrProgress);

    let records: Vec<RunRecord> = report
        .completed()
        .map(|(job, out)| RunRecord::from_result(&job.label, job.seed, &out.result))
        .collect();
    let manifest = FleetManifest {
        schema_version: RUN_SCHEMA_VERSION,
        fleet: fleet_name,
        root_seed: seed,
        threads: report.threads as u64,
        wall_secs: report.wall_secs,
        jobs: report
            .jobs
            .iter()
            .map(|j| ManifestJob {
                label: j.label.clone(),
                seed: j.seed,
                status: j.outcome.status().to_string(),
                wall_secs: j.wall_secs,
            })
            .collect(),
    };
    let store = RunStore::new(&args.out);
    let dir = store
        .save_fleet(&manifest, &records)
        .expect("write run artifacts");
    for (job, out) in report.completed() {
        if let Some(trace) = &out.trace {
            store
                .save_trace(&manifest.fleet, &job.label, trace)
                .expect("write trace sidecar");
        }
        if let Some(chaos) = &out.result.chaos {
            store
                .save_chaos(&manifest.fleet, &job.label, &chaos.to_json())
                .expect("write chaos sidecar");
        }
    }
    store
        .append_bench_record(&toto_fleet::BenchRecord::new(
            toto_fleet::current_commit(),
            vec![toto_fleet::BenchEntry {
                name: format!("{}/jobs_per_sec", manifest.fleet),
                unit: "jobs/s".to_string(),
                value: report.jobs_per_sec(),
            }],
        ))
        .expect("append benchdata.json");

    println!(
        "{:<24} {:>10} {:>14} {:>10} {:>10}",
        "job", "failovers", "adj_revenue_$", "redirects", "status"
    );
    for job in &report.jobs {
        match job.outcome.output() {
            Some(out) => println!(
                "{:<24} {:>10} {:>14.2} {:>10} {:>10}",
                job.label,
                out.result.telemetry.failover_count(None),
                out.result.revenue.adjusted(),
                out.result.redirect_count,
                job.outcome.status()
            ),
            None => println!(
                "{:<24} {:>10} {:>14} {:>10} {:>10}",
                job.label,
                "-",
                "-",
                "-",
                job.outcome.status()
            ),
        }
    }
    println!(
        "\n{} jobs in {:.1}s on {} threads ({:.2} jobs/s) -> {}",
        report.jobs.len(),
        report.wall_secs,
        report.threads,
        report.jobs_per_sec(),
        dir.display()
    );
    if args.chaos.is_some() {
        let violations: u64 = report
            .completed()
            .filter_map(|(_, out)| out.result.chaos.as_ref())
            .map(|c| c.oracle_violations)
            .sum();
        println!("chaos oracle violations: {violations}");
        if violations > 0 {
            std::process::exit(1);
        }
    }
    if !report.all_completed() {
        std::process::exit(1);
    }
}
