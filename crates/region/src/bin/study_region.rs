//! §5.3.1 region study: what is cross-ring admission worth?
//!
//! The paper measures creation redirects from the rejecting ring's
//! perspective only. This study quantifies the *region* side of the
//! mechanism: the same four heterogeneous rings (the §5.2 density ladder
//! at 100/110/120/140 %, with mixed node counts) are run twice —
//!
//! * **single-ring**: each ring is an isolated experiment with its own
//!   population stream; a create its own ring cannot take is simply a
//!   creation redirect (revenue lost to some other, unmodelled region);
//! * **region**: the `mixed4` region routes one regional population
//!   stream across all four rings, so overflow redirects land on
//!   siblings instead of leaving.
//!
//! The comparison holds hardware and seeds fixed: the single-ring
//! baselines run *exactly* the per-ring scenarios the region's Phase B
//! replays (same node counts, densities, bootstrap populations and
//! seeds), differing only in who admits creates.
//!
//! ```text
//! study_region [--threads T] [--hours H]
//! ```

use toto_fleet::{FleetExecutor, FleetPlan, NullObserver, RunRecord};
use toto_region::{RegionRunner, RegionSpec};

fn main() {
    let mut threads = std::thread::available_parallelism().map_or(4, usize::from);
    let mut hours = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--threads" => threads = value("--threads").parse().expect("--threads: integer"),
            "--hours" => hours = Some(value("--hours").parse().expect("--hours: integer")),
            "--help" | "-h" => {
                eprintln!("usage: study_region [--threads T] [--hours H]");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other:?} (try --help)"),
        }
    }

    let mut spec = RegionSpec::named("mixed4").expect("built-in region");
    if let Some(h) = hours {
        spec.duration_hours = h;
    }

    // Single-ring baselines: the region's own per-ring scenarios, run
    // undirected (each ring admits from its own population stream).
    let mut baseline = FleetPlan::new(spec.seed);
    for i in 0..spec.rings.len() {
        baseline.add_pinned(
            format!("single-{}", spec.rings[i].name),
            spec.ring_scenario(i),
            toto::experiment::ExperimentOverrides::default(),
        );
    }
    eprintln!(
        "[study_region] {} single-ring baselines + region {} on {} threads, {}h",
        baseline.jobs().len(),
        spec.name,
        threads,
        spec.duration_hours
    );
    let executor = FleetExecutor::new(threads);
    let report = executor.run(baseline.jobs(), &NullObserver);
    let singles: Vec<RunRecord> = report
        .completed()
        .map(|(job, out)| RunRecord::from_result(&job.label, job.seed, &out.result))
        .collect();
    assert_eq!(
        singles.len(),
        spec.rings.len(),
        "baseline jobs must complete"
    );

    // The region run: same rings, one regional admission layer.
    let runner = RegionRunner {
        threads,
        ..RegionRunner::default()
    };
    let region = runner.run(&spec, "study-region");
    assert!(region.all_completed, "region ring jobs must complete");

    println!(
        "\nregion study — {} ({} policy, {}h, seed {})\n",
        spec.name,
        spec.policy.name(),
        spec.duration_hours,
        spec.seed
    );
    println!(
        "{:<8} {:>7} {:>6} | {:>14} {:>10} | {:>14} {:>8} {:>8}",
        "ring", "density", "nodes", "single_adj_$", "rejected", "region_adj_$", "red_out", "red_in"
    );
    let mut single_total = 0.0;
    for (single, ring) in singles.iter().zip(&region.record.rings) {
        single_total += single.revenue.adjusted();
        println!(
            "{:<8} {:>7} {:>6} | {:>14.2} {:>10} | {:>14.2} {:>8} {:>8}",
            ring.name,
            ring.density_percent,
            ring.node_count,
            single.revenue.adjusted(),
            single.kpis.creation_redirects,
            ring.revenue.adjusted(),
            ring.stats.redirects_out,
            ring.stats.redirects_in
        );
    }
    let region_total = region.record.region_revenue.adjusted();
    println!(
        "\n{:<23} | {:>14.2} {:>10} | {:>14.2}",
        "total",
        single_total,
        singles
            .iter()
            .map(|r| r.kpis.creation_redirects)
            .sum::<u64>(),
        region_total
    );
    let kept: u64 = region
        .record
        .rings
        .iter()
        .map(|r| r.stats.redirects_in)
        .sum();
    println!(
        "region admission: {} redirect events ({} landed on siblings, {} left the region)",
        region.record.cross_ring_redirects, kept, region.record.out_of_region
    );
    println!(
        "adjusted revenue delta (region − single): {:+.2} $ ({:+.2} %)",
        region_total - single_total,
        (region_total - single_total) / single_total * 100.0
    );

    // Policy comparison: the regional stream realization is a pure
    // function of the region seed, so swapping the placement policy
    // re-routes the *identical* sequence of creates and drops — the
    // tightest possible apples-to-apples comparison.
    println!("\npolicy comparison — same rings, same regional stream");
    println!(
        "{:<16} {:>14} {:>10} {:>6} {:>14}",
        "policy", "adj_revenue_$", "redirects", "kept", "out_of_region"
    );
    for policy in [
        toto_controlplane::PlacementPolicy::DensityTarget,
        toto_controlplane::PlacementPolicy::Spread,
        toto_controlplane::PlacementPolicy::BestFit,
    ] {
        let mut spec = spec.clone();
        spec.policy = policy;
        let out = runner.run(&spec, &format!("study-region-{}", policy.name()));
        assert!(out.all_completed);
        let kept: u64 = out.record.rings.iter().map(|r| r.stats.redirects_in).sum();
        println!(
            "{:<16} {:>14.2} {:>10} {:>6} {:>14}",
            policy.name(),
            out.record.region_revenue.adjusted(),
            out.record.cross_ring_redirects,
            kept,
            out.record.out_of_region
        );
    }
}
