//! `toto-region`: a multi-ring region control plane with cross-ring
//! admission, overflow redirects and ring lifecycle events.
//!
//! §5.3.1 of the paper measures creation redirects — "Instead of being
//! placed in this tenant ring, the database will be redirected to
//! another tenant ring that has enough capacity" — but the seed
//! simulation only ever models the *rejecting* side: one ring, one
//! redirect counter. This crate builds the other side. A **region**
//! hosts several simulated fabric rings (heterogeneous node counts and
//! density targets, each with its own cluster, PLB, RgManager set and
//! naming service) behind one region-level admission layer
//! ([`toto_controlplane::RegionAdmission`]): a configurable placement
//! policy picks a home ring per create, rejections fall through sibling
//! rings as attributed **cross-ring redirects**, and ring lifecycle —
//! build-out and decommission drains — runs as first-class simulation
//! events.
//!
//! A region run is a three-phase pipeline:
//!
//! 1. [`plan`] — the region control plane decides all routing as a small
//!    deterministic simulation and emits one directed schedule per ring.
//! 2. [`run`] — each ring replays its schedule as an independent
//!    `DensityExperiment` fleet job (parallel, byte-identical artifacts
//!    at any worker count).
//! 3. [`record`] — per-ring KPI summaries, revenue splits and redirect
//!    attribution aggregate into the [`record::RegionRunRecord`].
//!
//! The `study_region` binary compares single-ring density runs against
//! a mixed-density region; `fleet_runner --region <spec>` runs any named
//! or XML region spec through the worker pool.

pub mod plan;
pub mod record;
pub mod run;
pub mod spec;

pub use plan::{build_region_plan, RegionPlan, RingPlan};
pub use record::{RegionRunRecord, RingEntry, REGION_SCHEMA_VERSION};
pub use run::{
    save_region_run, RegionRunOutput, RegionRunner, REGION_RECORD_FILE, REGION_TRACE_FILE,
};
pub use spec::{RegionSpec, RingSpec};
