//! Phase A: the region control plane.
//!
//! A region run happens in two phases so cross-ring coupling and
//! parallel per-ring execution can coexist:
//!
//! 1. **This module** runs the region control plane as a small
//!    deterministic simulation: one regional Population Manager stream,
//!    routed across ring capacity *ledgers* by the region-level
//!    [`RegionAdmission`] policy, with ring lifecycle (build-out,
//!    decommission drains) as first-class simcore events. Its product is
//!    one [`DirectedSchedule`] per ring — the fully resolved create/drop
//!    sub-stream that ring admitted.
//! 2. Phase B ([`crate::run`]) replays each ring's schedule inside an
//!    ordinary per-ring `DensityExperiment` as independent fleet jobs.
//!
//! The split preserves the seed-isolation contract: the control plane
//! consumes only region-level seeds plus each ring's *population* seed
//! (via its bootstrap draft plan), never a PLB seed — so perturbing one
//! ring's PLB seed cannot change any routing decision, and sibling rings
//! replay byte-identically (§5.2's fixed-seed discipline at region
//! scope).

use std::collections::BTreeMap;
use toto::bootstrap::{draft_population, BootstrapDraft};
use toto::defaults::gen5_population_model;
use toto::directed::{DirectedAction, DirectedSchedule};
use toto::population::{PlannedAction, PopulationManager};
use toto_controlplane::slo::SloCatalog;
use toto_controlplane::{RegionAdmission, RegionRedirect, RingAdmissionStats, RingLedger, RingSet};
use toto_simcore::event::{Scheduler, Simulation};
use toto_simcore::rng::DetRng;
use toto_simcore::time::{SimDuration, SimTime};
use toto_spec::{EditionKind, ScenarioSpec};

use crate::spec::RegionSpec;

/// One ring's share of the region plan.
#[derive(Clone, Debug)]
pub struct RingPlan {
    /// The per-ring scenario (fully seeded, bootstrap scaled).
    pub scenario: ScenarioSpec,
    /// The create/drop sub-stream this ring replays in Phase B.
    pub schedule: DirectedSchedule,
}

/// Everything Phase A decides.
#[derive(Clone, Debug)]
pub struct RegionPlan {
    /// The spec the plan was built from.
    pub spec: RegionSpec,
    /// Per-ring plans, in spec order.
    pub rings: Vec<RingPlan>,
    /// Per-ring admission attribution, in spec order.
    pub stats: Vec<RingAdmissionStats>,
    /// Every cross-ring / out-of-region redirect, in time order, with
    /// `from`/`to` remapped to spec-order ring indices.
    pub redirects: Vec<RegionRedirect>,
    /// Creates (or drained tenants) no ring could take.
    pub out_of_region: u64,
    /// The control plane's own trace stream (ring-admit, cross-ring
    /// redirect, ring-up, ring-drain events).
    pub trace: Vec<u8>,
}

/// A live tenant in the region's routing registry.
#[derive(Clone, Debug)]
struct Tenant {
    /// Join-order index of the ring hosting it.
    ring: usize,
    /// Name the hosting ring knows it by (directed directives use this).
    local_name: String,
    slo_index: usize,
    edition: EditionKind,
    /// Reserved cores (SLO cores × replicas).
    cores: f64,
    /// Initial per-replica disk, GB (drop-victim weighting).
    disk_gb: f64,
    /// Created during the run (drops skew toward young tenants, like
    /// the single-ring Population Manager's victim model).
    young: bool,
}

/// Immutable per-ring init data computed before the simulation starts.
struct RingInit {
    name: String,
    logical_cores: f64,
    density: u32,
    nodes: u32,
    drafts: Vec<BootstrapDraft>,
}

struct PlanState {
    rings: RingSet,
    admission: RegionAdmission,
    init: Vec<RingInit>,
    /// spec index → join-order ring index (None until the ring joins).
    ring_index: Vec<Option<usize>>,
    /// join-order ring index → spec index.
    spec_of: Vec<usize>,
    /// Directed schedules being built, spec order.
    schedules: Vec<DirectedSchedule>,
    /// Region-wide tenant registry, keyed `"{ring}/{local_name}"`.
    live: BTreeMap<String, Tenant>,
    popmgr: PopulationManager,
    catalog: SloCatalog,
    route_rng: DetRng,
}

impl PlanState {
    fn offset_secs(at: SimTime) -> u64 {
        at.saturating_since(SimTime::ZERO).as_secs()
    }

    fn ring_name(&self, ring: usize) -> &str {
        &self.init[self.spec_of[ring]].name
    }

    fn register(&mut self, ring: usize, tenant: Tenant) {
        let key = format!("{}/{}", self.ring_name(ring), tenant.local_name);
        self.live.insert(key, tenant);
    }

    /// Ring lifecycle: ring `spec_i` joins region admission.
    fn ring_up(&mut self, spec_i: usize) {
        let init = &self.init[spec_i];
        let reserved: f64 = init.drafts.iter().map(BootstrapDraft::reserved_cores).sum();
        let ledger = RingLedger {
            name: init.name.clone(),
            logical_cores: init.logical_cores,
            reserved_cores: reserved,
            density_target: init.density,
            admitting: true,
        };
        let nodes = u64::from(init.nodes);
        let ring = self.admission.ring_up(&mut self.rings, ledger, nodes);
        self.ring_index[spec_i] = Some(ring);
        self.spec_of.push(spec_i);
        debug_assert_eq!(self.spec_of.len(), ring + 1, "join order must be dense");
        let drafts = self.init[spec_i].drafts.clone();
        for draft in drafts {
            let cores = draft.reserved_cores();
            self.register(
                ring,
                Tenant {
                    ring,
                    local_name: draft.name,
                    slo_index: draft.slo_index,
                    edition: draft.edition,
                    cores,
                    disk_gb: draft.initial_disk_gb,
                    young: false,
                },
            );
        }
    }

    /// Route one regional create at `at`.
    fn route_create(&mut self, edition: EditionKind, at: SimTime) {
        let (slo_index, req) = self.popmgr.make_create_request(edition, &self.catalog);
        let Some(slo) = self.catalog.get(slo_index) else {
            return;
        };
        let cores = slo.total_reserved_cores();
        let outcome = self
            .admission
            .try_admit(&mut self.rings, &req.name, cores, at);
        let Some(ring) = outcome.ring() else {
            return; // out-of-region: recorded by the admission layer
        };
        self.schedules[self.spec_of[ring]].push(
            Self::offset_secs(at),
            DirectedAction::Create {
                name: req.name.clone(),
                slo_index,
                edition,
                initial_disk_gb: req.initial_disk_gb,
                initial_memory_gb: req.initial_memory_gb,
            },
        );
        self.register(
            ring,
            Tenant {
                ring,
                local_name: req.name,
                slo_index,
                edition,
                cores,
                disk_gb: req.initial_disk_gb,
                young: true,
            },
        );
    }

    /// Region-level drop-victim pick: the single-ring Population
    /// Manager's model (young-skewed, inverse-disk-weighted) applied to
    /// the whole region's tenant registry.
    fn pick_drop_victim(&mut self, edition: EditionKind) -> Option<String> {
        let mut young: Vec<&String> = Vec::new();
        let mut old: Vec<&String> = Vec::new();
        for (key, tenant) in &self.live {
            if tenant.edition != edition {
                continue;
            }
            if tenant.young {
                young.push(key);
            } else {
                old.push(key);
            }
        }
        if young.is_empty() && old.is_empty() {
            return None;
        }
        let pick_young = !young.is_empty() && (old.is_empty() || self.route_rng.bernoulli(0.85));
        let pool = if pick_young { young } else { old };
        let weights: Vec<f64> = pool
            .iter()
            .map(|key| 1.0 / (20.0 + self.live[*key].disk_gb))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = self.route_rng.next_f64() * total;
        for (key, w) in pool.iter().zip(&weights) {
            if pick < *w {
                return Some((*key).clone());
            }
            pick -= w;
        }
        pool.last().map(|key| (*key).clone())
    }

    /// Route one regional drop at `at`.
    fn route_drop(&mut self, edition: EditionKind, at: SimTime) {
        let Some(key) = self.pick_drop_victim(edition) else {
            return;
        };
        let Some(tenant) = self.live.remove(&key) else {
            return;
        };
        self.admission
            .release(&mut self.rings, tenant.ring, tenant.cores);
        self.schedules[self.spec_of[tenant.ring]].push(
            Self::offset_secs(at),
            DirectedAction::Drop {
                name: tenant.local_name,
            },
        );
    }

    /// Ring lifecycle: decommission ring `spec_i` — stop admitting and
    /// re-admit every live tenant on sibling rings. Each re-admission
    /// walks the normal cross-ring admission path, so drains produce
    /// attributed redirects; a tenant no sibling can take leaves the
    /// region (out-of-region, also attributed).
    fn decommission(&mut self, spec_i: usize, now: SimTime) {
        let Some(ring) = self.ring_index[spec_i] else {
            return; // never joined; nothing to drain
        };
        let keys: Vec<String> = self
            .live
            .iter()
            .filter(|(_, t)| t.ring == ring)
            .map(|(k, _)| k.clone())
            .collect();
        let from_name = self.ring_name(ring).to_string();
        self.admission
            .drain_ring(&mut self.rings, ring, keys.len() as u64);
        let offset = Self::offset_secs(now);
        for key in keys {
            let Some(tenant) = self.live.remove(&key) else {
                continue;
            };
            self.schedules[spec_i].push(
                offset,
                DirectedAction::Drop {
                    name: tenant.local_name.clone(),
                },
            );
            // Prefixing with the drained ring's name keeps the migrated
            // tenant's identity distinct from any name its new ring
            // already uses (bootstrap names repeat across rings).
            let migrated = format!("{from_name}:{}", tenant.local_name);
            let outcome =
                self.admission
                    .drain_admit(&mut self.rings, ring, &migrated, tenant.cores, now);
            let Some(to) = outcome.ring() else {
                continue; // out-of-region: the tenant leaves the region
            };
            self.schedules[self.spec_of[to]].push(
                offset,
                DirectedAction::Create {
                    name: migrated.clone(),
                    slo_index: tenant.slo_index,
                    edition: tenant.edition,
                    initial_disk_gb: tenant.disk_gb,
                    initial_memory_gb: 0.5,
                },
            );
            self.register(
                to,
                Tenant {
                    ring: to,
                    local_name: migrated,
                    ..tenant
                },
            );
        }
    }
}

/// The regional create/drop stream: the gen5 single-ring population
/// model scaled up by the ring count. §4.1.1 derives the ring model by
/// dividing region-level parameters "by the total number of tenant
/// rings within that region" — this is that scaling inverted, so a
/// 4-ring region sees 4× one ring's churn.
fn region_population_model(spec: &RegionSpec) -> toto_spec::population::PopulationModelSpec {
    let mut model = gen5_population_model(spec.region_population_seed());
    let factor = spec.rings.len() as f64;
    for table in model.create.iter_mut().chain(model.drop.iter_mut()) {
        for day in &mut table.cells {
            for cell in day.iter_mut() {
                cell.0 *= factor;
                cell.1 *= factor;
            }
        }
    }
    model
}

/// Hourly region population tick: plan the hour with the regional
/// Population Manager and route every planned action immediately (the
/// decisions carry their within-hour offsets into the schedules, so the
/// rings replay them at the right times).
fn population_tick(state: &mut PlanState, sched: &mut Scheduler<PlanState>) {
    let now = sched.now();
    for ev in state.popmgr.plan_hour(now) {
        let at = now + SimDuration::from_secs(ev.offset_secs);
        match ev.action {
            PlannedAction::Create(edition) => state.route_create(edition, at),
            PlannedAction::Drop(edition) => state.route_drop(edition, at),
        }
    }
}

/// Run the region control plane and decide every ring's schedule.
///
/// Pure function of the spec (which embeds the region seed): the same
/// spec always yields byte-identical schedules, stats and trace.
pub fn build_region_plan(spec: &RegionSpec) -> RegionPlan {
    let sink = toto_trace::Shared::new(toto_trace::BufferSink::new());
    let guard = toto_trace::SessionGuard::install(Box::new(sink.clone()));

    let catalog = SloCatalog::gen5();
    let scenarios: Vec<ScenarioSpec> = (0..spec.rings.len())
        .map(|i| spec.ring_scenario(i))
        .collect();
    let init: Vec<RingInit> = spec
        .rings
        .iter()
        .zip(&scenarios)
        .map(|(ring, scenario)| RingInit {
            name: ring.name.clone(),
            logical_cores: scenario.total_logical_cores(),
            density: ring.density_percent,
            nodes: ring.node_count,
            drafts: match draft_population(&catalog, scenario) {
                Ok(drafts) => drafts,
                Err(e) => panic!("ring {} bootstrap draft failed: {e:?}", ring.name),
            },
        })
        .collect();

    let state = PlanState {
        rings: RingSet::new(),
        admission: RegionAdmission::new(spec.policy),
        init,
        ring_index: vec![None; spec.rings.len()],
        spec_of: Vec::new(),
        schedules: vec![DirectedSchedule::new(); spec.rings.len()],
        live: BTreeMap::new(),
        popmgr: PopulationManager::new(&region_population_model(spec), &catalog),
        catalog,
        route_rng: DetRng::seed_from_u64(spec.region_route_seed()),
    };

    let mut sim = Simulation::new(state);
    let end = SimTime::from_secs(spec.duration_hours * 3600);

    // Lifecycle first, ticks second: at equal times the FIFO tie-break
    // then runs build-outs and drains before that hour's population
    // tick, so new rings take that hour's creates and drained rings
    // don't. Join order is (start_hour, spec index), which keeps ring
    // indices deterministic.
    let mut joins: Vec<(u64, usize)> = spec
        .rings
        .iter()
        .enumerate()
        .map(|(i, r)| (r.start_hour, i))
        .collect();
    joins.sort();
    for (hour, i) in joins {
        let at = SimTime::from_secs(hour * 3600);
        if at >= end && hour > 0 {
            continue; // never joins within the run
        }
        sim.scheduler()
            .schedule_at(at, move |s: &mut PlanState, _sc| s.ring_up(i));
    }
    for (i, ring) in spec.rings.iter().enumerate() {
        let Some(hour) = ring.decommission_hour else {
            continue;
        };
        let at = SimTime::from_secs(hour * 3600);
        if at >= end {
            continue;
        }
        sim.scheduler()
            .schedule_at(at, move |s: &mut PlanState, sc| s.decommission(i, sc.now()));
    }
    for hour in 0..spec.duration_hours {
        sim.scheduler()
            .schedule_at(SimTime::from_secs(hour * 3600), population_tick);
    }

    sim.run_until(end);
    let state = sim.into_state();
    drop(guard);

    // Remap join-order attribution back to spec order for the record.
    let mut stats = vec![RingAdmissionStats::default(); spec.rings.len()];
    for (ring, spec_i) in state.spec_of.iter().enumerate() {
        stats[*spec_i] = state.admission.stats()[ring].clone();
    }
    let redirects: Vec<RegionRedirect> = state
        .admission
        .redirects()
        .iter()
        .map(|r| RegionRedirect {
            time: r.time,
            from: state.spec_of[r.from],
            to: r.to.map(|t| state.spec_of[t]),
            cores: r.cores,
        })
        .collect();

    RegionPlan {
        spec: spec.clone(),
        rings: scenarios
            .into_iter()
            .zip(state.schedules)
            .map(|(scenario, schedule)| RingPlan { scenario, schedule })
            .collect(),
        stats,
        redirects,
        out_of_region: state.admission.out_of_region(),
        trace: sink.with(|b| b.bytes().to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RegionSpec;

    #[test]
    fn plans_are_deterministic() {
        let spec = RegionSpec::named("ci2").unwrap();
        let a = build_region_plan(&spec);
        let b = build_region_plan(&spec);
        for (ra, rb) in a.rings.iter().zip(&b.rings) {
            assert_eq!(ra.schedule, rb.schedule);
        }
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.trace, b.trace, "control-plane trace must be byte-stable");
    }

    #[test]
    fn plb_seed_perturbation_never_reaches_the_plan() {
        let spec = RegionSpec::named("ci2").unwrap();
        let mut perturbed = spec.clone();
        perturbed.rings[0].plb_seed = Some(0xDEAD);
        let a = build_region_plan(&spec);
        let b = build_region_plan(&perturbed);
        for (ra, rb) in a.rings.iter().zip(&b.rings) {
            assert_eq!(ra.schedule, rb.schedule, "routing must ignore PLB seeds");
        }
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn schedules_route_somewhere_and_stay_sorted() {
        let spec = RegionSpec::named("mixed4").unwrap();
        let plan = build_region_plan(&spec);
        let creates: usize = plan.rings.iter().map(|r| r.schedule.create_count()).sum();
        assert!(creates > 0, "a day of churn must route some creates");
        for ring in &plan.rings {
            assert!(ring
                .schedule
                .events
                .windows(2)
                .all(|w| w[0].offset_secs <= w[1].offset_secs));
        }
    }

    #[test]
    fn decommission_drains_tenants_to_siblings() {
        let spec = RegionSpec::named("lifecycle3").unwrap();
        let plan = build_region_plan(&spec);
        let old = &plan.rings[0].schedule;
        // Every tenant the old ring held is dropped at the drain.
        assert!(old.drop_count() as u64 > 0, "drain must drop tenants");
        // Siblings absorb migrated tenants under their prefixed names.
        let migrated: usize = plan.rings[1..]
            .iter()
            .map(|r| {
                r.schedule
                    .events
                    .iter()
                    .filter(|e| match &e.action {
                        toto::directed::DirectedAction::Create { name, .. } => {
                            name.starts_with("old:")
                        }
                        _ => false,
                    })
                    .count()
            })
            .sum();
        assert!(migrated > 0, "drained tenants must land on siblings");
        // Drain attribution: the old ring records redirects out.
        assert!(plan.stats[0].redirects_out > 0);
    }

    #[test]
    fn build_out_ring_takes_no_creates_before_joining() {
        let spec = RegionSpec::named("lifecycle3").unwrap();
        let plan = build_region_plan(&spec);
        let fresh = &plan.rings[2].schedule;
        let join_secs = spec.rings[2].start_hour * 3600;
        assert!(
            fresh.events.iter().all(|e| e.offset_secs >= join_secs),
            "no directive may precede the ring's build-out"
        );
    }
}
