//! The region run record: the creation-redirect KPI promoted to a
//! *region* KPI with per-ring attribution, plus region-level adjusted
//! revenue.
//!
//! Like `toto-fleet`'s per-job [`RunRecord`](toto_fleet::RunRecord), the
//! region record is **deterministic**: no wall-clock, no thread counts —
//! records from a 1-worker and an 8-worker region run are byte-identical
//! (the region determinism integration test asserts exactly this). It is
//! stored as a `region.json` artifact next to the per-ring run records.

use toto_controlplane::RingAdmissionStats;
use toto_fleet::{kpis_from_json, kpis_to_json, revenue_from_json, revenue_to_json, Json};
use toto_telemetry::kpi::KpiSummary;
use toto_telemetry::revenue::RevenueBreakdown;

/// Region record schema version. Bump on any field change.
pub const REGION_SCHEMA_VERSION: u64 = 1;

/// One ring's row in the region record.
#[derive(Clone, Debug, PartialEq)]
pub struct RingEntry {
    /// Ring name (also the per-ring run record's label).
    pub name: String,
    /// The ring's density ladder value.
    pub density_percent: u32,
    /// Node count.
    pub node_count: u32,
    /// Build-out hour (0 = present from the start).
    pub start_hour: u64,
    /// Decommission hour, if the ring was drained.
    pub decommission_hour: Option<u64>,
    /// The ring experiment's KPI digest.
    pub kpis: KpiSummary,
    /// The ring experiment's revenue split.
    pub revenue: RevenueBreakdown,
    /// Region-admission attribution for this ring.
    pub stats: RingAdmissionStats,
    /// Create directives the region routed to this ring.
    pub directed_creates: u64,
    /// Drop directives the region routed to this ring.
    pub directed_drops: u64,
}

/// The region-level artifact: per-ring breakdown plus aggregates.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionRunRecord {
    /// Schema version this record was written with.
    pub schema_version: u64,
    /// Region name.
    pub region: String,
    /// Region root seed.
    pub seed: u64,
    /// Placement policy name.
    pub policy: String,
    /// Run length, hours.
    pub duration_hours: u64,
    /// Per-ring rows, spec order.
    pub rings: Vec<RingEntry>,
    /// Field-wise sum of the rings' KPI summaries.
    pub region_kpis: KpiSummary,
    /// Sum of the rings' revenue splits (region adjusted revenue is
    /// `region_revenue.adjusted()`).
    pub region_revenue: RevenueBreakdown,
    /// Cross-ring and out-of-region redirects the control plane decided.
    pub cross_ring_redirects: u64,
    /// Creates (or drained tenants) no ring could take.
    pub out_of_region: u64,
}

impl RegionRunRecord {
    /// Serialize. Field order is fixed, so equal records render to
    /// equal bytes.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Uint(self.schema_version)),
            ("region", Json::Str(self.region.clone())),
            ("seed", Json::Uint(self.seed)),
            ("policy", Json::Str(self.policy.clone())),
            ("duration_hours", Json::Uint(self.duration_hours)),
            (
                "rings",
                Json::Arr(self.rings.iter().map(ring_to_json).collect()),
            ),
            ("region_kpis", kpis_to_json(&self.region_kpis)),
            ("region_revenue", revenue_to_json(&self.region_revenue)),
            (
                "cross_ring_redirects",
                Json::Uint(self.cross_ring_redirects),
            ),
            ("out_of_region", Json::Uint(self.out_of_region)),
        ])
    }

    /// Deserialize, rejecting unknown schema versions.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let version = json
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if version != REGION_SCHEMA_VERSION {
            return Err(format!(
                "region record schema {version} != supported {REGION_SCHEMA_VERSION}"
            ));
        }
        let rings = json
            .get("rings")
            .and_then(Json::as_arr)
            .ok_or("missing rings")?
            .iter()
            .map(ring_from_json)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(RegionRunRecord {
            schema_version: version,
            region: str_field(json, "region")?,
            seed: uint_field(json, "seed")?,
            policy: str_field(json, "policy")?,
            duration_hours: uint_field(json, "duration_hours")?,
            rings,
            region_kpis: kpis_from_json(json.get("region_kpis").ok_or("missing region_kpis")?)?,
            region_revenue: revenue_from_json(
                json.get("region_revenue").ok_or("missing region_revenue")?,
            )?,
            cross_ring_redirects: uint_field(json, "cross_ring_redirects")?,
            out_of_region: uint_field(json, "out_of_region")?,
        })
    }
}

fn ring_to_json(r: &RingEntry) -> Json {
    let mut fields = vec![
        ("name", Json::Str(r.name.clone())),
        ("density_percent", Json::Uint(u64::from(r.density_percent))),
        ("node_count", Json::Uint(u64::from(r.node_count))),
        ("start_hour", Json::Uint(r.start_hour)),
    ];
    if let Some(h) = r.decommission_hour {
        fields.push(("decommission_hour", Json::Uint(h)));
    }
    fields.extend([
        ("kpis", kpis_to_json(&r.kpis)),
        ("revenue", revenue_to_json(&r.revenue)),
        (
            "stats",
            Json::obj(vec![
                (
                    "admitted_first_choice",
                    Json::Uint(r.stats.admitted_first_choice),
                ),
                ("redirects_out", Json::Uint(r.stats.redirects_out)),
                ("redirects_in", Json::Uint(r.stats.redirects_in)),
            ]),
        ),
        ("directed_creates", Json::Uint(r.directed_creates)),
        ("directed_drops", Json::Uint(r.directed_drops)),
    ]);
    Json::obj(fields)
}

fn ring_from_json(json: &Json) -> Result<RingEntry, String> {
    let stats = json.get("stats").ok_or("missing ring stats")?;
    Ok(RingEntry {
        name: str_field(json, "name")?,
        density_percent: uint_field(json, "density_percent")? as u32,
        node_count: uint_field(json, "node_count")? as u32,
        start_hour: uint_field(json, "start_hour")?,
        decommission_hour: json.get("decommission_hour").and_then(Json::as_u64),
        kpis: kpis_from_json(json.get("kpis").ok_or("missing ring kpis")?)?,
        revenue: revenue_from_json(json.get("revenue").ok_or("missing ring revenue")?)?,
        stats: RingAdmissionStats {
            admitted_first_choice: uint_field(stats, "admitted_first_choice")?,
            redirects_out: uint_field(stats, "redirects_out")?,
            redirects_in: uint_field(stats, "redirects_in")?,
        },
        directed_creates: uint_field(json, "directed_creates")?,
        directed_drops: uint_field(json, "directed_drops")?,
    })
}

fn str_field(json: &Json, key: &str) -> Result<String, String> {
    json.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key}"))
}

fn uint_field(json: &Json, key: &str) -> Result<u64, String> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing uint field {key}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RegionRunRecord {
        let ring = |name: &str, density: u32| RingEntry {
            name: name.to_string(),
            density_percent: density,
            node_count: 14,
            start_hour: 0,
            decommission_hour: if name == "old" { Some(4) } else { None },
            kpis: KpiSummary {
                failover_count: 2,
                final_reserved_cores: 900.5,
                creation_redirects: 1,
                kpi_samples: 24,
                ..KpiSummary::default()
            },
            revenue: RevenueBreakdown {
                compute: 1000.0,
                storage: 50.25,
                penalty: 3.5,
            },
            stats: RingAdmissionStats {
                admitted_first_choice: 40,
                redirects_out: 3,
                redirects_in: 2,
            },
            directed_creates: 42,
            directed_drops: 7,
        };
        let mut region_kpis = KpiSummary::default();
        let mut region_revenue = RevenueBreakdown::default();
        let rings = vec![ring("old", 110), ring("steady", 120)];
        for r in &rings {
            region_kpis.accumulate(&r.kpis);
            region_revenue.add(&r.revenue);
        }
        RegionRunRecord {
            schema_version: REGION_SCHEMA_VERSION,
            region: "lifecycle3".to_string(),
            seed: 11,
            policy: "spread".to_string(),
            duration_hours: 8,
            rings,
            region_kpis,
            region_revenue,
            cross_ring_redirects: 5,
            out_of_region: 1,
        }
    }

    #[test]
    fn region_record_round_trips_through_json() {
        let record = sample();
        let back = RegionRunRecord::from_json(&record.to_json()).unwrap();
        assert_eq!(back, record);
        assert_eq!(back.to_json().render(), record.to_json().render());
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let mut record = sample();
        record.schema_version = REGION_SCHEMA_VERSION + 1;
        let err = RegionRunRecord::from_json(&record.to_json()).unwrap_err();
        assert!(err.contains("schema"), "got: {err}");
    }
}
