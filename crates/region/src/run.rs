//! Phases B and C: execute a region plan as parallel per-ring fleet
//! jobs, then aggregate into the region run record.
//!
//! Phase A ([`crate::plan`]) already decided every routing and lifecycle
//! event, so each ring job is a self-contained directed experiment —
//! a pure function of its descriptor — and the fleet executor can run
//! rings on any number of worker threads with byte-identical artifacts.

use toto::experiment::ExperimentOverrides;
use toto_chaos::{ChaosPlan, FaultSpec};
use toto_fleet::{
    FleetExecutor, FleetManifest, FleetObserver, FleetPlan, ManifestJob, NullObserver, RunRecord,
    RunStore, RUN_SCHEMA_VERSION,
};

use crate::plan::{build_region_plan, RegionPlan};
use crate::record::{RegionRunRecord, RingEntry, REGION_SCHEMA_VERSION};
use crate::spec::RegionSpec;

/// File name of the region record artifact inside the fleet directory.
pub const REGION_RECORD_FILE: &str = "region.json";
/// File name of the region control-plane trace artifact.
pub const REGION_TRACE_FILE: &str = "region.trace";

/// Configuration for one region run.
#[derive(Clone, Debug)]
pub struct RegionRunner {
    /// Fleet worker threads for the per-ring jobs.
    pub threads: usize,
    /// Record per-ring trace sidecars (the region control-plane trace
    /// is always recorded).
    pub trace: bool,
    /// Fault-injection plan applied to ring jobs (empty = none).
    pub chaos: ChaosPlan,
    /// Restrict the chaos plan to one named ring (`--chaos plan@ring`).
    /// `None` applies the plan to every ring.
    pub chaos_ring: Option<String>,
}

impl Default for RegionRunner {
    fn default() -> Self {
        RegionRunner {
            threads: 1,
            trace: false,
            chaos: ChaosPlan::default(),
            chaos_ring: None,
        }
    }
}

/// Per-ring sidecar payloads produced by a region run.
#[derive(Clone, Debug)]
pub struct RingSidecars {
    /// Ring name (the job label).
    pub label: String,
    /// Encoded trace stream, when tracing was on.
    pub trace: Option<Vec<u8>>,
    /// Chaos report JSON, when the ring ran under a chaos plan.
    pub chaos_json: Option<String>,
}

/// Everything a region run produces.
#[derive(Clone, Debug)]
pub struct RegionRunOutput {
    /// The Phase A decisions (schedules, attribution, region trace).
    pub plan: RegionPlan,
    /// The aggregated region record.
    pub record: RegionRunRecord,
    /// Per-ring run records, spec order.
    pub ring_records: Vec<RunRecord>,
    /// Observational manifest (threads, wall-clock, statuses).
    pub manifest: FleetManifest,
    /// Per-ring sidecars, spec order.
    pub sidecars: Vec<RingSidecars>,
    /// True iff every ring job completed.
    pub all_completed: bool,
    /// Total chaos invariant-oracle violations across rings.
    pub oracle_violations: u64,
}

impl RegionRunner {
    /// Resolve the effective spec: a chaos plan that decommissions a
    /// node *of a named ring* promotes to a ring-lifecycle decommission
    /// — the region drains the ring's tenants cross-ring at the fault
    /// hour, composing the chaos fault with the lifecycle event.
    pub fn effective_spec(&self, spec: &RegionSpec) -> RegionSpec {
        let mut spec = spec.clone();
        let Some(ring_name) = &self.chaos_ring else {
            return spec;
        };
        let Some(ring) = spec.rings.iter_mut().find(|r| &r.name == ring_name) else {
            panic!("--chaos targets unknown ring {ring_name:?}");
        };
        if ring.decommission_hour.is_none() {
            let promote = self
                .chaos
                .faults
                .iter()
                .filter_map(|f| match f {
                    FaultSpec::Decommission { at_hour, .. } => Some(*at_hour),
                    _ => None,
                })
                .min();
            ring.decommission_hour = promote;
        }
        spec
    }

    /// Run the region end to end: Phase A plan, Phase B parallel ring
    /// jobs, Phase C aggregation. `fleet_name` names the artifact
    /// directory in the manifest.
    pub fn run(&self, spec: &RegionSpec, fleet_name: &str) -> RegionRunOutput {
        self.run_observed(spec, fleet_name, &NullObserver)
    }

    /// [`run`](Self::run) with a progress observer for the ring jobs.
    pub fn run_observed(
        &self,
        spec: &RegionSpec,
        fleet_name: &str,
        observer: &dyn FleetObserver,
    ) -> RegionRunOutput {
        let spec = self.effective_spec(spec);
        let plan = build_region_plan(&spec);

        let mut fleet = FleetPlan::new(spec.seed);
        for (i, ring) in spec.rings.iter().enumerate() {
            let chaos = match &self.chaos_ring {
                Some(target) if target != &ring.name => ChaosPlan::default(),
                _ => self.chaos.clone(),
            };
            let overrides = ExperimentOverrides {
                directed: Some(plan.rings[i].schedule.clone()),
                chaos,
                ..ExperimentOverrides::default()
            };
            fleet.add_pinned(ring.name.clone(), plan.rings[i].scenario.clone(), overrides);
        }
        if self.trace {
            fleet.trace_all();
        }

        let executor = FleetExecutor::new(self.threads);
        let report = executor.run(fleet.jobs(), observer);

        let mut ring_records = Vec::new();
        let mut entries = Vec::new();
        let mut sidecars = Vec::new();
        let mut region_kpis = toto_telemetry::kpi::KpiSummary::default();
        let mut region_revenue = toto_telemetry::revenue::RevenueBreakdown::default();
        let mut oracle_violations = 0;
        for (i, (job, ring)) in fleet.jobs().iter().zip(&spec.rings).enumerate() {
            let Some(out) = report.jobs[i].outcome.output() else {
                continue;
            };
            let record = RunRecord::from_result(&job.label, job.seed, &out.result);
            entries.push(RingEntry {
                name: ring.name.clone(),
                density_percent: ring.density_percent,
                node_count: ring.node_count,
                start_hour: ring.start_hour,
                decommission_hour: ring.decommission_hour,
                kpis: record.kpis,
                revenue: record.revenue,
                stats: plan.stats[i].clone(),
                directed_creates: plan.rings[i].schedule.create_count() as u64,
                directed_drops: plan.rings[i].schedule.drop_count() as u64,
            });
            region_kpis.accumulate(&record.kpis);
            region_revenue.add(&record.revenue);
            if let Some(chaos) = &out.result.chaos {
                oracle_violations += chaos.oracle_violations;
            }
            sidecars.push(RingSidecars {
                label: job.label.clone(),
                trace: out.trace.clone(),
                chaos_json: out.result.chaos.as_ref().map(|c| c.to_json()),
            });
            ring_records.push(record);
        }

        let record = RegionRunRecord {
            schema_version: REGION_SCHEMA_VERSION,
            region: spec.name.clone(),
            seed: spec.seed,
            policy: spec.policy.name().to_string(),
            duration_hours: spec.duration_hours,
            rings: entries,
            region_kpis,
            region_revenue,
            cross_ring_redirects: plan.redirects.len() as u64,
            out_of_region: plan.out_of_region,
        };
        let manifest = FleetManifest {
            schema_version: RUN_SCHEMA_VERSION,
            fleet: fleet_name.to_string(),
            root_seed: spec.seed,
            threads: report.threads as u64,
            wall_secs: report.wall_secs,
            jobs: report
                .jobs
                .iter()
                .map(|j| ManifestJob {
                    label: j.label.clone(),
                    seed: j.seed,
                    status: j.outcome.status().to_string(),
                    wall_secs: j.wall_secs,
                })
                .collect(),
        };
        RegionRunOutput {
            plan,
            record,
            ring_records,
            manifest,
            sidecars,
            all_completed: report.all_completed(),
            oracle_violations,
        }
    }
}

/// Persist a region run: manifest + per-ring records, per-ring trace and
/// chaos sidecars, the region record (`region.json`) and the region
/// control-plane trace (`region.trace`). Returns the fleet directory.
pub fn save_region_run(
    store: &RunStore,
    output: &RegionRunOutput,
) -> std::io::Result<std::path::PathBuf> {
    let fleet = &output.manifest.fleet;
    let dir = store.save_fleet(&output.manifest, &output.ring_records)?;
    for sidecar in &output.sidecars {
        if let Some(trace) = &sidecar.trace {
            store.save_trace(fleet, &sidecar.label, trace)?;
        }
        if let Some(chaos) = &sidecar.chaos_json {
            store.save_chaos(fleet, &sidecar.label, chaos)?;
        }
    }
    store.save_artifact(
        fleet,
        REGION_RECORD_FILE,
        output.record.to_json().render().as_bytes(),
    )?;
    store.save_artifact(fleet, REGION_TRACE_FILE, &output.plan.trace)?;
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> RegionSpec {
        let mut spec = RegionSpec::named("ci2").unwrap();
        spec.duration_hours = 2;
        spec
    }

    #[test]
    fn region_run_aggregates_rings() {
        let runner = RegionRunner::default();
        let out = runner.run(&tiny_spec(), "test-region");
        assert!(out.all_completed);
        assert_eq!(out.ring_records.len(), 2);
        let summed: f64 = out.record.rings.iter().map(|r| r.revenue.adjusted()).sum();
        assert!(
            (out.record.region_revenue.adjusted() - summed).abs() < 1e-6,
            "region adjusted revenue must be the sum of ring revenues"
        );
        assert_eq!(
            out.record.region_kpis.final_reserved_cores,
            out.record
                .rings
                .iter()
                .map(|r| r.kpis.final_reserved_cores)
                .sum::<f64>()
        );
    }

    #[test]
    fn chaos_decommission_promotes_to_ring_lifecycle() {
        let runner = RegionRunner {
            chaos: ChaosPlan::named("decommission").unwrap(),
            chaos_ring: Some("east".to_string()),
            ..RegionRunner::default()
        };
        let effective = runner.effective_spec(&RegionSpec::named("ci2").unwrap());
        assert_eq!(effective.rings[0].decommission_hour, Some(2));
        assert_eq!(effective.rings[1].decommission_hour, None);
    }

    #[test]
    #[should_panic(expected = "unknown ring")]
    fn chaos_target_must_name_a_ring() {
        let runner = RegionRunner {
            chaos: ChaosPlan::named("node-crash").unwrap(),
            chaos_ring: Some("nowhere".to_string()),
            ..RegionRunner::default()
        };
        let _ = runner.effective_spec(&RegionSpec::named("ci2").unwrap());
    }
}
