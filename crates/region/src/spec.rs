//! Region specifications: a named set of heterogeneous fabric rings
//! behind one region-level admission layer.
//!
//! Like every other spec in the workspace, a [`RegionSpec`] round-trips
//! through XML (§3.3.1's declarative idiom) so a region run is a pure
//! function of `(spec, seed)`. Each [`RingSpec`] describes one simulated
//! fabric ring: its density ladder value, node count, and lifecycle
//! (optional build-out hour, optional decommission hour). Ring order in
//! the spec is load-bearing: it fixes ring indices, seed lineages and
//! policy tie-breaks.

use toto_controlplane::PlacementPolicy;
use toto_simcore::rng::SeedTree;
use toto_spec::xml::{ParseError, XmlElement};
use toto_spec::ScenarioSpec;

/// One fabric ring in a region.
#[derive(Clone, Debug, PartialEq)]
pub struct RingSpec {
    /// Ring name, unique within the region.
    pub name: String,
    /// The ring's density ladder value (§5.2).
    pub density_percent: u32,
    /// Node count (rings are heterogeneous; the gen5 stage ring has 14).
    pub node_count: u32,
    /// Hour the ring joins region admission. `0` means the ring is
    /// present — with its bootstrap population — from the start; a later
    /// hour is a **build-out**: the ring starts empty and begins
    /// admitting mid-run.
    pub start_hour: u64,
    /// Hour the ring is decommissioned: it stops admitting and every
    /// live tenant is drained to sibling rings (cross-ring redirects).
    pub decommission_hour: Option<u64>,
    /// Pin this ring's PLB seed instead of deriving it from the region
    /// seed — repeat studies that perturb exactly one ring need this
    /// (the PLB seed is the one seed that never reaches the population
    /// stream, so siblings stay byte-identical; §5.2's discipline).
    pub plb_seed: Option<u64>,
}

/// A region: placement policy plus the rings it routes over.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionSpec {
    /// Region name (also the default fleet/artifact name).
    pub name: String,
    /// Cross-ring placement policy.
    pub policy: PlacementPolicy,
    /// Run length, hours (every ring runs the full region duration).
    pub duration_hours: u64,
    /// Region root seed: every ring seed and the regional population
    /// stream derive from it via the workspace SplitMix64 scheme.
    pub seed: u64,
    /// The rings, in join order.
    pub rings: Vec<RingSpec>,
}

impl RegionSpec {
    /// Built-in named regions (`fleet_runner --region <name>`). Returns
    /// `None` for unknown names; [`RegionSpec::NAMED`] lists them.
    pub fn named(name: &str) -> Option<RegionSpec> {
        let ring = |name: &str, density: u32, nodes: u32| RingSpec {
            name: name.to_string(),
            density_percent: density,
            node_count: nodes,
            start_hour: 0,
            decommission_hour: None,
            plb_seed: None,
        };
        match name {
            // The headline region: the paper's §5.2 density ladder as
            // four heterogeneous rings under one admission layer.
            "mixed4" => Some(RegionSpec {
                name: "mixed4".to_string(),
                policy: PlacementPolicy::DensityTarget,
                duration_hours: 48,
                seed: 42,
                rings: vec![
                    ring("r100", 100, 14),
                    ring("r110", 110, 10),
                    ring("r120", 120, 14),
                    ring("r140", 140, 8),
                ],
            }),
            // Small two-ring region for CI determinism smoke runs.
            "ci2" => Some(RegionSpec {
                name: "ci2".to_string(),
                policy: PlacementPolicy::Spread,
                duration_hours: 6,
                seed: 7,
                rings: vec![ring("east", 110, 8), ring("west", 120, 6)],
            }),
            // Ring lifecycle showcase: `old` is decommissioned at hour 4
            // (drained cross-ring), `fresh` builds out at hour 2.
            "lifecycle3" => Some(RegionSpec {
                name: "lifecycle3".to_string(),
                policy: PlacementPolicy::Spread,
                duration_hours: 8,
                seed: 11,
                rings: vec![
                    RingSpec {
                        decommission_hour: Some(4),
                        ..ring("old", 110, 8)
                    },
                    ring("steady", 120, 10),
                    RingSpec {
                        start_hour: 2,
                        ..ring("fresh", 100, 8)
                    },
                ],
            }),
            _ => None,
        }
    }

    /// Names accepted by [`RegionSpec::named`].
    pub const NAMED: [&'static str; 3] = ["mixed4", "ci2", "lifecycle3"];

    /// Seed lineage for ring `i`: `SeedTree::new(seed).child("ring", i)`.
    /// Only the PLB leaf may be overridden per ring — population and
    /// model seeds always derive from the region seed, which is what
    /// keeps sibling rings byte-identical under a PLB perturbation.
    pub fn ring_seed(&self, i: usize) -> u64 {
        SeedTree::new(self.seed).child("ring", i as u64).seed()
    }

    /// The fully seeded per-ring scenario: the gen5 stage ring resized
    /// to the ring's node count and density, bootstrap population scaled
    /// proportionally (zeroed for build-out rings, which start empty).
    pub fn ring_scenario(&self, i: usize) -> ScenarioSpec {
        let ring = &self.rings[i];
        let seed = SeedTree::new(self.ring_seed(i));
        let mut scenario = ScenarioSpec::gen5_stage_cluster(ring.density_percent);
        scenario.name = format!("{}-{}", self.name, ring.name);
        // Scale bootstrap counts by node ratio × density: a ring's
        // density ladder value is a *packing* level (§5.2), so a 140 %
        // ring starts with 1.4× the tenants per node, filled to its
        // density-scaled capacity by `fit_bootstrap_budget`.
        let scale = f64::from(ring.node_count) / f64::from(scenario.node_count)
            * f64::from(ring.density_percent)
            / 100.0;
        scenario.bootstrap_standard_gp =
            (f64::from(scenario.bootstrap_standard_gp) * scale).round() as u32;
        scenario.bootstrap_premium_bc =
            (f64::from(scenario.bootstrap_premium_bc) * scale).round() as u32;
        scenario.node_count = ring.node_count;
        scenario.fault_domains = scenario.fault_domains.min(ring.node_count);
        scenario.duration_hours = self.duration_hours;
        if ring.start_hour > 0 {
            scenario.bootstrap_standard_gp = 0;
            scenario.bootstrap_premium_bc = 0;
        }
        scenario.population_seed = seed.child("population", 0).seed();
        scenario.model_seed = seed.child("model", 0).seed();
        scenario.plb_seed = ring.plb_seed.unwrap_or_else(|| seed.child("plb", 0).seed());
        fit_bootstrap_budget(&mut scenario);
        scenario
    }

    /// Seed of the regional population stream (the one create/drop
    /// stream the region routes across rings).
    pub fn region_population_seed(&self) -> u64 {
        SeedTree::new(self.seed).child("regionpop", 0).seed()
    }

    /// Seed of the region-level drop-victim RNG.
    pub fn region_route_seed(&self) -> u64 {
        SeedTree::new(self.seed).child("route", 0).seed()
    }

    /// Serialise to an XML element (`<region>`).
    pub fn to_xml(&self) -> XmlElement {
        let mut root = XmlElement::new("region")
            .attr("name", &self.name)
            .attr("policy", self.policy.name())
            .attr("durationHours", self.duration_hours)
            .attr("seed", self.seed);
        for ring in &self.rings {
            let mut el = XmlElement::new("ring")
                .attr("name", &ring.name)
                .attr("density", ring.density_percent)
                .attr("nodes", ring.node_count)
                .attr("startHour", ring.start_hour);
            if let Some(h) = ring.decommission_hour {
                el = el.attr("decommissionHour", h);
            }
            if let Some(s) = ring.plb_seed {
                el = el.attr("plbSeed", s);
            }
            root = root.child(el);
        }
        root
    }

    /// Serialise to an XML document string.
    pub fn to_xml_string(&self) -> String {
        self.to_xml().to_xml_string()
    }

    /// Parse from an XML element produced by [`RegionSpec::to_xml`].
    pub fn from_xml(el: &XmlElement) -> Result<RegionSpec, ParseError> {
        if el.name != "region" {
            return Err(ParseError {
                offset: 0,
                message: format!("expected <region>, found <{}>", el.name),
            });
        }
        let policy_name: String = el.parse_attr("policy")?;
        let policy = PlacementPolicy::from_name(&policy_name).ok_or_else(|| ParseError {
            offset: 0,
            message: format!("unknown placement policy {policy_name:?}"),
        })?;
        let mut rings = Vec::new();
        for child in el.children_named("ring") {
            rings.push(RingSpec {
                name: child.parse_attr("name")?,
                density_percent: child.parse_attr("density")?,
                node_count: child.parse_attr("nodes")?,
                start_hour: child.parse_attr("startHour")?,
                decommission_hour: opt_attr(child, "decommissionHour")?,
                plb_seed: opt_attr(child, "plbSeed")?,
            });
        }
        if rings.is_empty() {
            return Err(ParseError {
                offset: 0,
                message: "<region> needs at least one <ring>".to_string(),
            });
        }
        Ok(RegionSpec {
            name: el.parse_attr("name")?,
            policy,
            duration_hours: el.parse_attr("durationHours")?,
            seed: el.parse_attr("seed")?,
            rings,
        })
    }

    /// Parse an XML document string.
    pub fn parse(input: &str) -> Result<RegionSpec, ParseError> {
        Self::from_xml(&XmlElement::parse(input)?)
    }
}

/// Shrink a ring's scaled bootstrap counts until the drafted population
/// fits the ring's bootstrap budget: its density-scaled logical cores
/// minus the gen5 stage ring's 65-core headroom, prorated by node count
/// (the 14-node, 100 %-density ring's budget is exactly
/// [`toto::defaults::bootstrap_reserved_target`]).
///
/// Count scaling preserves the *expected* per-database footprint, but
/// the realized SLO mix is a random draw per population seed — an
/// unlucky draw can reserve more cores than the ring has, which would
/// start the region admission ledger above logical capacity. Drafting is
/// a pure function of the scenario, so the trimmed counts are part of
/// the spec, identical in Phase A and in the ring's own bootstrap.
fn fit_bootstrap_budget(scenario: &mut ScenarioSpec) {
    let catalog = toto_controlplane::slo::SloCatalog::gen5();
    // 14 nodes and 65 free cores are the gen5 stage ring's shape
    // (Table 3); rings keep the same per-node headroom proportion.
    let budget = scenario.total_logical_cores() - 65.0 * f64::from(scenario.node_count) / 14.0;
    for _ in 0..32 {
        if scenario.bootstrap_standard_gp + scenario.bootstrap_premium_bc == 0 {
            return;
        }
        let Ok(drafts) = toto::bootstrap::draft_population(&catalog, scenario) else {
            return;
        };
        let reserved: f64 = drafts.iter().map(|d| d.reserved_cores()).sum();
        if reserved <= budget {
            return;
        }
        let shrink = (budget / reserved).min(0.98);
        scenario.bootstrap_standard_gp =
            (f64::from(scenario.bootstrap_standard_gp) * shrink).floor() as u32;
        scenario.bootstrap_premium_bc =
            (f64::from(scenario.bootstrap_premium_bc) * shrink).floor() as u32;
    }
}

fn opt_attr<T: std::str::FromStr>(el: &XmlElement, key: &str) -> Result<Option<T>, ParseError>
where
    T::Err: std::fmt::Display,
{
    match el.get_attr(key) {
        None => Ok(None),
        Some(_) => el.parse_attr(key).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_regions_round_trip_through_xml() {
        for name in RegionSpec::NAMED {
            let spec = RegionSpec::named(name).unwrap();
            let back = RegionSpec::parse(&spec.to_xml_string()).unwrap();
            assert_eq!(back, spec, "region {name} must round-trip");
        }
    }

    #[test]
    fn unknown_policy_is_rejected() {
        let xml = r#"<region name="x" policy="round-robin" durationHours="6" seed="1">
            <ring name="a" density="100" nodes="8" startHour="0"/></region>"#;
        let err = RegionSpec::parse(xml).unwrap_err();
        assert!(err.message.contains("policy"), "got: {}", err.message);
    }

    #[test]
    fn ring_seeds_are_distinct_and_stable() {
        let spec = RegionSpec::named("mixed4").unwrap();
        let seeds: std::collections::BTreeSet<u64> =
            (0..spec.rings.len()).map(|i| spec.ring_seed(i)).collect();
        assert_eq!(seeds.len(), 4);
        assert_eq!(
            spec.ring_seed(2),
            RegionSpec::named("mixed4").unwrap().ring_seed(2)
        );
    }

    #[test]
    fn ring_scenarios_scale_bootstrap_and_respect_overrides() {
        let mut spec = RegionSpec::named("mixed4").unwrap();
        spec.rings[1].plb_seed = Some(999);
        let s0 = spec.ring_scenario(0);
        assert_eq!(s0.node_count, 14);
        assert!(
            s0.bootstrap_standard_gp <= 187,
            "node-ratio scaling is an upper bound"
        );
        let s1 = spec.ring_scenario(1);
        assert_eq!(s1.node_count, 10);
        assert!(
            s1.bootstrap_standard_gp <= 147,
            "187 × 10/14 × 1.1 rounded is the ceiling"
        );
        assert!(s1.bootstrap_standard_gp > 0);
        assert_eq!(s1.plb_seed, 999, "per-ring PLB override is honoured");
        // Population/model seeds never come from the override.
        let mut base = RegionSpec::named("mixed4").unwrap();
        base.rings[1].plb_seed = None;
        assert_eq!(s1.population_seed, base.ring_scenario(1).population_seed);
    }

    #[test]
    fn drafted_bootstrap_fits_every_ring_budget() {
        let catalog = toto_controlplane::slo::SloCatalog::gen5();
        for name in RegionSpec::NAMED {
            let spec = RegionSpec::named(name).unwrap();
            for i in 0..spec.rings.len() {
                let s = spec.ring_scenario(i);
                let drafts = toto::bootstrap::draft_population(&catalog, &s).unwrap();
                let reserved: f64 = drafts.iter().map(|d| d.reserved_cores()).sum();
                let budget = s.total_logical_cores() - 65.0 * f64::from(s.node_count) / 14.0;
                assert!(
                    reserved <= budget + 1e-9,
                    "{name}/{}: drafted {reserved:.1} cores exceeds budget {budget:.1}",
                    spec.rings[i].name
                );
                assert!(
                    reserved <= s.total_logical_cores(),
                    "{name}/{}: bootstrap must fit the ring",
                    spec.rings[i].name
                );
            }
        }
    }

    #[test]
    fn build_out_rings_start_empty() {
        let spec = RegionSpec::named("lifecycle3").unwrap();
        let fresh = spec.ring_scenario(2);
        assert_eq!(fresh.bootstrap_standard_gp, 0);
        assert_eq!(fresh.bootstrap_premium_bc, 0);
    }
}
