//! Node-level resource governance — RgManager's day job.
//!
//! §3.2: "RgManager contains a centralized view of the node and is
//! responsible for governing the node's resources and mitigating
//! potential noisy neighbor performance issues." §5.5 plans to "use Toto
//! to measure RgManager's effectiveness at mitigating potential
//! performance issues"; this module provides that governance layer: given
//! the *demanded* CPU of each replica on the node, it allocates the
//! node's physical CPU, throttling proportionally-over-guarantee when
//! demand exceeds supply, and records how much demand went unserved (the
//! "performance debt" a benchmark can score).

use std::collections::BTreeMap;

/// One replica's CPU state as seen by the governor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuDemand {
    /// The replica's reserved (guaranteed) cores.
    pub reserved: f64,
    /// The replica's instantaneous demand, cores.
    pub demanded: f64,
}

/// The outcome of one governance pass for one replica.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuGrant {
    /// Cores actually granted this interval.
    pub granted: f64,
    /// Demand that went unserved (`demanded - granted`, ≥ 0).
    pub throttled: f64,
}

/// Aggregate governance statistics for a node.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GovernanceStats {
    /// Governance passes executed.
    pub passes: u64,
    /// Passes in which at least one replica was throttled.
    pub contended_passes: u64,
    /// Total core-intervals of throttled demand.
    pub throttled_core_intervals: f64,
}

/// The per-node CPU governor.
///
/// Allocation policy (a classic two-phase guarantee-then-work-conserving
/// scheme, which is how SQL OS resource governance behaves at node
/// scope):
///
/// 1. every replica first receives `min(demanded, reserved)` — its
///    guarantee is inviolable;
/// 2. leftover physical cores are shared among still-hungry replicas in
///    proportion to their reservations (weighted fair sharing), iterating
///    until the surplus is exhausted or everyone is satisfied.
#[derive(Clone, Debug)]
pub struct NodeGovernor {
    physical_cores: f64,
    stats: GovernanceStats,
}

impl NodeGovernor {
    /// Build a governor for a node with the given physical core count.
    pub fn new(physical_cores: f64) -> Self {
        assert!(physical_cores > 0.0, "node needs positive cores");
        NodeGovernor {
            physical_cores,
            stats: GovernanceStats::default(),
        }
    }

    /// The node's physical cores.
    pub fn physical_cores(&self) -> f64 {
        self.physical_cores
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> GovernanceStats {
        self.stats
    }

    /// Run one governance pass over the node's replicas. Returns the
    /// per-replica grants, keyed as the input.
    pub fn govern(&mut self, demands: &BTreeMap<u64, CpuDemand>) -> BTreeMap<u64, CpuGrant> {
        self.stats.passes += 1;
        let mut grants: BTreeMap<u64, CpuGrant> = BTreeMap::new();
        // Phase 1: guarantees.
        let mut used = 0.0;
        for (&id, d) in demands {
            let granted = d.demanded.min(d.reserved).max(0.0);
            used += granted;
            grants.insert(
                id,
                CpuGrant {
                    granted,
                    throttled: 0.0,
                },
            );
        }
        // Over-reserved node (the density study's premise!): even the
        // guarantees exceed the machine — scale them down proportionally,
        // which is where dense clusters quietly pay their performance tax.
        if used > self.physical_cores {
            let scale = self.physical_cores / used;
            for grant in grants.values_mut() {
                grant.granted *= scale;
            }
            used = self.physical_cores;
        }
        // Phase 2: work-conserving surplus sharing, weighted by
        // reservation, iterated so capped replicas release their share.
        let mut surplus = (self.physical_cores - used).max(0.0);
        for _ in 0..8 {
            if surplus <= 1e-9 {
                break;
            }
            let hungry: Vec<u64> = demands
                .iter()
                .filter(|(id, d)| d.demanded > grants[*id].granted + 1e-12)
                .map(|(id, _)| *id)
                .collect();
            if hungry.is_empty() {
                break;
            }
            let weight_total: f64 = hungry.iter().map(|id| demands[id].reserved.max(0.1)).sum();
            let mut consumed = 0.0;
            for id in &hungry {
                let d = &demands[id];
                let share = surplus * d.reserved.max(0.1) / weight_total;
                let grant = grants.get_mut(id).expect("inserted in phase 1");
                let extra = (d.demanded - grant.granted).min(share);
                grant.granted += extra;
                consumed += extra;
            }
            surplus -= consumed;
            if consumed <= 1e-12 {
                break;
            }
        }
        // Account throttling.
        let mut contended = false;
        for (&id, d) in demands {
            let grant = grants.get_mut(&id).expect("present");
            grant.throttled = (d.demanded - grant.granted).max(0.0);
            if grant.throttled > 1e-9 {
                contended = true;
                self.stats.throttled_core_intervals += grant.throttled;
            }
        }
        if contended {
            self.stats.contended_passes += 1;
        }
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demands(list: &[(u64, f64, f64)]) -> BTreeMap<u64, CpuDemand> {
        list.iter()
            .map(|&(id, reserved, demanded)| (id, CpuDemand { reserved, demanded }))
            .collect()
    }

    #[test]
    fn under_subscribed_node_grants_everything() {
        let mut g = NodeGovernor::new(96.0);
        let grants = g.govern(&demands(&[(1, 8.0, 4.0), (2, 16.0, 10.0)]));
        assert_eq!(grants[&1].granted, 4.0);
        assert_eq!(grants[&2].granted, 10.0);
        assert_eq!(grants[&1].throttled, 0.0);
        assert_eq!(g.stats().contended_passes, 0);
    }

    #[test]
    fn guarantees_are_inviolable_under_contention() {
        // Node of 16 cores; replica 1 demands way beyond its reservation,
        // replica 2 demands exactly its reservation.
        let mut g = NodeGovernor::new(16.0);
        let grants = g.govern(&demands(&[(1, 4.0, 40.0), (2, 12.0, 12.0)]));
        // Replica 2 gets its full guarantee.
        assert_eq!(grants[&2].granted, 12.0);
        // Replica 1 gets its guarantee plus whatever is left (nothing).
        assert!((grants[&1].granted - 4.0).abs() < 1e-9);
        assert!((grants[&1].throttled - 36.0).abs() < 1e-9);
        assert_eq!(g.stats().contended_passes, 1);
    }

    #[test]
    fn surplus_is_shared_by_reservation_weight() {
        // 32 physical cores; guarantees consume 12; surplus 20 shared
        // between two over-demanders weighted 1:3.
        let mut g = NodeGovernor::new(32.0);
        let grants = g.govern(&demands(&[(1, 3.0, 100.0), (2, 9.0, 100.0)]));
        let extra1 = grants[&1].granted - 3.0;
        let extra2 = grants[&2].granted - 9.0;
        assert!((extra1 + extra2 - 20.0).abs() < 1e-6);
        assert!((extra2 / extra1 - 3.0).abs() < 1e-6, "{extra1} vs {extra2}");
    }

    #[test]
    fn work_conserving_iteration_reallocates_capped_shares() {
        // Surplus 20; replica 1 only wants 1 extra core; replica 2 is
        // unbounded — the iteration should hand replica 1's unused share
        // to replica 2.
        let mut g = NodeGovernor::new(30.0);
        let grants = g.govern(&demands(&[(1, 5.0, 6.0), (2, 5.0, 100.0)]));
        assert!((grants[&1].granted - 6.0).abs() < 1e-9);
        assert!((grants[&2].granted - 24.0).abs() < 1e-6);
    }

    #[test]
    fn total_grants_never_exceed_physical_cores() {
        let mut g = NodeGovernor::new(24.0);
        let grants = g.govern(&demands(&[(1, 8.0, 30.0), (2, 8.0, 30.0), (3, 8.0, 30.0)]));
        let total: f64 = grants.values().map(|x| x.granted).sum();
        assert!(total <= 24.0 + 1e-9);
        // Everyone gets exactly their guarantee here.
        for g in grants.values() {
            assert!((g.granted - 8.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stats_accumulate_across_passes() {
        let mut g = NodeGovernor::new(8.0);
        g.govern(&demands(&[(1, 8.0, 20.0)]));
        g.govern(&demands(&[(1, 8.0, 4.0)]));
        let s = g.stats();
        assert_eq!(s.passes, 2);
        assert_eq!(s.contended_passes, 1);
        assert!((s.throttled_core_intervals - 12.0).abs() < 1e-9);
    }

    #[test]
    fn over_reserved_node_scales_guarantees_down() {
        // The density study's whole premise: reservations can exceed the
        // physical node. Guarantees are then scaled proportionally and
        // the shortfall shows up as throttled demand.
        let mut g = NodeGovernor::new(10.0);
        let grants = g.govern(&demands(&[(1, 8.0, 8.0), (2, 8.0, 8.0)]));
        let total: f64 = grants.values().map(|x| x.granted).sum();
        assert!((total - 10.0).abs() < 1e-9);
        assert!((grants[&1].granted - 5.0).abs() < 1e-9);
        assert!((grants[&1].throttled - 3.0).abs() < 1e-9);
        assert_eq!(g.stats().contended_passes, 1);
    }
}
