//! RgManager — the per-node resource governor with Toto inside.
//!
//! §3.2: "There is a single RgManager instance running on every node in
//! the cluster … when a replica for a SQL database needs to report its
//! CPU, memory, and disk usage to PLB, it first consults RgManager by
//! issuing an RPC." §3.3.1 describes Toto's modification: "we implemented
//! Toto to leverage the existing Azure SQL DB infrastructure by
//! redirecting the metric request RPCs in RgManager to sample from defined
//! models instead of returning the actual resource utilization."
//!
//! The flow implemented here, faithful to §3.3:
//!
//! 1. Every 15 (simulated) minutes each RgManager re-reads the model XML
//!    from the Naming Service and recompiles its model objects when the
//!    version changed.
//! 2. On a metric report request, if no model covers `(resource, edition)`
//!    the *actual* load is returned — the normal operating behaviour.
//! 3. Non-persisted metrics keep their previous reported value in
//!    RgManager's process memory: a failover lands the replica on another
//!    node whose RgManager has no memory of it, so the value resets —
//!    exactly the cold-buffer-pool behaviour §3.3.2 wants.
//! 4. Persisted metrics (local-store disk) round-trip their previous
//!    value through the Naming Service. Only the primary executes the
//!    model and writes; secondaries report the stored value verbatim, so
//!    a newly promoted primary "will have the same disk usage as the
//!    previous primary replica".

pub mod governance;

use std::collections::BTreeMap;
use toto_fabric::naming::NamingService;
use toto_models::compiled::{CompiledModelSet, ReplicaRoleKind, SampleContext};
use toto_simcore::time::SimTime;
use toto_spec::model::ModelSetSpec;
use toto_spec::{EditionKind, ResourceKind};

/// The Naming Service key that holds the serialized model XML.
pub const MODEL_KEY: &str = "toto/models";

/// Naming Service key for a persisted metric value of one service.
pub fn persisted_state_key(resource: ResourceKind, service_raw: u64) -> String {
    let mut key = String::new();
    persisted_state_key_into(&mut key, resource, service_raw);
    key
}

/// Render a persisted-state key into a reused buffer. The report path
/// builds one key per persisted-metric report; routing every call
/// through one scratch `String` keeps the steady state allocation-free.
pub fn persisted_state_key_into(buf: &mut String, resource: ResourceKind, service_raw: u64) {
    use std::fmt::Write;
    buf.clear();
    let _ = write!(buf, "toto/state/{resource}/svc-{service_raw}");
}

/// One metric report request from a SQL replica.
#[derive(Clone, Copy, Debug)]
pub struct ReportRequest {
    /// Raw replica id (identifies the in-memory state slot).
    pub replica: u64,
    /// Raw service id (identifies the persisted state slot and the
    /// database's pattern membership).
    pub service: u64,
    /// Role of the reporting replica.
    pub role: ReplicaRoleKind,
    /// Edition of the database.
    pub edition: EditionKind,
    /// The metric being reported.
    pub resource: ResourceKind,
    /// When the database was created.
    pub created_at: SimTime,
    /// Now.
    pub now: SimTime,
    /// The replica's actual measured load — returned verbatim when no
    /// model covers this request.
    pub actual_load: f64,
}

/// A per-node RgManager instance.
#[derive(Clone, Debug)]
pub struct RgManager {
    node: u32,
    models: Option<CompiledModelSet>,
    last_version: Option<u64>,
    /// Previous reported values for non-persisted metrics, per (replica,
    /// resource). Lives and dies with this RgManager instance. Ordered
    /// container: iteration must be deterministic so identically-seeded
    /// runs stay byte-identical (D001).
    mem_state: BTreeMap<(u64, ResourceKind), f64>,
    refresh_count: u64,
    /// Scratch buffer for persisted-state keys (reused across reports).
    key_scratch: String,
    /// Naming Service blob version of `MODEL_KEY` seen at the previous
    /// refresh. An unchanged blob can't produce a different compile
    /// outcome, so the refresh skips the XML reparse entirely.
    seen_blob_version: Option<u64>,
}

impl RgManager {
    /// Create the RgManager for a node.
    pub fn new(node: u32) -> Self {
        RgManager {
            node,
            models: None,
            last_version: None,
            mem_state: BTreeMap::new(),
            refresh_count: 0,
            key_scratch: String::new(),
            seen_blob_version: None,
        }
    }

    /// The node this instance governs.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// The model-set version currently loaded.
    pub fn loaded_version(&self) -> Option<u64> {
        self.last_version
    }

    /// Number of refresh cycles performed.
    pub fn refresh_count(&self) -> u64 {
        self.refresh_count
    }

    /// Re-read the model XML from the Naming Service, recompiling when
    /// the version changed (§3.3.1's 15-minute refresh). Returns `true`
    /// if the models were (re)compiled. A missing or malformed blob keeps
    /// the previously loaded models.
    pub fn refresh_models(&mut self, naming: &mut NamingService) -> bool {
        self.refresh_count += 1;
        let Some((xml, blob_version)) = naming.get_versioned(MODEL_KEY) else {
            return false;
        };
        if self.seen_blob_version == Some(blob_version) {
            // The blob is byte-identical to the one already processed:
            // reparsing it cannot change the outcome. A previous compile
            // (or a previous rejection of this exact blob) stands.
            return false;
        }
        let Ok(spec) = ModelSetSpec::from_xml_str(xml) else {
            self.seen_blob_version = Some(blob_version);
            return false;
        };
        self.seen_blob_version = Some(blob_version);
        if self.last_version == Some(spec.version) {
            return false;
        }
        self.models = Some(CompiledModelSet::compile(&spec));
        self.last_version = Some(spec.version);
        debug_assert!(
            self.models.is_some() && self.last_version == Some(spec.version),
            "refresh_models left models and version out of sync"
        );
        toto_trace::emit(toto_trace::EventKind::ModelRefresh, || {
            toto_trace::EventBody::ModelRefresh {
                node: u64::from(self.node),
                version: spec.version,
            }
        });
        true
    }

    /// Drop the in-memory state of a replica that left this node (its
    /// process restarted elsewhere). Non-persisted metrics then reset on
    /// their next report, as in production.
    pub fn forget_replica(&mut self, replica: u64) {
        self.mem_state.retain(|(r, _), _| *r != replica);
    }

    /// Handle a metric report RPC: returns the value the replica should
    /// report to the PLB.
    pub fn compute_report(&mut self, naming: &mut NamingService, req: &ReportRequest) -> f64 {
        let value = self.compute_report_value(naming, req);
        debug_assert!(
            value.is_finite(),
            "metric report for {:?} must be finite before it reaches the PLB",
            req.resource
        );
        toto_trace::emit(toto_trace::EventKind::MetricReport, || {
            toto_trace::EventBody::MetricReport {
                service: req.service,
                replica: req.replica,
                node: u64::from(self.node),
                resource: req.resource.to_string(),
                value,
            }
        });
        value
    }

    fn compute_report_value(&mut self, naming: &mut NamingService, req: &ReportRequest) -> f64 {
        let Some(models) = &self.models else {
            return req.actual_load;
        };
        let Some(model) = models.model_for(req.resource, req.edition) else {
            // "If no model exists for the replica and the load metric that
            // is being reported, the replica's actual load usage will be
            // reported" (§3.3.1).
            return req.actual_load;
        };
        if model.persisted() {
            persisted_state_key_into(&mut self.key_scratch, req.resource, req.service);
            let prev = naming
                .get(&self.key_scratch)
                .and_then(|v| v.parse::<f64>().ok());
            let ctx = SampleContext {
                service: req.service,
                node: self.node,
                role: req.role,
                created_at: req.created_at,
                now: req.now,
                prev,
            };
            let value = model.next_value(&ctx);
            debug_assert!(
                value.is_finite(),
                "model produced non-finite persisted report for {:?}",
                req.resource
            );
            if req.role == ReplicaRoleKind::Primary {
                // "only the primary replica executes the model and
                // persists the load" (§3.3.2). Formats into the stored
                // buffer: the steady-state overwrite allocates nothing.
                naming.write_with(&self.key_scratch, |buf| {
                    use std::fmt::Write;
                    // `{:?}` preserves round-trip precision for f64.
                    let _ = write!(buf, "{value:?}");
                });
            }
            value
        } else {
            // One ordered-map probe per report: the entry holds the slot
            // for both the `prev` read and the write-back.
            let slot = (req.replica, req.resource);
            let entry = self.mem_state.entry(slot);
            let prev = match &entry {
                std::collections::btree_map::Entry::Occupied(e) => Some(*e.get()),
                std::collections::btree_map::Entry::Vacant(_) => None,
            };
            let ctx = SampleContext {
                service: req.service,
                node: self.node,
                role: req.role,
                created_at: req.created_at,
                now: req.now,
                prev,
            };
            let value = model.next_value(&ctx);
            debug_assert!(
                value.is_finite(),
                "model produced non-finite in-memory report for {:?}",
                req.resource
            );
            *entry.or_default() = value;
            value
        }
    }

    /// Remove the persisted state of a dropped service from the Naming
    /// Service (housekeeping performed on delete).
    pub fn clear_persisted_state(naming: &mut NamingService, service_raw: u64) {
        for resource in ResourceKind::ALL {
            naming.delete(&persisted_state_key(resource, service_raw));
        }
        debug_assert!(
            ResourceKind::ALL
                .iter()
                .all(|r| !naming.contains_key(&persisted_state_key(*r, service_raw))),
            "clear_persisted_state left residual keys for svc-{service_raw}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toto_spec::model::{
        HourlyTable, MetricModelSpec, ModelSetSpec, SteadyStateSpec, TargetPopulation,
    };

    fn disk_model_xml(version: u64, mu: f64, persisted: bool) -> String {
        ModelSetSpec {
            version,
            base_seed: 42,
            models: vec![MetricModelSpec {
                resource: ResourceKind::Disk,
                target: TargetPopulation::All,
                persisted,
                report_period_secs: 1200,
                reset_value: 0.0,
                additive: true,
                secondary_scale: 1.0,
                seed_salt: 1,
                steady: SteadyStateSpec {
                    hourly: HourlyTable::constant(mu, 0.0),
                },
                initial: None,
                rapid: None,
            }],
        }
        .to_xml_string()
    }

    fn request(replica: u64, service: u64, role: ReplicaRoleKind, now: u64) -> ReportRequest {
        ReportRequest {
            replica,
            service,
            role,
            edition: EditionKind::PremiumBc,
            resource: ResourceKind::Disk,
            created_at: SimTime::ZERO,
            now: SimTime::from_secs(now),
            actual_load: 7.5,
        }
    }

    #[test]
    fn no_models_means_actual_load() {
        let mut naming = NamingService::new();
        let mut rg = RgManager::new(0);
        let v = rg.compute_report(&mut naming, &request(1, 1, ReplicaRoleKind::Primary, 0));
        assert_eq!(v, 7.5);
    }

    #[test]
    fn uncovered_metric_falls_through_to_actual() {
        let mut naming = NamingService::new();
        naming.write(MODEL_KEY, disk_model_xml(1, 0.5, true));
        let mut rg = RgManager::new(0);
        assert!(rg.refresh_models(&mut naming));
        let mut req = request(1, 1, ReplicaRoleKind::Primary, 1200);
        req.resource = ResourceKind::Memory;
        assert_eq!(rg.compute_report(&mut naming, &req), 7.5);
    }

    #[test]
    fn refresh_only_recompiles_on_version_change() {
        let mut naming = NamingService::new();
        let mut rg = RgManager::new(0);
        assert!(!rg.refresh_models(&mut naming)); // nothing written yet
        naming.write(MODEL_KEY, disk_model_xml(1, 0.5, true));
        assert!(rg.refresh_models(&mut naming));
        assert!(!rg.refresh_models(&mut naming)); // same version
        naming.write(MODEL_KEY, disk_model_xml(2, 0.5, true));
        assert!(rg.refresh_models(&mut naming));
        assert_eq!(rg.loaded_version(), Some(2));
        assert_eq!(rg.refresh_count(), 4);
    }

    #[test]
    fn malformed_blob_keeps_old_models() {
        let mut naming = NamingService::new();
        naming.write(MODEL_KEY, disk_model_xml(1, 0.5, true));
        let mut rg = RgManager::new(0);
        assert!(rg.refresh_models(&mut naming));
        naming.write(MODEL_KEY, "<broken");
        assert!(!rg.refresh_models(&mut naming));
        assert_eq!(rg.loaded_version(), Some(1));
        // Reports still work off the old models.
        let v = rg.compute_report(&mut naming, &request(1, 1, ReplicaRoleKind::Primary, 1200));
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn persisted_metric_round_trips_naming_service() {
        let mut naming = NamingService::new();
        naming.write(MODEL_KEY, disk_model_xml(1, 1.0, true));
        let mut rg = RgManager::new(0);
        rg.refresh_models(&mut naming);
        let v1 = rg.compute_report(&mut naming, &request(1, 9, ReplicaRoleKind::Primary, 1200));
        assert!((v1 - 1.0).abs() < 1e-12);
        let v2 = rg.compute_report(&mut naming, &request(1, 9, ReplicaRoleKind::Primary, 2400));
        assert!((v2 - 2.0).abs() < 1e-12);
        // The persisted value is in the naming service.
        let stored: f64 = naming
            .read(&persisted_state_key(ResourceKind::Disk, 9))
            .unwrap()
            .parse()
            .unwrap();
        assert!((stored - 2.0).abs() < 1e-12);
    }

    #[test]
    fn secondary_reads_persisted_value_without_executing() {
        let mut naming = NamingService::new();
        naming.write(MODEL_KEY, disk_model_xml(1, 1.0, true));
        let mut rg0 = RgManager::new(0);
        let mut rg1 = RgManager::new(1);
        rg0.refresh_models(&mut naming);
        rg1.refresh_models(&mut naming);
        // Primary on node 0 reports twice.
        rg0.compute_report(&mut naming, &request(1, 9, ReplicaRoleKind::Primary, 1200));
        rg0.compute_report(&mut naming, &request(1, 9, ReplicaRoleKind::Primary, 2400));
        let writes_before = naming.stats().writes;
        // Secondary on node 1 reports the stored value and writes nothing.
        let v = rg1.compute_report(
            &mut naming,
            &request(2, 9, ReplicaRoleKind::Secondary, 2400),
        );
        assert!((v - 2.0).abs() < 1e-12);
        assert_eq!(naming.stats().writes, writes_before);
    }

    #[test]
    fn promoted_primary_continues_from_persisted_value() {
        // The §3.3.2 guarantee: after failover the newly promoted primary
        // has the same disk usage as the previous primary.
        let mut naming = NamingService::new();
        naming.write(MODEL_KEY, disk_model_xml(1, 1.0, true));
        let mut rg0 = RgManager::new(0);
        let mut rg1 = RgManager::new(1);
        rg0.refresh_models(&mut naming);
        rg1.refresh_models(&mut naming);
        for i in 1..=5 {
            rg0.compute_report(
                &mut naming,
                &request(1, 9, ReplicaRoleKind::Primary, 1200 * i),
            );
        }
        // Old primary reported 5.0; promoted replica (on node 1) continues.
        let v = rg1.compute_report(&mut naming, &request(2, 9, ReplicaRoleKind::Primary, 7200));
        assert!((v - 6.0).abs() < 1e-12, "v = {v}");
    }

    #[test]
    fn non_persisted_metric_resets_on_failover() {
        let mut naming = NamingService::new();
        naming.write(MODEL_KEY, disk_model_xml(1, 1.0, false));
        let mut rg0 = RgManager::new(0);
        let mut rg1 = RgManager::new(1);
        rg0.refresh_models(&mut naming);
        rg1.refresh_models(&mut naming);
        for i in 1..=4 {
            rg0.compute_report(
                &mut naming,
                &request(1, 9, ReplicaRoleKind::Primary, 1200 * i),
            );
        }
        // Fail over: new node's RgManager has no memory of the replica.
        let v = rg1.compute_report(&mut naming, &request(1, 9, ReplicaRoleKind::Primary, 6000));
        assert!((v - 1.0).abs() < 1e-12, "reset then one delta, got {v}");
        // And the old node forgets on departure.
        rg0.forget_replica(1);
        let v2 = rg0.compute_report(&mut naming, &request(1, 9, ReplicaRoleKind::Primary, 7200));
        assert!((v2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clear_persisted_state_removes_keys() {
        let mut naming = NamingService::new();
        naming.write(MODEL_KEY, disk_model_xml(1, 1.0, true));
        let mut rg = RgManager::new(0);
        rg.refresh_models(&mut naming);
        rg.compute_report(&mut naming, &request(1, 9, ReplicaRoleKind::Primary, 1200));
        assert!(naming
            .read(&persisted_state_key(ResourceKind::Disk, 9))
            .is_some());
        RgManager::clear_persisted_state(&mut naming, 9);
        assert!(naming
            .read(&persisted_state_key(ResourceKind::Disk, 9))
            .is_none());
    }

    #[test]
    fn value_serialisation_round_trips() {
        // The persisted write formats with `{:?}`, which must preserve
        // full f64 round-trip precision through the Naming Service.
        let mut naming = NamingService::new();
        naming.write(MODEL_KEY, disk_model_xml(1, 1_234.567_890_123_456_7, true));
        let mut rg = RgManager::new(0);
        rg.refresh_models(&mut naming);
        let v = rg.compute_report(&mut naming, &request(1, 9, ReplicaRoleKind::Primary, 1200));
        let stored: f64 = naming
            .read(&persisted_state_key(ResourceKind::Disk, 9))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(
            stored.to_bits(),
            v.to_bits(),
            "persisted text must round-trip bitwise: {stored} vs {v}"
        );
    }
}
