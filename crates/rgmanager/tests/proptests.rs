//! Property-based tests for RgManager's metric interception.

use proptest::prelude::*;
use toto_fabric::naming::NamingService;
use toto_models::compiled::ReplicaRoleKind;
use toto_rgmanager::{persisted_state_key, ReportRequest, RgManager, MODEL_KEY};
use toto_simcore::time::SimTime;
use toto_spec::model::{
    HourlyTable, MetricModelSpec, ModelSetSpec, SteadyStateSpec, TargetPopulation,
};
use toto_spec::{EditionKind, ResourceKind};

fn model_xml(mu: f64, sigma: f64, persisted: bool) -> String {
    ModelSetSpec {
        version: 1,
        base_seed: 9,
        models: vec![MetricModelSpec {
            resource: ResourceKind::Disk,
            target: TargetPopulation::All,
            persisted,
            report_period_secs: 1200,
            reset_value: 0.0,
            additive: true,
            secondary_scale: 1.0,
            seed_salt: 1,
            steady: SteadyStateSpec {
                hourly: HourlyTable::constant(mu, sigma),
            },
            initial: None,
            rapid: None,
        }],
    }
    .to_xml_string()
}

fn request(service: u64, role: ReplicaRoleKind, now: u64, actual: f64) -> ReportRequest {
    ReportRequest {
        replica: service,
        service,
        role,
        edition: EditionKind::PremiumBc,
        resource: ResourceKind::Disk,
        created_at: SimTime::ZERO,
        now: SimTime::from_secs(now),
        actual_load: actual,
    }
}

proptest! {
    #[test]
    fn reported_disk_is_never_negative(
        mu in -5.0f64..5.0,
        sigma in 0.0f64..3.0,
        service: u64,
        steps in 1usize..20,
    ) {
        let mut naming = NamingService::new();
        naming.write(MODEL_KEY, model_xml(mu, sigma, true));
        let mut rg = RgManager::new(0);
        rg.refresh_models(&mut naming);
        for i in 1..=steps {
            let v = rg.compute_report(
                &mut naming,
                &request(service, ReplicaRoleKind::Primary, 1200 * i as u64, 0.0),
            );
            prop_assert!(v >= 0.0, "negative report {v}");
        }
    }

    #[test]
    fn persisted_state_equals_last_primary_report(
        mu in 0.0f64..2.0,
        service: u64,
        steps in 1usize..10,
    ) {
        let mut naming = NamingService::new();
        naming.write(MODEL_KEY, model_xml(mu, 0.3, true));
        let mut rg = RgManager::new(0);
        rg.refresh_models(&mut naming);
        let mut last = 0.0;
        for i in 1..=steps {
            last = rg.compute_report(
                &mut naming,
                &request(service, ReplicaRoleKind::Primary, 1200 * i as u64, 0.0),
            );
        }
        let stored: f64 = naming
            .read(&persisted_state_key(ResourceKind::Disk, service))
            .expect("primary persists")
            .parse()
            .expect("parses");
        prop_assert_eq!(stored, last);
        // Any secondary on any node reports exactly the stored value.
        let mut rg2 = RgManager::new(7);
        rg2.refresh_models(&mut naming);
        let v = rg2.compute_report(
            &mut naming,
            &request(service, ReplicaRoleKind::Secondary, 1200 * (steps as u64 + 1), 0.0),
        );
        prop_assert_eq!(v, last);
    }

    #[test]
    fn actual_load_passes_through_unmodeled_metrics(actual in 0.0f64..1e6, service: u64) {
        let mut naming = NamingService::new();
        naming.write(MODEL_KEY, model_xml(1.0, 0.0, true));
        let mut rg = RgManager::new(0);
        rg.refresh_models(&mut naming);
        let mut req = request(service, ReplicaRoleKind::Primary, 1200, actual);
        req.resource = ResourceKind::Memory; // no memory model in the set
        prop_assert_eq!(rg.compute_report(&mut naming, &req), actual);
    }

    #[test]
    fn forgetting_resets_nonpersisted_state(mu in 0.5f64..2.0, service: u64) {
        let mut naming = NamingService::new();
        naming.write(MODEL_KEY, model_xml(mu, 0.0, false));
        let mut rg = RgManager::new(0);
        rg.refresh_models(&mut naming);
        let grown = (1..=5).fold(0.0, |_, i| {
            rg.compute_report(
                &mut naming,
                &request(service, ReplicaRoleKind::Primary, 1200 * i, 0.0),
            )
        });
        prop_assert!((grown - 5.0 * mu).abs() < 1e-9);
        rg.forget_replica(service);
        let after = rg.compute_report(
            &mut naming,
            &request(service, ReplicaRoleKind::Primary, 7200, 0.0),
        );
        prop_assert!((after - mu).abs() < 1e-9, "state must reset, got {after}");
    }
}
