//! `scenario_runner` — execute a data-driven scenario.
//!
//! ```text
//! scenario_runner --scenario NAME|FILE [--seeds N] [--threads T]
//!                 [--hours H] [--out DIR] [--trace]
//! ```
//!
//! NAME is a built-in scenario (`density_sweep`, `chaos_storm`,
//! `region_mixed4`, `pool_packing`, `cohort_mix`) or a path to a
//! scenario TOML file. Every run is gated by the K-S validation oracle:
//! a scenario whose synthesized workload does not fit its trained
//! models aborts with the failing family's verdict before any
//! simulation output is written. Artifacts (run records, manifest, the
//! scenario source, `oracle.json`, and `sweep.json` — single-sample
//! verdict at `--seeds 1`, dispersion statistics for `N > 1`)
//! land under `<out>/runs/<name>/`, byte-identical at any `--threads`.

use toto_scenario::cli::{run_cli, CliArgs};
use toto_scenario::NAMED_SCENARIOS;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: scenario_runner --scenario NAME|FILE [--seeds N] [--threads T] \
             [--hours H] [--out DIR] [--trace]\nbuilt-in scenarios: {}",
            NAMED_SCENARIOS.join(", ")
        );
        return;
    }
    let args = match CliArgs::parse(&argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("scenario_runner: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "[scenario_runner] {} on {} threads ({} seed{})",
        args.scenario,
        args.threads,
        args.seeds,
        if args.seeds == 1 { "" } else { "s" }
    );
    match run_cli(&args, &toto_fleet::StderrProgress) {
        Ok(summary) => {
            println!(
                "scenario {}: {} completed, {} failed, {} oracle families fitted -> {}",
                summary.fleet_name,
                summary.completed,
                summary.failed,
                summary.oracle_families,
                summary.dir.display()
            );
            if summary.chaos_violations > 0 {
                println!("chaos oracle violations: {}", summary.chaos_violations);
                std::process::exit(1);
            }
            if summary.failed > 0 {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("scenario_runner: {e}");
            std::process::exit(1);
        }
    }
}
