//! Built-in scenarios.
//!
//! The `scenarios/` directory ships the studies this workspace
//! previously hard-coded, re-expressed as data, plus one workload study
//! that only exists as a scenario. They are embedded so
//! `scenario_runner --scenario density_sweep` works from any directory
//! — and so the compiler tests can assert that the data form lowers to
//! exactly the hard-coded plans.

/// Names accepted by [`builtin`], in display order.
pub const NAMED_SCENARIOS: [&str; 7] = [
    "density_sweep",
    "chaos_storm",
    "region_mixed4",
    "pool_packing",
    "cohort_mix",
    "hyperscale",
    "hyperscale_smoke",
];

/// The source text of a built-in scenario, or `None` for unknown names.
pub fn builtin(name: &str) -> Option<&'static str> {
    match name {
        "density_sweep" => Some(include_str!("../scenarios/density_sweep.toml")),
        "chaos_storm" => Some(include_str!("../scenarios/chaos_storm.toml")),
        "region_mixed4" => Some(include_str!("../scenarios/region_mixed4.toml")),
        "pool_packing" => Some(include_str!("../scenarios/pool_packing.toml")),
        "cohort_mix" => Some(include_str!("../scenarios/cohort_mix.toml")),
        "hyperscale" => Some(include_str!("../scenarios/hyperscale.toml")),
        "hyperscale_smoke" => Some(include_str!("../scenarios/hyperscale_smoke.toml")),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::ScenarioDoc;

    #[test]
    fn every_builtin_parses_and_names_match() {
        for name in NAMED_SCENARIOS {
            let text = builtin(name).expect("builtin exists");
            let doc = ScenarioDoc::parse(text).unwrap_or_else(|e| panic!("builtin {name}: {e}"));
            assert_eq!(doc.name, name.replace('_', "-"), "builtin {name}");
        }
        assert!(builtin("no-such-scenario").is_none());
    }
}
