//! The shared scenario-resolution and run path.
//!
//! Both the `scenario_runner` bin here and the `run_scenario` bench bin
//! go through this module, so there is exactly one way a scenario name
//! becomes a run: built-in name → embedded text; anything else → file
//! path. Legacy `<Scenario>` XML specs are folded into the same path by
//! compiling them to a single pinned fleet job — ad-hoc per-bin parsing
//! is gone.

use crate::builtin::{builtin, NAMED_SCENARIOS};
use crate::doc::ScenarioDoc;
use crate::error::ScenarioError;
use crate::runner::{run, RunOptions, RunSummary};
use toto::experiment::ExperimentOverrides;
use toto_fleet::{FleetObserver, FleetPlan};
use toto_spec::ScenarioSpec;

/// A resolved scenario: its source text plus where it came from.
#[derive(Clone, Debug)]
pub struct ResolvedScenario {
    /// The scenario source text (TOML).
    pub source: String,
    /// The validated document.
    pub doc: ScenarioDoc,
}

/// Resolve a scenario argument: a built-in name ([`NAMED_SCENARIOS`]) or
/// a path to a `.toml` scenario file.
pub fn resolve(name_or_path: &str) -> Result<ResolvedScenario, ScenarioError> {
    let source = match builtin(name_or_path) {
        Some(text) => text.to_string(),
        None => std::fs::read_to_string(name_or_path).map_err(|e| ScenarioError::Io {
            path: name_or_path.to_string(),
            message: format!(
                "{e} (not a built-in scenario either; built-ins: {})",
                NAMED_SCENARIOS.join(", ")
            ),
        })?,
    };
    let doc = ScenarioDoc::parse(&source)?;
    Ok(ResolvedScenario { source, doc })
}

/// Parsed command line shared by the scenario front-ends.
#[derive(Clone, Debug)]
pub struct CliArgs {
    /// Scenario name or path (`--scenario`).
    pub scenario: String,
    /// Seed replicas (`--seeds`, default 1).
    pub seeds: u64,
    /// Worker threads (`--threads`).
    pub threads: usize,
    /// Run-length override, hours (`--hours`).
    pub hours: Option<u64>,
    /// Artifact store root (`--out`, default `results`).
    pub out: String,
    /// Record per-job trace sidecars (`--trace`).
    pub trace: bool,
}

impl Default for CliArgs {
    fn default() -> Self {
        CliArgs {
            scenario: String::new(),
            seeds: 1,
            threads: std::thread::available_parallelism().map_or(4, usize::from),
            hours: None,
            out: "results".to_string(),
            trace: false,
        }
    }
}

impl CliArgs {
    /// Parse an argument list (without the program name). Unknown flags
    /// and malformed values are typed errors so front-ends can print
    /// usage and exit non-zero.
    pub fn parse(argv: &[String]) -> Result<CliArgs, ScenarioError> {
        let mut args = CliArgs::default();
        let mut it = argv.iter();
        let missing = |flag: &str| ScenarioError::invalid(format!("{flag} requires a value"));
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scenario" => {
                    args.scenario = it.next().ok_or_else(|| missing("--scenario"))?.clone();
                }
                "--seeds" => {
                    let v = it.next().ok_or_else(|| missing("--seeds"))?;
                    args.seeds = v.parse().map_err(|_| {
                        ScenarioError::invalid(format!("--seeds: not an integer: {v:?}"))
                    })?;
                    if args.seeds == 0 {
                        return Err(ScenarioError::invalid("--seeds must be at least 1"));
                    }
                }
                "--threads" => {
                    let v = it.next().ok_or_else(|| missing("--threads"))?;
                    args.threads = v.parse().map_err(|_| {
                        ScenarioError::invalid(format!("--threads: not an integer: {v:?}"))
                    })?;
                }
                "--hours" => {
                    let v = it.next().ok_or_else(|| missing("--hours"))?;
                    args.hours = Some(v.parse().map_err(|_| {
                        ScenarioError::invalid(format!("--hours: not an integer: {v:?}"))
                    })?);
                }
                "--out" => {
                    args.out = it.next().ok_or_else(|| missing("--out"))?.clone();
                }
                "--trace" => args.trace = true,
                other => {
                    return Err(ScenarioError::invalid(format!(
                        "unknown flag {other:?}; usage: --scenario NAME|FILE [--seeds N] \
                         [--threads T] [--hours H] [--out DIR] [--trace]"
                    )));
                }
            }
        }
        if args.scenario.is_empty() {
            return Err(ScenarioError::invalid(format!(
                "--scenario is required; built-ins: {}",
                NAMED_SCENARIOS.join(", ")
            )));
        }
        Ok(args)
    }
}

/// Resolve and run a scenario per the parsed arguments.
pub fn run_cli(args: &CliArgs, observer: &dyn FleetObserver) -> Result<RunSummary, ScenarioError> {
    let mut resolved = resolve(&args.scenario)?;
    if let Some(hours) = args.hours {
        if hours == 0 {
            return Err(ScenarioError::invalid("--hours must be positive"));
        }
        resolved.doc.hours = Some(hours);
    }
    if args.trace {
        resolved.doc.trace = true;
    }
    let options = RunOptions {
        threads: args.threads.max(1),
        seeds: args.seeds,
        out: args.out.clone(),
    };
    run(&resolved.doc, &resolved.source, &options, observer)
}

/// Compile a legacy `<Scenario>` XML spec into a single pinned fleet
/// job, so the old `run_scenario <file.xml>` path flows through the same
/// executor-and-store pipeline as everything else. The spec's own
/// component seeds are kept (that is what an XML spec *is*).
pub fn xml_spec_plan(spec: ScenarioSpec, root_seed: u64) -> FleetPlan {
    let mut plan = FleetPlan::new(root_seed);
    plan.add_pinned(spec.name.clone(), spec, ExperimentOverrides::default());
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_full_flag_set() {
        let args = CliArgs::parse(&argv(&[
            "--scenario",
            "density_sweep",
            "--seeds",
            "3",
            "--threads",
            "2",
            "--hours",
            "24",
            "--out",
            "/tmp/x",
            "--trace",
        ]))
        .expect("parses");
        assert_eq!(args.scenario, "density_sweep");
        assert_eq!(args.seeds, 3);
        assert_eq!(args.threads, 2);
        assert_eq!(args.hours, Some(24));
        assert_eq!(args.out, "/tmp/x");
        assert!(args.trace);
    }

    #[test]
    fn unknown_flag_and_missing_scenario_are_typed_errors() {
        assert!(matches!(
            CliArgs::parse(&argv(&["--bogus"])),
            Err(ScenarioError::Invalid { .. })
        ));
        assert!(matches!(
            CliArgs::parse(&argv(&[])),
            Err(ScenarioError::Invalid { .. })
        ));
        assert!(matches!(
            CliArgs::parse(&argv(&["--scenario", "x", "--seeds", "0"])),
            Err(ScenarioError::Invalid { .. })
        ));
    }

    #[test]
    fn resolve_prefers_builtins_and_reports_unknowns() {
        let resolved = resolve("density_sweep").expect("builtin resolves");
        assert_eq!(resolved.doc.name, "density-sweep");
        let err = resolve("no_such_scenario_anywhere").unwrap_err();
        match err {
            ScenarioError::Io { message, .. } => {
                assert!(message.contains("built-ins"), "{message}")
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn xml_spec_plan_pins_the_spec_seeds() {
        let mut spec = ScenarioSpec::gen5_stage_cluster(110);
        spec.plb_seed = 777;
        let plan = xml_spec_plan(spec, 42);
        assert_eq!(plan.jobs().len(), 1);
        assert_eq!(plan.jobs()[0].scenario.plb_seed, 777);
        assert_eq!(plan.jobs()[0].label, "gen5-stage-density-110");
    }
}
